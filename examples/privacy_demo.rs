//! Reproduces the paper's Fig. 5 vs Fig. 6 privacy analysis: a semi-honest
//! server joining `(conditional vector, row index)` pairs reconstructs the
//! clients' categorical columns when training runs *without* shuffling, and
//! learns almost nothing once *training-with-shuffling* is enabled.
//!
//! ```sh
//! cargo run --release --example privacy_demo
//! ```

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;

fn run(shuffling: bool) -> (f64, usize) {
    let table = Dataset::Loan.generate(200, 0);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    let config = GtvConfig {
        rounds: 120,
        d_steps: 1,
        batch: 64,
        block_width: 32,
        embedding_dim: 16,
        ..GtvConfig::default()
    };
    let mut trainer = GtvTrainer::new(shards, config);
    trainer.set_shuffling(shuffling);
    trainer.train().expect("GTV protocol transport failed");
    let truths = trainer.column_truths();
    let report = trainer.observer().reconstruction_accuracy(&truths);
    (report.accuracy, report.observed_cells)
}

fn main() {
    println!("server reconstruction attack on the clients' categorical columns");
    println!("(accuracy over the (row, column) cells the server observed)\n");
    let (acc_plain, cells_plain) = run(false);
    println!(
        "WITHOUT shuffling (Fig. 5): accuracy {:.1}% over {} cells",
        acc_plain * 100.0,
        cells_plain
    );
    let (acc_shuf, cells_shuf) = run(true);
    println!(
        "WITH    shuffling (Fig. 6): accuracy {:.1}% over {} cells",
        acc_shuf * 100.0,
        cells_shuf
    );
    println!(
        "\ntraining-with-shuffling reduces the attack from {:.1}% to {:.1}%",
        acc_plain * 100.0,
        acc_shuf * 100.0
    );
    assert!(acc_plain > acc_shuf, "shuffling must hurt the attack");
}
