//! Train once, save the split model's weights, reload them in a fresh
//! federation and keep synthesizing — no retraining.
//!
//! ```sh
//! cargo run --release --example save_and_reuse
//! ```

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_nn::StateDict;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = Dataset::Loan.generate(500, 0);
    let n = table.n_cols();
    let groups = [(0..n / 2).collect::<Vec<_>>(), (n / 2..n).collect::<Vec<_>>()];

    // Session 1: train and persist.
    let config = GtvConfig { rounds: 150, ..GtvConfig::default() };
    let mut trainer = GtvTrainer::new(table.vertical_split(&groups), config.clone());
    trainer.train().expect("GTV protocol transport failed");
    let path = std::env::temp_dir().join("gtv_demo_weights.bin");
    trainer.save_weights().save(&path)?;
    let reference = trainer.synthesize(100, 7).expect("GTV protocol transport failed");
    println!(
        "trained and saved {} weight tensors to {}",
        trainer.save_weights().len(),
        path.display()
    );

    // Session 2: same clients, same config seed — reload instead of train.
    let mut restored = GtvTrainer::new(table.vertical_split(&groups), config);
    restored.load_weights(&StateDict::load(&path)?)?;
    let regenerated = restored.synthesize(100, 7).expect("GTV protocol transport failed");
    assert_eq!(reference, regenerated, "restored model must generate identically");
    println!("restored model regenerates the same 100 rows bit-for-bit ✔");
    Ok(())
}
