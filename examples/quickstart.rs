//! Quickstart: train GTV on a vertically-partitioned table and evaluate the
//! joint synthetic data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_metrics::similarity;

fn main() {
    // A dataset shared by two organizations: each holds half the columns
    // for the same 800 individuals.
    let table = Dataset::Adult.generate(800, 0);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    println!(
        "two clients hold {} and {} columns of {} rows",
        shards[0].n_cols(),
        shards[1].n_cols(),
        table.n_rows()
    );

    // Train GTV with the paper's recommended partition (D_0^2 G_2^0:
    // discriminator on the server, generator on the clients).
    let config = GtvConfig { rounds: 300, batch: 128, ..GtvConfig::default() };
    let mut trainer = GtvTrainer::new(shards, config);
    trainer.train().expect("GTV protocol transport failed");

    // Publish the joint synthetic table (shares are shuffled before
    // publication, per §3.1.7).
    let synthetic = trainer.synthesize(800, 42).expect("GTV protocol transport failed");
    let report = similarity(&table, &synthetic);
    println!("avg JSD        {:.4}", report.avg_jsd);
    println!("avg WD         {:.4}", report.avg_wd);
    println!("diff corr      {:.4}", report.diff_corr);

    let stats = trainer.network_stats();
    println!(
        "protocol traffic: {} messages, {:.2} MiB ({} bytes through the server)",
        stats.messages,
        stats.bytes as f64 / (1024.0 * 1024.0),
        stats.server_bytes()
    );
}
