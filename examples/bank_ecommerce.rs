//! The paper's motivating scenario (§1): a bank and an e-commerce company
//! hold different features for shared customers and want a *joint*
//! synthetic dataset without exchanging raw data.
//!
//! The example walks the full pipeline: PSI row alignment, GTV training,
//! secure publication, and downstream ML on the joint synthetic table (a
//! credit-rating model the bank could not have trained alone).
//!
//! ```sh
//! cargo run --release --example bank_ecommerce
//! ```

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::{Dataset, Table};
use gtv_ml::{evaluate_all, Scores};
use gtv_vfl::psi_align;

fn main() {
    // The "world": customers with bank features (income, mortgage, …) and
    // e-commerce features (online activity, card usage, …). The Loan
    // stand-in carries both kinds of columns plus a credit-style target.
    let world = Dataset::Loan.generate(1_200, 7);
    let n = world.n_cols();
    let target = world.schema().target().expect("loan has a target");

    // Bank holds the financial columns (and the label); the e-commerce
    // company holds behavioural columns.
    let bank_cols: Vec<usize> = (0..n).filter(|&c| c >= n / 2 || c == target).collect();
    let shop_cols: Vec<usize> = (0..n).filter(|&c| !bank_cols.contains(&c)).collect();
    let shards = world.vertical_split(&[shop_cols, bank_cols]);

    // Step 1 — PSI alignment: both parties hold overlapping but not
    // identical customer sets, each in its own row order; they align on the
    // intersection without revealing non-shared customers. Customer id ==
    // world row index here.
    let shop_customers: Vec<u64> = (0..1_150).rev().collect(); // shop's own order
    let bank_customers: Vec<u64> = (50..1_200).collect(); // 1100 shared
    let shop_local =
        shards[0].select_rows(&shop_customers.iter().map(|&i| i as usize).collect::<Vec<_>>());
    let bank_local =
        shards[1].select_rows(&bank_customers.iter().map(|&i| i as usize).collect::<Vec<_>>());
    let alignment = psi_align(&[shop_customers, bank_customers], 0xfeed);
    println!("PSI: {} shared customers", alignment.intersection_size);
    let shop = shop_local.select_rows(&alignment.row_orders[0]);
    let bank = bank_local.select_rows(&alignment.row_orders[1]);
    let aligned_rows = shop.n_rows();

    // Step 2 — GTV training (recommended partition for imbalanced feature
    // counts: generator mostly on the server, D_0^2 G_0^2).
    let config = GtvConfig {
        partition: gtv::NetPartition::d2g2(),
        rounds: 250,
        batch: 128,
        ..GtvConfig::default()
    };
    let mut trainer = GtvTrainer::new(vec![shop.clone(), bank.clone()], config);
    trainer.train().expect("GTV protocol transport failed");

    // Step 3 — secure publication of the joint synthetic table.
    let synthetic = trainer.synthesize(aligned_rows, 3).expect("GTV protocol transport failed");
    println!(
        "published joint synthetic table: {} rows × {} cols",
        synthetic.n_rows(),
        synthetic.n_cols()
    );

    // Step 4 — downstream value: train credit models on the synthetic joint
    // table, test on held-out real data.
    let joined = Table::hconcat(&[&shop, &bank]);
    let (train_real, test_real) = joined.train_test_split(0.25, 1);
    let real: Scores = evaluate_all(&train_real, &test_real, 0);
    let synth: Scores = evaluate_all(&synthetic, &test_real, 0);
    println!(
        "trained on real      : acc={:.3} f1={:.3} auc={:.3}",
        real.accuracy, real.f1, real.auc
    );
    println!(
        "trained on synthetic : acc={:.3} f1={:.3} auc={:.3}",
        synth.accuracy, synth.f1, synth.auc
    );
    let d = real.abs_diff(synth);
    println!("ML-utility difference: acc={:.3} f1={:.3} auc={:.3}", d.accuracy, d.f1, d.auc);
}
