//! Scaling the federation: train GTV with 2–5 clients on the same dataset
//! (the paper's §4.3.3 scenario) and watch quality and traffic evolve.
//!
//! ```sh
//! cargo run --release --example multi_client
//! ```

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_metrics::similarity;
use gtv_vfl::PartitionPlan;

fn main() {
    let table = Dataset::Adult.generate(700, 0);
    let n = table.n_cols();
    println!("dataset: adult stand-in, {} columns, {} rows\n", n, table.n_rows());
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>12}",
        "clients", "avg JSD", "avg WD", "diff corr", "MiB traffic"
    );

    for n_clients in 2..=5 {
        let groups = PartitionPlan::RandomEven { n_clients, seed: 4 }
            .column_groups(n, None, None)
            .expect("valid partition");
        let shards = table.vertical_split(&groups);
        let config = GtvConfig { rounds: 200, batch: 128, ..GtvConfig::default() };
        let mut trainer = GtvTrainer::new(shards, config);
        trainer.train().expect("GTV protocol transport failed");
        let synth = trainer.synthesize(table.n_rows(), 1).expect("GTV protocol transport failed");
        let rep = similarity(&table, &synth);
        let mib = trainer.network_stats().bytes as f64 / (1024.0 * 1024.0);
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.3} {:>12.2}",
            n_clients, rep.avg_jsd, rep.avg_wd, rep.diff_corr, mib
        );
    }
}
