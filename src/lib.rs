//! # gtv-suite
//!
//! Umbrella package for the GTV reproduction. Re-exports every crate in the
//! workspace so examples and integration tests can use one import root.
//!
//! The actual library lives in the member crates; see the repository
//! `README.md` and `DESIGN.md` for the architecture.

pub use gtv;
pub use gtv_cond;
pub use gtv_data;
pub use gtv_encoders;
pub use gtv_metrics;
pub use gtv_ml;
pub use gtv_nn;
pub use gtv_tensor;
pub use gtv_vfl;
