//! Offline stand-in for the `criterion` 0.5 API surface this workspace's
//! benches use. Each benchmark runs a small fixed number of timed
//! iterations and prints mean wall-clock time per iteration — enough to
//! compare hot paths locally without the statistical machinery.

use std::time::Instant;

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration, recorded by the `iter*` methods.
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.mean_ns = total_ns as f64 / self.iters as f64;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters, mean_ns: 0.0 };
    f(&mut b);
    if b.mean_ns >= 1e6 {
        println!("{label:<40} {:>12.3} ms/iter", b.mean_ns / 1e6);
    } else {
        println!("{label:<40} {:>12.1} ns/iter", b.mean_ns);
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count (criterion's sample size).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.iters = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// A named group; benchmarks print as `group/name`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.as_ref());
        run_one(&label, self.criterion.iters, &mut f);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function(format!("{}x{}", 2, 2), |b| {
            b.iter_batched(|| vec![1u8, 2], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = demo
    }

    criterion_group!(default_benches, demo);

    #[test]
    fn groups_run_without_panicking() {
        benches();
        default_benches();
    }
}
