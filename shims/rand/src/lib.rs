//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so this crate provides a
//! deterministic, dependency-free reimplementation of the API surface the
//! GTV crates consume: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64) and [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`).
//!
//! Stream values differ from the real `rand::rngs::StdRng` (ChaCha12), but
//! every generator here is fully deterministic for a given seed, which is
//! the property the GTV protocol and its tests rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing generator methods (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; same determinism guarantee, different
    /// stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_mut_ref() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = takes_impl(&mut rng);
    }
}
