//! Offline stand-in for `parking_lot`: a [`Mutex`] with the no-poisoning
//! `lock()` signature, backed by `std::sync::Mutex` (a poisoned std lock is
//! recovered transparently, matching parking_lot's semantics of never
//! propagating panics through the lock API).
//!
//! When the `crossbeam::sched` schedule explorer is enabled, every acquire
//! and release is reported to its registry so lock-order inversions across
//! the pool and transport show up in the happens-before trace. The lock id
//! is assigned lazily on the first *instrumented* acquire, so untraced runs
//! never touch the registry.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

/// Mutual exclusion backed by `std::sync::Mutex`, `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Trace identity; 0 until the first instrumented acquire. Must stay
    /// ahead of `inner`: the unsized payload has to be the last field.
    id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    /// 0 when the acquire was not traced (nothing to report on drop).
    lock_id: u64,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Re-check `enabled`: a guard acquired inside a tracing window but
        // dropped after `disable()` must not leak events into (or corrupt
        // the held-stacks of) a later window — `enable()` resets state, so
        // the skipped release is never missed.
        if self.lock_id != 0 && crossbeam::sched::enabled() {
            crossbeam::sched::on_release(self.lock_id);
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { id: AtomicU64::new(0), inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let mut lock_id = 0;
        if crossbeam::sched::enabled() {
            lock_id = self.id.load(Ordering::Relaxed);
            if lock_id == 0 {
                let fresh = crossbeam::sched::next_lock_id();
                lock_id = match self.id.compare_exchange(
                    0,
                    fresh,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => fresh,
                    Err(raced) => raced,
                };
            }
        }
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if lock_id != 0 {
            // Report after the lock is actually held, so nesting edges
            // reflect real acquisition order.
            crossbeam::sched::on_acquire(lock_id);
        }
        MutexGuard { lock_id, inner }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poisoning() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
