//! Offline stand-in for `parking_lot`: a [`Mutex`] with the no-poisoning
//! `lock()` signature, backed by `std::sync::Mutex` (a poisoned std lock is
//! recovered transparently, matching parking_lot's semantics of never
//! propagating panics through the lock API).

/// Mutual exclusion backed by `std::sync::Mutex`, `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn survives_poisoning() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
