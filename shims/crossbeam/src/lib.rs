//! Offline stand-in for `crossbeam::channel`: an unbounded MPMC channel
//! (cloneable [`channel::Sender`] *and* [`channel::Receiver`]) over a
//! mutex-guarded queue with condvar wakeups — the semantics GTV's in-process
//! transport relies on, without the lock-free machinery.
//!
//! The [`sched`] module adds an opt-in loom-lite schedule explorer: when
//! tracing is enabled (programmatically or via `GTV_SCHED_TRACE=1`), every
//! channel send/recv — and, through the `parking_lot` shim, every lock
//! acquire/release — is recorded into a happens-before graph, with online
//! detection of channel deadlock (all registered parties blocked in `recv`
//! with no in-flight message) and lock-order inversion cycles.

/// Loom-lite schedule instrumentation: happens-before recording, deadlock
/// and lock-order-inversion detection over the shims' channels and locks.
///
/// Disabled by default; a single relaxed atomic load gates every hook, so
/// production paths pay one branch. Enable with [`enable`] (tests) or the
/// `GTV_SCHED_TRACE=1` environment variable (whole-process runs), register
/// the party threads whose blocking matters with [`register_party`], and
/// collect the trace with [`take_report`].
///
/// The happens-before model (DESIGN.md §11): program order within a
/// thread, send→recv per message (exact, because the shim channel is
/// strictly FIFO per queue), and release→acquire per lock. Event ids are
/// assigned monotonically under one registry mutex, so every recorded
/// edge points forward in id order — acyclicity of the graph is a checked
/// invariant, not an assumption. Lock releases are recorded in the guard's
/// `Drop`, momentarily *before* the underlying mutex unlocks: conservative
/// for inversion detection, which only consumes nesting (acquire-while-
/// holding) edges.
pub mod sched {
    use std::collections::{HashMap, HashSet, VecDeque};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::thread::ThreadId;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static NEXT_CHAN: AtomicU64 = AtomicU64::new(1);
    static NEXT_LOCK: AtomicU64 = AtomicU64::new(1);

    /// Everything recorded during one tracing window.
    #[derive(Default)]
    struct State {
        /// Registered party threads (name per thread).
        parties: HashMap<ThreadId, String>,
        /// Party threads currently blocked in `recv`, with the channel id.
        blocked: HashMap<ThreadId, u64>,
        /// Instrumented sends not yet received.
        in_flight: u64,
        /// Per-channel queue of send event ids awaiting their recv.
        pending: HashMap<u64, VecDeque<u64>>,
        /// Monotonic event counter (next id).
        next_event: u64,
        /// Last event id per thread (program-order edges).
        last_of_thread: HashMap<ThreadId, u64>,
        /// Last release event id per lock (release→acquire edges).
        last_release: HashMap<u64, u64>,
        /// Happens-before edges (event id pairs, earlier → later).
        hb: Vec<(u64, u64)>,
        /// Locks currently held per thread, in acquisition order.
        held: HashMap<ThreadId, Vec<u64>>,
        /// Nesting edges: lock A held while lock B is acquired.
        lock_edges: HashSet<(u64, u64)>,
        /// Deadlock descriptions, recorded online as parties block.
        deadlocks: Vec<String>,
    }

    fn state() -> MutexGuard<'static, State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        STATE.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// What one tracing window observed.
    #[derive(Debug, Default, Clone)]
    pub struct Report {
        /// Number of recorded events.
        pub events: u64,
        /// Happens-before edges; every pair is (earlier id, later id).
        pub hb_edges: Vec<(u64, u64)>,
        /// Deadlocks observed (all parties blocked, nothing in flight).
        pub deadlocks: Vec<String>,
        /// Lock-order inversion cycles over lock ids.
        pub lock_cycles: Vec<Vec<u64>>,
    }

    fn env_opt_in() -> bool {
        static ENV: OnceLock<bool> = OnceLock::new();
        *ENV.get_or_init(|| std::env::var("GTV_SCHED_TRACE").map(|v| v == "1").unwrap_or(false))
    }

    /// Whether instrumentation hooks record anything right now.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed) || env_opt_in()
    }

    /// Starts a fresh tracing window (clearing any previous state).
    pub fn enable() {
        *state() = State::default();
        ENABLED.store(true, Ordering::SeqCst);
    }

    /// Stops recording; the window's trace stays available to
    /// [`take_report`].
    pub fn disable() {
        ENABLED.store(false, Ordering::SeqCst);
    }

    /// Declares the current thread a protocol party: deadlock detection
    /// fires only when *every* registered party is blocked at once.
    pub fn register_party(name: &str) {
        let mut s = state();
        s.parties.insert(std::thread::current().id(), name.to_string());
    }

    /// Drains the recorded trace, computing lock cycles from the nesting
    /// edges, and resets the registry.
    pub fn take_report() -> Report {
        let mut s = state();
        let taken = std::mem::take(&mut *s);
        Report {
            events: taken.next_event,
            lock_cycles: cycles(&taken.lock_edges),
            hb_edges: taken.hb,
            deadlocks: taken.deadlocks,
        }
    }

    /// Allocates a channel id (cheap; assigned even when disabled so a
    /// channel created before `enable()` still traces afterwards).
    pub(crate) fn next_chan_id() -> u64 {
        NEXT_CHAN.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocates a lock id for the `parking_lot` shim.
    pub fn next_lock_id() -> u64 {
        NEXT_LOCK.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one event: assigns the id and the program-order edge.
    fn record(s: &mut State) -> u64 {
        s.next_event += 1;
        let id = s.next_event;
        let tid = std::thread::current().id();
        if let Some(&prev) = s.last_of_thread.get(&tid) {
            s.hb.push((prev, id));
        }
        s.last_of_thread.insert(tid, id);
        id
    }

    /// A message entered channel `chan`.
    pub fn on_send(chan: u64) {
        let mut s = state();
        let id = record(&mut s);
        s.in_flight += 1;
        s.pending.entry(chan).or_default().push_back(id);
    }

    /// A message left channel `chan`; pairs with the oldest pending send
    /// (exact: the shim queue is strictly FIFO).
    pub fn on_recv(chan: u64) {
        let mut s = state();
        let id = record(&mut s);
        s.in_flight = s.in_flight.saturating_sub(1);
        if let Some(send_id) = s.pending.entry(chan).or_default().pop_front() {
            s.hb.push((send_id, id));
        }
        s.blocked.remove(&std::thread::current().id());
    }

    /// The current thread is about to block in `recv` on `chan`. If it is
    /// a registered party and this leaves every party blocked with nothing
    /// in flight, that is a protocol deadlock — record it.
    pub fn on_block(chan: u64) {
        let mut s = state();
        let tid = std::thread::current().id();
        if !s.parties.contains_key(&tid) {
            return;
        }
        s.blocked.insert(tid, chan);
        let all_blocked = s.parties.keys().all(|t| s.blocked.contains_key(t));
        if all_blocked && s.in_flight == 0 && !s.parties.is_empty() {
            let mut who: Vec<String> = s
                .parties
                .iter()
                .map(|(t, name)| format!("{name}@chan{}", s.blocked.get(t).copied().unwrap_or(0)))
                .collect();
            who.sort();
            let msg = format!(
                "deadlock: all {} parties blocked in recv with no in-flight message ({})",
                s.parties.len(),
                who.join(", ")
            );
            if s.deadlocks.last() != Some(&msg) {
                s.deadlocks.push(msg);
            }
        }
    }

    /// The current thread stopped waiting without receiving (timeout or
    /// disconnect).
    pub fn on_unblock() {
        let mut s = state();
        s.blocked.remove(&std::thread::current().id());
    }

    /// The current thread acquired `lock`: release→acquire edge plus a
    /// nesting edge from every lock already held.
    pub fn on_acquire(lock: u64) {
        let mut s = state();
        let id = record(&mut s);
        if let Some(&rel) = s.last_release.get(&lock) {
            s.hb.push((rel, id));
        }
        let tid = std::thread::current().id();
        let held: Vec<u64> = s.held.get(&tid).cloned().unwrap_or_default();
        for h in held {
            if h != lock {
                s.lock_edges.insert((h, lock));
            }
        }
        s.held.entry(tid).or_default().push(lock);
    }

    /// The current thread released `lock`.
    pub fn on_release(lock: u64) {
        let mut s = state();
        let id = record(&mut s);
        s.last_release.insert(lock, id);
        let tid = std::thread::current().id();
        if let Some(stack) = s.held.get_mut(&tid) {
            if let Some(pos) = stack.iter().rposition(|&l| l == lock) {
                stack.remove(pos);
            }
        }
    }

    /// Cycles in the lock-nesting graph (each reported once, as the sorted
    /// node set of the cycle).
    fn cycles(edges: &HashSet<(u64, u64)>) -> Vec<Vec<u64>> {
        let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(a, b) in edges {
            adj.entry(a).or_default().push(b);
        }
        for targets in adj.values_mut() {
            targets.sort_unstable();
        }
        let mut found: HashSet<Vec<u64>> = HashSet::new();
        let mut nodes: Vec<u64> = adj.keys().copied().collect();
        nodes.sort_unstable();
        for &start in &nodes {
            // DFS from `start`, collecting any path that returns to it.
            let mut stack = vec![(start, vec![start])];
            let mut visited: HashSet<u64> = HashSet::new();
            while let Some((node, path)) = stack.pop() {
                for &next in adj.get(&node).into_iter().flatten() {
                    if next == start {
                        let mut cycle = path.clone();
                        cycle.sort_unstable();
                        found.insert(cycle);
                    } else if visited.insert(next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        let mut out: Vec<Vec<u64>> = found.into_iter().collect();
        out.sort();
        out
    }
}

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        /// Stable identity for [`crate::sched`] traces.
        id: u64,
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued right now.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Error from [`Receiver::recv`]: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the allotted time.
        Timeout,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            id: crate::sched::next_chan_id(),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        chan.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            {
                // Record the send while still holding the queue lock so the
                // trace's send order matches the queue's FIFO order exactly.
                let mut q = lock(&self.chan);
                q.push_back(value);
                if crate::sched::enabled() {
                    crate::sched::on_send(self.chan.id);
                }
            }
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pops the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = lock(&self.chan);
            match q.pop_front() {
                Some(v) => {
                    if crate::sched::enabled() {
                        crate::sched::on_recv(self.chan.id);
                    }
                    Ok(v)
                }
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = lock(&self.chan);
            loop {
                if let Some(v) = q.pop_front() {
                    if crate::sched::enabled() {
                        crate::sched::on_recv(self.chan.id);
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    if crate::sched::enabled() {
                        crate::sched::on_unblock();
                    }
                    return Err(RecvError);
                }
                if crate::sched::enabled() {
                    crate::sched::on_block(self.chan.id);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = lock(&self.chan);
            loop {
                if let Some(v) = q.pop_front() {
                    if crate::sched::enabled() {
                        crate::sched::on_recv(self.chan.id);
                    }
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    if crate::sched::enabled() {
                        crate::sched::on_unblock();
                    }
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    if crate::sched::enabled() {
                        crate::sched::on_unblock();
                    }
                    return Err(RecvTimeoutError::Timeout);
                };
                if crate::sched::enabled() {
                    crate::sched::on_block(self.chan.id);
                }
                let (guard, wait) = self
                    .chan
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
                if wait.timed_out() && q.front().is_none() {
                    if crate::sched::enabled() {
                        crate::sched::on_unblock();
                    }
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx2, rx2) = unbounded();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99u32).unwrap();
        });
        assert_eq!(rx.recv(), Ok(99));
        handle.join().unwrap();
    }
}
