//! Offline stand-in for `crossbeam::channel`: an unbounded MPMC channel
//! (cloneable [`channel::Sender`] *and* [`channel::Receiver`]) over a
//! mutex-guarded queue with condvar wakeups — the semantics GTV's in-process
//! transport relies on, without the lock-free machinery.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error: all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is queued right now.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Error from [`Receiver::recv`]: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the allotted time.
        Timeout,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        chan.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            lock(&self.chan).push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Pops the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = lock(&self.chan);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = lock(&self.chan);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = lock(&self.chan);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, wait) = self
                    .chan
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
                if wait.timed_out() && q.front().is_none() {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Self { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn fifo_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observable() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx2, rx2) = unbounded();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(99u32).unwrap();
        });
        assert_eq!(rx.recv(), Ok(99));
        handle.join().unwrap();
    }
}
