//! Offline stand-in for the `proptest` API surface this workspace uses.
//!
//! Provides the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, [`any`], [`collection::vec`] and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test seed (an FNV
//! hash of the test's module path and name), so failures reproduce exactly.
//! No shrinking is performed: a failing case panics with the rendered
//! assertion message, like a plain `#[test]`.

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test's fully-qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types generatable over their full domain via [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy drawing any `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` length specification: a fixed size or a size range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `Vec` strategy from an element strategy and a size (fixed or range).
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }` item
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let _ = case;
                    // Property bodies may `return Ok(())` for an early pass,
                    // mirroring proptest's TestCaseResult-returning closure.
                    let mut body = move || -> ::core::result::Result<(), ()> {
                        $body
                        Ok(())
                    };
                    let _ = body();
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])*
              fn $name($($pat in $strat),*) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(TestRng::from_name("x").next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies stay in bounds; prop_map and tuples compose.
        #[test]
        fn ranges_and_maps(v in collection::vec(-2.0f32..2.0, 3..10),
                           (a, b) in (0usize..5, any::<u64>()),
                           mut k in 1usize..4) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
            prop_assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
            prop_assert!(a < 5);
            let doubled = (0u8..4).prop_map(|x| x * 2).generate(
                &mut TestRng::from_name("inner"));
            prop_assert!(doubled % 2 == 0);
            k += (b % 2) as usize;
            prop_assert!(k >= 1);
        }
    }
}
