//! Offline stand-in for the parts of `bytes` 1.x this workspace uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with
//! the little-endian accessors the GTV wire format reads and writes.

use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// `remaining() > 0`.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Length of the unread view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes (clone-free).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the unread view into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: v.into(), start: 0, end }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_scalars() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(0x0123_4567_89ab_cdef);
        b.put_f32_le(-1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 1 + 4 + 8 + 4);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xdead_beef);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(bytes.get_f32_le(), -1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_views_subrange() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = bytes.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        assert_eq!(s.slice(1..2).as_ref(), &[2]);
        assert_eq!(bytes.len(), 6, "slicing must not consume the parent");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_rejects_overrun() {
        let _ = Bytes::from(vec![1, 2]).slice(0..3);
    }

    #[test]
    fn equality_ignores_cursor_origin() {
        let a = Bytes::from(vec![9, 8, 7]).slice(1..3);
        let b = Bytes::from(vec![8, 7]);
        assert_eq!(a, b);
    }
}
