//! Failure injection: the orchestrated protocol must *notice* transport
//! faults rather than silently mis-train.

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_vfl::{Fault, PartyId};

fn trainer() -> GtvTrainer {
    let table = Dataset::Loan.generate(60, 0);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    GtvTrainer::new(shards, GtvConfig::smoke())
}

#[test]
fn dropped_upload_aborts_the_round() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Client(0), PartyId::Server, Fault::Drop);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.train_round()));
    assert!(result.is_err(), "a lost client upload must not go unnoticed");
}

#[test]
fn dropped_server_message_aborts_the_round() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Server, PartyId::Client(1), Fault::Drop);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.train_round()));
    assert!(result.is_err(), "a lost server message must not go unnoticed");
}

#[test]
fn duplicate_message_is_detected_by_the_next_exchange() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Client(0), PartyId::Server, Fault::Duplicate);
    // The duplicate desynchronizes the lockstep protocol; some later
    // exchange observes the stale message and the round aborts.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        t.train_round();
        t.train_round();
    }));
    assert!(result.is_err(), "a replayed message must not go unnoticed");
}

#[test]
fn clean_network_trains_fine_after_fault_free_setup() {
    let mut t = trainer();
    t.train_round();
    assert_eq!(t.history().g_loss.len(), 1);
}
