//! Failure injection: the orchestrated protocol must *notice* transport
//! faults rather than silently mis-train — and must report them as
//! [`TransportError`] values, never by panicking.

use gtv::{GtvConfig, GtvTrainer, TransportError};
use gtv_data::Dataset;
use gtv_vfl::{Fault, PartyId, Transport};

fn trainer() -> GtvTrainer {
    let table = Dataset::Loan.generate(60, 0);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    let t = GtvTrainer::new(shards, GtvConfig::smoke());
    // `recv` is a bounded wait; dropped-message tests should fail fast
    // instead of sitting out the 1 s default.
    t.network().set_recv_timeout(std::time::Duration::from_millis(10));
    t
}

#[test]
fn dropped_upload_aborts_the_round() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Client(0), PartyId::Server, Fault::Drop);
    let err = t.train_round().expect_err("a lost client upload must not go unnoticed");
    assert!(
        matches!(err, TransportError::Timeout { party: PartyId::Server, .. }),
        "the server should observe the missing upload: {err:?}"
    );
}

#[test]
fn dropped_server_message_aborts_the_round() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Server, PartyId::Client(1), Fault::Drop);
    let err = t.train_round().expect_err("a lost server message must not go unnoticed");
    assert!(
        matches!(err, TransportError::Timeout { party: PartyId::Client(1), .. }),
        "the client should observe the missing message: {err:?}"
    );
}

#[test]
fn duplicate_message_is_detected_by_the_next_exchange() {
    let mut t = trainer();
    t.network().inject_fault(PartyId::Client(0), PartyId::Server, Fault::Duplicate);
    // The duplicate desynchronizes the lockstep protocol; some later
    // exchange observes the stale message and the round aborts.
    let outcome = t.train_round().and_then(|()| t.train_round());
    assert!(outcome.is_err(), "a replayed message must not go unnoticed");
}

#[test]
fn faulted_trainer_does_not_panic() {
    // The protocol surface is panic-free: even under injected faults every
    // failure comes back as an Err, so orchestrators can decide policy.
    for fault in [Fault::Drop, Fault::Duplicate] {
        let mut t = trainer();
        t.network().inject_fault(PartyId::Client(0), PartyId::Server, fault);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = t.train_round().and_then(|()| t.train_round());
        }));
        assert!(result.is_ok(), "transport faults must never panic ({fault:?})");
    }
}

#[test]
fn mid_round_disconnect_surfaces_as_peer_disconnected() {
    // A peer crashing mid-round must surface as `PeerDisconnected` from
    // `train_round` — not a panic, not an indefinite block. (The socket
    // backend's copy of this regression lives in tests/socket_loopback.rs.)
    let mut t = trainer();
    t.train_round().expect("healthy round first");
    t.network().inject_fault(PartyId::Server, PartyId::Client(1), Fault::Disconnect);
    let err = t.train_round().expect_err("a dead link must not go unnoticed");
    assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(1) });
    // The severed link is permanent: later rounds fail the same way.
    let err = t.train_round().expect_err("the link stays dead");
    assert!(
        matches!(err, TransportError::PeerDisconnected { .. }),
        "severed links must not heal: {err:?}"
    );
}

#[test]
fn timeout_errors_name_the_stalled_round_and_message() {
    // A hung party must be diagnosable from the error alone: the timeout
    // carries the protocol round (from `begin_round`) and what the receiver
    // was waiting for.
    let mut t = trainer();
    t.train_round().expect("round 0 is healthy");
    t.network().inject_fault(PartyId::Client(0), PartyId::Server, Fault::Drop);
    let err = t.train_round().expect_err("the dropped upload must time out");
    match &err {
        TransportError::Timeout { party: PartyId::Server, round, expecting, .. } => {
            assert_eq!(*round, Some(1), "the error must name the in-flight round");
            assert!(expecting.is_some(), "the error must name the awaited message");
        }
        other => panic!("expected a contextful Timeout, got {other:?}"),
    }
    let shown = err.to_string();
    assert!(shown.contains("round 1"), "{shown}");
}

#[test]
fn clean_network_trains_fine_after_fault_free_setup() {
    let mut t = trainer();
    t.train_round().unwrap();
    assert_eq!(t.history().g_loss.len(), 1);
}
