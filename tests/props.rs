//! Cross-crate property tests: invariants that must hold for arbitrary
//! (small) tables and partitions.

use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Dataset, Schema, Table};
use gtv_encoders::TableTransformer;
use gtv_vfl::{ratio_vector, split_widths, PartitionPlan, SharedShuffler};
use proptest::prelude::*;

/// Strategy: a small random table with continuous + categorical columns.
fn table_strategy() -> impl Strategy<Value = Table> {
    (2usize..5, 10usize..40, any::<u64>()).prop_map(|(n_cat, rows, seed)| {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut metas = vec![ColumnMeta::new("x", ColumnKind::Continuous)];
        let mut cols =
            vec![ColumnData::Float((0..rows).map(|_| rng.gen_range(-5.0..5.0)).collect())];
        for c in 0..n_cat {
            let k = rng.gen_range(2..5usize);
            metas.push(ColumnMeta::new(
                format!("c{c}"),
                ColumnKind::categorical((0..k).map(|i| format!("v{i}"))),
            ));
            cols.push(ColumnData::Cat((0..rows).map(|_| rng.gen_range(0..k) as u32).collect()));
        }
        Table::new(Schema::new(metas, None), cols)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encoding then decoding preserves categorical columns exactly.
    #[test]
    fn encode_decode_preserves_categoricals(t in table_strategy()) {
        let tf = TableTransformer::fit(&t, 3, 0);
        let dec = tf.decode(&tf.encode(&t, 1));
        for (i, meta) in t.schema().columns().iter().enumerate() {
            if meta.kind.is_categorical() {
                prop_assert_eq!(dec.column(i), t.column(i));
            }
        }
    }

    /// Vertical split + hconcat is the identity for any partition plan.
    #[test]
    fn split_concat_roundtrip(t in table_strategy(), n_clients in 1usize..4, seed in any::<u64>()) {
        let n_clients = n_clients.min(t.n_cols());
        let groups = PartitionPlan::RandomEven { n_clients, seed }.column_groups(t.n_cols(), None, None).expect("valid partition");
        let shards = t.vertical_split(&groups);
        let refs: Vec<&Table> = shards.iter().collect();
        let joined = Table::hconcat(&refs);
        // Same multiset of columns (order may differ).
        for meta in t.schema().columns() {
            let orig = t.column_by_name(&meta.name).unwrap();
            let back = joined.column_by_name(&meta.name).unwrap();
            prop_assert_eq!(orig, back);
        }
    }

    /// Shared shuffling of vertical shards equals shuffling the join.
    #[test]
    fn shared_shuffle_alignment(t in table_strategy(), seed in any::<u64>(), round in 0u64..100) {
        let n = t.n_cols();
        if n < 2 { return Ok(()); }
        let shards = t.vertical_split(&[(0..1).collect(), (1..n).collect()]);
        let sh = SharedShuffler::new(seed);
        let a = sh.shuffle(&shards[0], round);
        let b = sh.shuffle(&shards[1], round);
        let joined = Table::hconcat(&[&a, &b]);
        prop_assert_eq!(joined, sh.shuffle(&t, round));
    }

    /// Ratio vectors always sum to 1 and width splits are exact.
    #[test]
    fn ratios_and_widths(n_cols in 2usize..40, n_clients in 1usize..6, total in 8usize..512) {
        let n_clients = n_clients.min(n_cols);
        let groups = PartitionPlan::Even { n_clients }.column_groups(n_cols, None, None).expect("valid partition");
        let r = ratio_vector(&groups);
        prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        if total >= n_clients {
            let w = split_widths(total, &r);
            prop_assert_eq!(w.iter().sum::<usize>(), total);
            prop_assert!(w.iter().all(|&x| x >= 1));
        }
    }

    /// Stratified splits keep every class represented on both sides when
    /// each class has at least 4 members.
    #[test]
    fn stratified_split_class_coverage(seed in any::<u64>()) {
        let t = Dataset::Loan.generate(200, seed % 1000);
        let (train, test) = t.train_test_split(0.3, seed);
        prop_assert_eq!(train.n_rows() + test.n_rows(), 200);
        let classes = |tt: &Table| {
            let mut seen = [false; 2];
            for &l in tt.target_labels().unwrap() { seen[l as usize] = true; }
            seen
        };
        prop_assert_eq!(classes(&train), [true, true]);
        prop_assert_eq!(classes(&test), [true, true]);
    }
}
