//! Cross-crate integration: the full GTV pipeline at small scale.

use gtv::{CentralizedTrainer, GtvConfig, GtvTrainer, NetPartition};
use gtv_data::{Dataset, Table};
use gtv_metrics::{similarity, SimilarityReport};
use gtv_ml::utility_difference;

fn even_shards(table: &Table, n_clients: usize) -> Vec<Table> {
    let n = table.n_cols();
    let groups = gtv_vfl::PartitionPlan::Even { n_clients }
        .column_groups(n, None, None)
        .expect("valid partition");
    table.vertical_split(&groups)
}

#[test]
fn gtv_preserves_schema_and_row_count() {
    let table = Dataset::Adult.generate(150, 0);
    let shards = even_shards(&table, 2);
    let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
    trainer.train().unwrap();
    let synth = trainer.synthesize(80, 1).unwrap();
    assert_eq!(synth.n_rows(), 80);
    assert_eq!(synth.n_cols(), table.n_cols());
    // Schema round-trips through vertical split + hconcat of shares.
    let names: Vec<&str> = synth.schema().columns().iter().map(|c| c.name.as_str()).collect();
    let orig: Vec<&str> = table.schema().columns().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, orig);
}

#[test]
fn same_seed_reproduces_training_bitwise() {
    let table = Dataset::Loan.generate(100, 0);
    let run = || {
        let shards = even_shards(&table, 2);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train().unwrap();
        trainer.synthesize(40, 5).unwrap()
    };
    assert_eq!(run(), run(), "same seed must reproduce the same synthetic table");
}

#[test]
fn different_seeds_differ() {
    let table = Dataset::Loan.generate(100, 0);
    let shards = even_shards(&table, 2);
    let mut a = GtvTrainer::new(shards.clone(), GtvConfig { seed: 1, ..GtvConfig::smoke() });
    a.train().unwrap();
    let mut b = GtvTrainer::new(shards, GtvConfig { seed: 2, ..GtvConfig::smoke() });
    b.train().unwrap();
    assert_ne!(a.synthesize(40, 5).unwrap(), b.synthesize(40, 5).unwrap());
}

#[test]
fn trained_gtv_beats_untrained_on_marginals() {
    let table = Dataset::Loan.generate(500, 0);
    let shards = even_shards(&table, 2);
    // seed: 2 pins a training trajectory with clear margin. The untrained
    // baseline already lands near the data's marginals (generation-time CVs
    // sample original category frequencies), so under some seeds 150 rounds
    // of GAN training do not separate from it.
    let config = GtvConfig {
        rounds: 150,
        d_steps: 1,
        batch: 64,
        block_width: 64,
        embedding_dim: 32,
        seed: 2,
        ..GtvConfig::default()
    };
    let mut trained = GtvTrainer::new(shards.clone(), config.clone());
    trained.train().unwrap();
    let untrained = GtvTrainer::new(shards, config);
    let s_trained: SimilarityReport = similarity(&table, &trained.synthesize(500, 1).unwrap());
    let s_untrained: SimilarityReport = similarity(&table, &untrained.synthesize(500, 1).unwrap());
    assert!(
        s_trained.avg_jsd < s_untrained.avg_jsd,
        "training must improve categorical fidelity: {} vs {}",
        s_trained.avg_jsd,
        s_untrained.avg_jsd
    );
}

#[test]
fn centralized_and_gtv_produce_comparable_small_scale_output() {
    let table = Dataset::Loan.generate(300, 0);
    let config = GtvConfig {
        rounds: 60,
        d_steps: 1,
        batch: 64,
        block_width: 64,
        embedding_dim: 32,
        ..GtvConfig::default()
    };
    let mut central = CentralizedTrainer::new(table.clone(), config.clone());
    central.train().unwrap();
    let shards = even_shards(&table, 2);
    let mut fed = GtvTrainer::new(shards, config);
    fed.train().unwrap();
    let s_c = similarity(&table, &central.synthesize(300, 1).unwrap());
    let s_f = similarity(&table, &fed.synthesize(300, 1).unwrap());
    // Both must be sane (bounded) — the quantitative comparison is the
    // benchmark harness's job.
    for s in [s_c, s_f] {
        assert!(s.avg_jsd.is_finite() && s.avg_jsd < 0.6, "jsd {}", s.avg_jsd);
        assert!(s.avg_wd.is_finite() && s.avg_wd < 1.0, "wd {}", s.avg_wd);
    }
}

#[test]
fn utility_pipeline_runs_on_synthetic_output() {
    let table = Dataset::Loan.generate(400, 0);
    let (train, test) = table.train_test_split(0.25, 1);
    let shards = even_shards(&train, 2);
    let mut trainer = GtvTrainer::new(shards, GtvConfig { rounds: 30, ..GtvConfig::smoke() });
    trainer.train().unwrap();
    let synth = trainer.synthesize(train.n_rows(), 2).unwrap();
    let diff = utility_difference(&train, &synth, &test, 0);
    assert!(diff.accuracy.is_finite() && diff.accuracy <= 1.0);
    assert!(diff.f1.is_finite() && diff.f1 <= 1.0);
    assert!(diff.auc.is_finite() && diff.auc <= 1.0);
}

#[test]
fn partition_affects_output_but_not_validity() {
    let table = Dataset::Loan.generate(120, 0);
    let mut outputs = Vec::new();
    for partition in [NetPartition::d2g0(), NetPartition::d2g2(), NetPartition::new(0, 2, 0, 2)] {
        let shards = even_shards(&table, 2);
        let mut t = GtvTrainer::new(shards, GtvConfig { partition, ..GtvConfig::smoke() });
        t.train().unwrap();
        outputs.push(t.synthesize(30, 3).unwrap());
    }
    assert_eq!(outputs[0].n_cols(), outputs[1].n_cols());
    assert_ne!(outputs[0], outputs[1], "different partitions must give different models");
}
