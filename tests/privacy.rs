//! Integration tests of GTV's privacy mechanisms (paper §3.1.5–3.1.7).

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_vfl::{PartyId, Transport};

fn trainer(rows: usize, shuffling: bool, rounds: usize) -> GtvTrainer {
    let table = Dataset::Loan.generate(rows, 0);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    let config = GtvConfig {
        rounds,
        d_steps: 1,
        batch: 64,
        block_width: 32,
        embedding_dim: 16,
        ..GtvConfig::default()
    };
    let mut t = GtvTrainer::new(shards, config);
    t.set_shuffling(shuffling);
    t
}

/// Fig. 5: without shuffling, the server's (CV, idx) joins reconstruct the
/// categorical columns with high accuracy.
#[test]
fn server_reconstructs_without_shuffling() {
    let mut t = trainer(150, false, 100);
    t.train().unwrap();
    let report = t.observer().reconstruction_accuracy(&t.column_truths());
    assert!(
        report.observed_cells > 100,
        "attack needs observations, got {}",
        report.observed_cells
    );
    assert!(
        report.accuracy > 0.95,
        "without shuffling the attack should be near-perfect, got {:.3}",
        report.accuracy
    );
}

/// Fig. 6: with training-with-shuffling, the same joins collapse to noise.
#[test]
fn shuffling_defeats_reconstruction() {
    let mut t = trainer(150, true, 100);
    t.train().unwrap();
    let report = t.observer().reconstruction_accuracy(&t.column_truths());
    // Chance level depends on category counts; Loan's columns are binary to
    // 4-way, so anything near 1.0 would mean the defence failed.
    assert!(
        report.accuracy < 0.85,
        "with shuffling the attack must degrade, got {:.3}",
        report.accuracy
    );
}

#[test]
fn shuffling_strictly_reduces_attack_accuracy() {
    let mut plain = trainer(150, false, 80);
    plain.train().unwrap();
    let mut shuf = trainer(150, true, 80);
    shuf.train().unwrap();
    let a_plain = plain.observer().reconstruction_accuracy(&plain.column_truths()).accuracy;
    let a_shuf = shuf.observer().reconstruction_accuracy(&shuf.column_truths()).accuracy;
    assert!(
        a_plain > a_shuf + 0.05,
        "shuffling must measurably reduce the attack: {a_plain:.3} vs {a_shuf:.3}"
    );
}

/// The shuffle seed is negotiated peer-to-peer; the server's inbox and the
/// server-side byte counters must show none of it.
#[test]
fn server_observes_no_seed_traffic() {
    let t = trainer(100, true, 0);
    let stats = t.network_stats();
    // Before any training round the only traffic is seed negotiation.
    assert!(stats.bytes > 0, "negotiation must have happened");
    assert_eq!(stats.server_bytes(), 0, "server must not see seed shares");
    assert!(t.network().try_recv(PartyId::Server).is_err());
}

/// §3.1.7: the published synthetic shares are shuffled, so their row order
/// differs from generation order — the server cannot map its generator
/// inputs to published rows.
#[test]
fn publication_shuffle_changes_row_order_consistently() {
    let mut t = trainer(150, true, 10);
    t.train().unwrap();
    let shares = t.synthesize_shares(60, 9).unwrap();
    assert_eq!(shares.len(), 2);
    // Shares stay row-aligned with each other (same publication permutation).
    let again = t.synthesize_shares(60, 9).unwrap();
    assert_eq!(shares, again, "publication must be deterministic per seed");
    let other = t.synthesize_shares(60, 10).unwrap();
    assert_ne!(shares, other, "different publication seeds must differ");
}

/// §3.1.6: in the rejected peer-to-peer index-sharing design, a curious
/// client that owns *no* categorical columns can still identify the rows
/// carrying the minority category of the other client's column, because
/// CTGAN's log-frequency sampling selects them far above their base rate —
/// and shuffling does not help, since clients know the permutation.
#[test]
fn p2p_index_sharing_leaks_minority_membership() {
    use gtv::IndexSharing;
    use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema, Table};
    let n = 200usize;
    // Client 0: one continuous column (the curious client).
    let curious = Table::new(
        Schema::new(vec![ColumnMeta::new("x", ColumnKind::Continuous)], None),
        vec![ColumnData::Float((0..n).map(|i| i as f64).collect())],
    );
    // Client 1: a 90/10 binary column; rows 0..20 are the minority.
    let labels: Vec<u32> = (0..n).map(|i| u32::from(i < 20)).collect();
    let owner = Table::new(
        Schema::new(vec![ColumnMeta::new("g", ColumnKind::categorical(["maj", "min"]))], None),
        vec![ColumnData::Cat(labels)],
    );
    let config = GtvConfig {
        index_sharing: IndexSharing::PeerToPeer,
        rounds: 150,
        d_steps: 1,
        batch: 32,
        block_width: 16,
        embedding_dim: 8,
        ..GtvConfig::default()
    };
    let mut t = GtvTrainer::new(vec![curious, owner], config);
    t.train().unwrap();
    let minority: Vec<usize> = (0..20).collect();
    let precision = t.client_index_observers()[0].minority_precision(&minority);
    // Chance would be 10%; log-frequency oversampling makes the minority
    // rows dominate the curious client's frequency table.
    assert!(
        precision > 0.5,
        "curious client should identify minority rows, precision {precision:.2}"
    );
}

/// The paper's walkthrough (Fig. 5) at miniature scale: two clients × one
/// categorical column each, no shuffling ⇒ the server's inference table is
/// the one-hot encoding of the data.
#[test]
fn fig5_miniature_reconstruction_is_exact() {
    use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema, Table};
    let gender = Table::new(
        Schema::new(vec![ColumnMeta::new("gender", ColumnKind::categorical(["M", "F"]))], None),
        vec![ColumnData::Cat(vec![0, 0, 0, 1, 1, 1])],
    );
    let loan = Table::new(
        Schema::new(vec![ColumnMeta::new("loan", ColumnKind::categorical(["Y", "N"]))], None),
        vec![ColumnData::Cat(vec![0, 0, 1, 1, 1, 1])],
    );
    let config = GtvConfig {
        rounds: 200,
        d_steps: 1,
        batch: 8,
        block_width: 16,
        embedding_dim: 8,
        ..GtvConfig::default()
    };
    let mut t = GtvTrainer::new(vec![gender, loan], config);
    t.set_shuffling(false);
    t.train().unwrap();
    let report = t.observer().reconstruction_accuracy(&t.column_truths());
    assert_eq!(report.accuracy, 1.0, "miniature Fig. 5 attack must be exact");
    assert!(report.observed_cells >= 10, "most cells should be observed");
}
