//! Loopback integration: training over [`SocketTransport`] — every client
//! party hosted by a [`PartyNode`] behind a real TCP or Unix-domain socket
//! — is *observationally identical* to the in-process backend. Same seed,
//! same config ⇒ byte-identical trained weights and identical per-round
//! byte accounting; and the failure modes the sockets add (version
//! mismatch, peer crash mid-round) surface as typed [`TransportError`]s,
//! never panics or hangs.

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::{Dataset, Table};
use gtv_vfl::socket::framing::{PROTOCOL_VERSION, WIRE_VERSION};
use gtv_vfl::{
    Endpoint, Fault, PartitionPlan, PartyId, PartyNode, SocketTransport, Transport, TransportError,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

struct Fleet {
    nodes: Vec<Arc<PartyNode>>,
    handles: Vec<JoinHandle<()>>,
    endpoints: HashMap<PartyId, Endpoint>,
}

impl Fleet {
    /// Binds and serves one [`PartyNode`] per client; the server and public
    /// board stay local to the orchestrating (test) process, mirroring the
    /// `serve-server` deployment.
    fn spawn(n_clients: usize, unix: bool, tag: &str) -> Self {
        let mut nodes = Vec::new();
        let mut handles = Vec::new();
        let mut endpoints = HashMap::new();
        for i in 0..n_clients {
            let ep = if unix {
                Endpoint::Unix(
                    std::env::temp_dir()
                        .join(format!("gtv-loopback-{}-{tag}-{i}.sock", std::process::id())),
                )
            } else {
                Endpoint::parse("127.0.0.1:0")
            };
            let node = Arc::new(PartyNode::bind(PartyId::Client(i), &ep).expect("bind loopback"));
            endpoints.insert(PartyId::Client(i), node.endpoint());
            let serving = Arc::clone(&node);
            handles.push(std::thread::spawn(move || serving.serve().expect("serve loopback")));
            nodes.push(node);
        }
        Self { nodes, handles, endpoints }
    }

    fn shutdown(self) {
        for node in &self.nodes {
            node.request_stop();
        }
        for handle in self.handles {
            handle.join().expect("node thread exits cleanly");
        }
    }
}

fn shards(n_clients: usize) -> Vec<Table> {
    let table = Dataset::Loan.generate(60, 0);
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .expect("valid partition");
    table.vertical_split(&groups)
}

/// Train the same data/config/seed over both backends and demand
/// bit-identical weights and identical byte accounting.
fn assert_backends_equivalent(n_clients: usize, unix: bool, tag: &str) {
    let rounds = 2;
    let mut inproc = GtvTrainer::new(shards(n_clients), GtvConfig::smoke());
    for _ in 0..rounds {
        inproc.train_round().expect("in-process round");
    }

    let fleet = Fleet::spawn(n_clients, unix, tag);
    let transport = SocketTransport::connect(n_clients, fleet.endpoints.clone())
        .expect("connect to loopback fleet");
    let mut socketed = GtvTrainer::with_transport(shards(n_clients), GtvConfig::smoke(), transport)
        .expect("seed negotiation over sockets");
    for _ in 0..rounds {
        socketed.train_round().expect("socket round");
    }

    // Bit-identical training: every weight, every loss, byte for byte.
    assert_eq!(inproc.save_weights(), socketed.save_weights(), "trained weights must match");
    assert_eq!(inproc.history().d_loss, socketed.history().d_loss);
    assert_eq!(inproc.history().g_loss, socketed.history().g_loss);
    // Identical byte accounting, including the per-round windows: the
    // backends meter the encoded message bodies, not the medium.
    assert_eq!(inproc.network_stats(), socketed.network_stats(), "byte accounting must match");

    fleet.shutdown();
}

#[test]
fn two_party_tcp_matches_in_process() {
    assert_backends_equivalent(2, false, "tcp2");
}

#[test]
fn two_party_unix_matches_in_process() {
    assert_backends_equivalent(2, true, "uds2");
}

#[test]
fn three_party_tcp_matches_in_process() {
    assert_backends_equivalent(3, false, "tcp3");
}

#[test]
fn three_party_unix_matches_in_process() {
    assert_backends_equivalent(3, true, "uds3");
}

#[test]
fn version_mismatch_is_a_typed_handshake_failure() {
    let fleet = Fleet::spawn(1, false, "ver");
    for (protocol, wire) in [(PROTOCOL_VERSION + 1, WIRE_VERSION), (PROTOCOL_VERSION, 99)] {
        let err =
            SocketTransport::connect_with_versions(1, fleet.endpoints.clone(), protocol, wire)
                .expect_err("a version mismatch must be rejected");
        assert!(
            matches!(err, TransportError::HandshakeFailed { .. }),
            "({protocol},{wire}): {err:?}"
        );
    }
    // The node survives rejected handshakes and still serves honest peers.
    let transport = SocketTransport::connect(1, fleet.endpoints.clone())
        .expect("honest handshake after rejected ones");
    transport
        .send(PartyId::Server, PartyId::Client(0), gtv_vfl::Message::ShuffleSeedShare { share: 3 })
        .expect("the link works");
    fleet.shutdown();
}

#[test]
fn mid_round_peer_crash_is_peer_disconnected_not_a_hang() {
    let mut fleet = Fleet::spawn(2, false, "crash");
    let transport =
        SocketTransport::connect(2, fleet.endpoints.clone()).expect("connect to loopback fleet");
    let mut trainer = GtvTrainer::with_transport(shards(2), GtvConfig::smoke(), transport)
        .expect("seed negotiation over sockets");
    trainer.train_round().expect("round 0 is healthy");

    // Kill client 1's process stand-in: stop its node and close its
    // listener, exactly what a crashed party looks like from outside.
    let dead = fleet.nodes.pop().expect("fleet has two nodes");
    let handle = fleet.handles.pop().expect("fleet has two threads");
    dead.request_stop();
    handle.join().expect("node thread exits");
    drop(dead);

    let err = trainer.train_round().expect_err("a dead party must abort the round");
    assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(1) });
    fleet.shutdown();
}

#[test]
fn injected_disconnect_mid_round_surfaces_on_the_socket_backend() {
    // The `Fault::Disconnect` regression on the socket backend (the
    // in-process copy lives in tests/failures.rs): the very next exchange
    // with the severed party reports `PeerDisconnected` from `train_round`.
    let fleet = Fleet::spawn(2, false, "fault");
    let transport =
        SocketTransport::connect(2, fleet.endpoints.clone()).expect("connect to loopback fleet");
    let mut trainer = GtvTrainer::with_transport(shards(2), GtvConfig::smoke(), transport)
        .expect("seed negotiation over sockets");
    trainer.train_round().expect("round 0 is healthy");
    trainer.network().inject_fault(PartyId::Server, PartyId::Client(0), Fault::Disconnect);
    let err = trainer.train_round().expect_err("the severed link must abort the round");
    assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(0) });
    fleet.shutdown();
}
