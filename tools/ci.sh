#!/usr/bin/env bash
# Local CI gate: formatting, clippy under the workspace deny-list, the
# gtv-xtask protocol lints, and the test suite. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets"
cargo clippy --workspace --all-targets -- -D warnings

step "gtv-xtask lint"
# Human-readable pass against the checked-in baseline; the wall-time budget
# is split: 8 s total for the twelve passes plus the dataflow build, and no
# single pass (the taint engine is the heaviest) may take more than 4 s.
cargo run -q -p gtv-xtask -- lint --baseline tools/lint-baseline.json \
    --max-ms 8000 --max-pass-ms 4000

step "gtv-xtask lint --json"
# Machine-readable annotations (one JSON object per finding, sorted and
# byte-stable across runs). Stderr carries the timings record and goes to
# its own log — swallowing it with 2>/dev/null would hide analyzer crashes.
mkdir -p target
if ! cargo run -q -p gtv-xtask -- lint --json --baseline tools/lint-baseline.json \
        --max-ms 8000 --max-pass-ms 4000 \
        2>target/gtv-lint.stderr.log | tee target/gtv-lint.json; then
    echo "gtv-xtask lint --json failed; stderr follows" >&2
    cat target/gtv-lint.stderr.log >&2
    exit 1
fi

step "gtv-xtask lint --sarif (determinism check)"
# SARIF artifact for annotation tooling; two consecutive runs must be
# byte-identical — any diff means nondeterminism crept into the analyzer.
cargo run -q -p gtv-xtask -- lint --sarif --baseline tools/lint-baseline.json \
    2>/dev/null >target/gtv-lint.sarif
cargo run -q -p gtv-xtask -- lint --sarif --baseline tools/lint-baseline.json \
    2>/dev/null >target/gtv-lint.sarif.2
cmp target/gtv-lint.sarif target/gtv-lint.sarif.2
rm target/gtv-lint.sarif.2

step "cargo test -q"
cargo test -q --workspace

step "socket loopback (transport-backend equivalence)"
# Real TCP and Unix-domain PartyNodes behind SocketTransport must train to
# byte-identical weights and identical byte accounting vs the in-process
# backend, and handshake/crash failures must be typed errors (DESIGN.md
# §13). Part of the workspace run above; re-run un-quieted so the gate
# names each backend and party count it proved.
cargo test -p gtv-suite --test socket_loopback

step "schedule explorer (protocol-conformance, dynamic half)"
# The loom-lite explorer over real trainer rounds (DESIGN.md §11): permuted
# delivery order must leave weights/synthesis bit-identical at 2 and 3
# parties, the happens-before trace must be clean, and the deadlock /
# lock-inversion detectors must fire on the intentional fixtures. Already
# part of the workspace test run above; re-run un-quieted so the gate names
# each property it proved.
cargo test -p gtv --test schedule_explorer

step "tensor benchmark (BENCH_tensor.json)"
# Hot-loop throughput sweep over pool sizes; the artifact records GFLOP/s,
# per-op speedup vs 1 thread and the host's core count (interpret speedups
# against it — a 1-core runner cannot show wall-clock gains).
cargo build -q --release -p gtv-bench --bin bench_tensor
GTV_BENCH_REPS="${GTV_BENCH_REPS:-2}" ./target/release/bench_tensor target/BENCH_tensor.json

step "training-step benchmark (BENCH_step.json)"
# Centralized and 2-client VFL training rounds with buffer recycling on and
# off: steps/s, allocator misses per step and the pool hit rate
# (DESIGN.md §9).
cargo build -q --release -p gtv-bench --bin bench_step
GTV_BENCH_REPS="${GTV_BENCH_REPS:-2}" ./target/release/bench_step target/BENCH_step.json

step "comms benchmark (BENCH_comms.json)"
# {lockstep, pipelined} x {dense, sparse} x parties {2, 3, 5}: bytes and
# messages per round, bytes_ratio_vs_dense and speedup_vs_lockstep
# (DESIGN.md §10). Pipelined byte counts must equal lockstep's.
cargo build -q --release -p gtv-bench --bin bench_comms
GTV_BENCH_REPS="${GTV_BENCH_REPS:-2}" ./target/release/bench_comms target/BENCH_comms.json

step "serve benchmark (BENCH_serve.json)"
# Closed-loop clients against the in-process synthesis service at rising
# concurrency: rows/s, request p50/p99 latency, the coalesced batch-size
# histogram and the tensor pool hit rate (DESIGN.md §14). Steady-state
# serving must run from recycled buffers.
cargo build -q --release -p gtv-bench --bin bench_serve
GTV_BENCH_REPS="${GTV_BENCH_REPS:-2}" ./target/release/bench_serve target/BENCH_serve.json

# Publish the benchmark artifacts at the repo root.
cp target/BENCH_tensor.json BENCH_tensor.json
cp target/BENCH_step.json BENCH_step.json
cp target/BENCH_comms.json BENCH_comms.json
cp target/BENCH_serve.json BENCH_serve.json

printf '\nci: all gates passed\n'
