#!/usr/bin/env bash
# Local CI gate: formatting, clippy under the workspace deny-list, the
# gtv-xtask protocol lints, and the test suite. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets"
cargo clippy --workspace --all-targets -- -D warnings

step "gtv-xtask lint"
cargo run -q -p gtv-xtask -- lint

step "cargo test -q"
cargo test -q --workspace

printf '\nci: all gates passed\n'
