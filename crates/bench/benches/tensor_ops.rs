//! Micro-benchmarks of the tensor/autograd substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gtv_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn(n, n, &mut rng);
        let b = Tensor::randn(n, n, &mut rng);
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x0 = Tensor::randn(128, 64, &mut rng);
    let w0 = Tensor::randn(64, 64, &mut rng);
    c.bench_function("mlp_forward_backward_128x64", |bench| {
        bench.iter_batched(
            Graph::new,
            |g| {
                let x = g.leaf(x0.clone());
                let w = g.leaf(w0.clone());
                let h = g.tanh(g.matmul(x, w));
                let loss = g.mean_all(g.square(h));
                black_box(g.grad(loss, &[w]));
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_double_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x0 = Tensor::randn(64, 32, &mut rng);
    let w0 = Tensor::randn(32, 16, &mut rng);
    c.bench_function("gradient_penalty_64x32", |bench| {
        bench.iter_batched(
            Graph::new,
            |g| {
                let x = g.leaf(x0.clone());
                let w = g.leaf(w0.clone());
                let out = g.tanh(g.matmul(x, w));
                let s = g.sum_all(out);
                let gx = g.grad(s, &[x])[0];
                let norm = g.l2_norm_rows(gx, 1e-12);
                let pen = g.mean_all(g.square(g.add_scalar(norm, -1.0)));
                black_box(g.grad(pen, &[w]));
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_backward, bench_double_backward
}
criterion_main!(benches);
