//! Wire-format and transport costs: message encode/decode and transport
//! round-trips on the metered network.

use criterion::{criterion_group, criterion_main, Criterion};
use gtv_vfl::{MatrixPayload, Message, Network, PartyId, Transport};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let m = Message::GenSlice(MatrixPayload::new(64, 256, vec![0.5; 64 * 256]));
    c.bench_function("encode_64x256_matrix_msg", |b| {
        b.iter(|| black_box(m.encode()));
    });
    let bytes = m.encode();
    c.bench_function("decode_64x256_matrix_msg", |b| {
        b.iter(|| black_box(Message::decode(bytes.clone()).unwrap()));
    });
}

fn bench_transport(c: &mut Criterion) {
    let net = Network::new(2);
    let m = Message::GenSlice(MatrixPayload::new(64, 128, vec![1.0; 64 * 128]));
    c.bench_function("send_recv_64x128", |b| {
        b.iter(|| {
            net.send(PartyId::Server, PartyId::Client(0), m.clone()).unwrap();
            black_box(net.recv(PartyId::Client(0)).unwrap());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wire, bench_transport
}
criterion_main!(benches);
