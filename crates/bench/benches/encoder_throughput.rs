//! Feature-engineering throughput: transformer fit / encode / decode.

use criterion::{criterion_group, criterion_main, Criterion};
use gtv_data::Dataset;
use gtv_encoders::TableTransformer;
use std::hint::black_box;

fn bench_encoders(c: &mut Criterion) {
    for ds in [Dataset::Loan, Dataset::Credit] {
        let table = ds.generate(1_000, 0);
        c.bench_function(format!("fit_{}_1k", ds.name()), |b| {
            b.iter(|| black_box(TableTransformer::fit(&table, 5, 0)));
        });
        let tf = TableTransformer::fit(&table, 5, 0);
        c.bench_function(format!("encode_{}_1k", ds.name()), |b| {
            b.iter(|| black_box(tf.encode(&table, 1)));
        });
        let encoded = tf.encode(&table, 1);
        c.bench_function(format!("decode_{}_1k", ds.name()), |b| {
            b.iter(|| black_box(tf.decode(&encoded)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encoders
}
criterion_main!(benches);
