//! Per-round training latency for the key network partitions.

use criterion::{criterion_group, criterion_main, Criterion};
use gtv::{GtvConfig, GtvTrainer, NetPartition};
use gtv_data::Dataset;
use gtv_vfl::PartitionPlan;

fn trainer(partition: NetPartition) -> GtvTrainer {
    let table = Dataset::Loan.generate(400, 0);
    let groups = PartitionPlan::Even { n_clients: 2 }
        .column_groups(table.n_cols(), None, None)
        .expect("valid partition");
    let config = GtvConfig {
        partition,
        rounds: 0,
        d_steps: 1,
        batch: 64,
        block_width: 128,
        embedding_dim: 64,
        ..GtvConfig::default()
    };
    GtvTrainer::new(table.vertical_split(&groups), config)
}

fn bench_round(c: &mut Criterion) {
    for partition in [NetPartition::d2g0(), NetPartition::d2g2(), NetPartition::new(0, 2, 0, 2)] {
        let mut t = trainer(partition);
        c.bench_function(format!("train_round_{}", partition.label().replace(' ', "_")), |b| {
            b.iter(|| t.train_round());
        });
    }
}

fn bench_synthesize(c: &mut Criterion) {
    let t = trainer(NetPartition::d2g0());
    c.bench_function("synthesize_256_rows", |b| {
        b.iter(|| t.synthesize(256, 1));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_round, bench_synthesize
}
criterion_main!(benches);
