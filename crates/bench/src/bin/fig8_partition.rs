//! Fig. 8 — neural-network partition study: the nine `D_{n4}^{n3}
//! G_{n2}^{n1}` partitions plus the centralized baseline, two clients with
//! an even column split, every metric averaged over the five datasets.

use gtv::NetPartition;
use gtv_bench::report::{f3, f4, MarkdownTable};
use gtv_bench::{run_centralized, run_gtv, ExperimentScale, RunOutcome};
use gtv_data::Dataset;
use gtv_vfl::PartitionPlan;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "# Fig. 8 — network partition (rows={}, rounds={}, repeats={})\n",
        scale.rows, scale.rounds, scale.repeats
    );

    let mut table = MarkdownTable::new([
        "config",
        "Δaccuracy",
        "ΔF1",
        "ΔAUC",
        "avg JSD",
        "avg WD",
        "Avg-client",
        "Across-client",
    ]);

    // Centralized baseline first.
    let central: Vec<RunOutcome> =
        Dataset::all().iter().map(|&ds| run_centralized(ds, scale.width, scale)).collect();
    let c = RunOutcome::mean(&central);
    table.row([
        "centralized".to_string(),
        f3(c.utility.accuracy),
        f3(c.utility.f1),
        f3(c.utility.auc),
        f4(c.sim.avg_jsd),
        f4(c.sim.avg_wd),
        "-".to_string(),
        "-".to_string(),
    ]);
    eprintln!("centralized done ({:.0}s avg train)", c.seconds);

    for partition in NetPartition::all_nine() {
        let runs: Vec<RunOutcome> = Dataset::all()
            .iter()
            .map(|&ds| {
                let n = ds.generate(4, 0).n_cols();
                let groups = PartitionPlan::Even { n_clients: 2 }
                    .column_groups(n, None, None)
                    .expect("valid partition");
                run_gtv(ds, &groups, partition, scale.width, scale)
            })
            .collect();
        let r = RunOutcome::mean(&runs);
        table.row([
            partition.label(),
            f3(r.utility.accuracy),
            f3(r.utility.f1),
            f3(r.utility.auc),
            f4(r.sim.avg_jsd),
            f4(r.sim.avg_wd),
            f3(r.avg_client),
            f3(r.across_client),
        ]);
        eprintln!("{} done ({:.0}s avg train)", partition.label(), r.seconds);
    }
    table.print();
    println!("expected shape (paper): centralized best; D_0^2 (all FN blocks on server)");
    println!("configurations beat the other six; D_0^2 G_0^2 ≈ D_0^2 G_2^0 on ML utility.");
}
