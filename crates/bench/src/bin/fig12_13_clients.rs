//! Fig. 12 / Fig. 13 / Table 3 — client-number study: columns randomly and
//! evenly distributed over 2–5 clients, with the *default* (Σ = 256) and
//! *enlarged* (Σ = 768) generator widths, for `D_0^2 G_0^2` (Fig. 12) and
//! `D_0^2 G_2^0` (Fig. 13). Metrics averaged over the five datasets;
//! Table 3 reports Diff. Corr. per dataset.

use gtv::NetPartition;
use gtv_bench::report::{f3, f4, MarkdownTable};
use gtv_bench::{run_gtv, ExperimentScale, RunOutcome};
use gtv_data::Dataset;
use gtv_vfl::PartitionPlan;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "# Fig. 12/13 + Table 3 — client scaling (rows={}, rounds={}, repeats={})\n",
        scale.rows, scale.rounds, scale.repeats
    );

    let partitions = [
        ("D_0^2 G_0^2 (Fig. 12)", NetPartition::d2g2()),
        ("D_0^2 G_2^0 (Fig. 13)", NetPartition::d2g0()),
    ];
    // Paper: default Σ = 256, enlarged Σ = 768 (3×). Scaled via GTV_WIDTH.
    let widths = [("default", scale.width), ("enlarged", scale.width * 3)];

    let mut table3 = MarkdownTable::new([
        "partition-#clients",
        "generator",
        "loan",
        "adult",
        "covtype",
        "intrusion",
        "credit",
    ]);

    for (pname, partition) in partitions {
        println!("## {pname}\n");
        let mut fig = MarkdownTable::new([
            "clients",
            "generator",
            "Δaccuracy",
            "ΔF1",
            "ΔAUC",
            "avg JSD",
            "avg WD",
            "MiB/run",
        ]);
        for n_clients in 2..=5usize {
            for (wname, width) in widths {
                let mut per_ds: Vec<RunOutcome> = Vec::new();
                let mut corr_row =
                    vec![format!("{}-{}", partition.label(), n_clients), wname.to_string()];
                for ds in Dataset::all() {
                    let n = ds.generate(4, 0).n_cols();
                    let groups = PartitionPlan::RandomEven { n_clients, seed: 11 }
                        .column_groups(n, None, None)
                        .expect("valid partition");
                    let r = run_gtv(ds, &groups, partition, width, scale);
                    corr_row.push(f3(r.diff_corr));
                    per_ds.push(r);
                }
                let mean = RunOutcome::mean(&per_ds);
                fig.row([
                    n_clients.to_string(),
                    wname.to_string(),
                    f3(mean.utility.accuracy),
                    f3(mean.utility.f1),
                    f3(mean.utility.auc),
                    f4(mean.sim.avg_jsd),
                    f4(mean.sim.avg_wd),
                    format!("{:.1}", mean.bytes as f64 / (1024.0 * 1024.0)),
                ]);
                table3.row(corr_row);
                eprintln!(
                    "{} clients={} gen={} done ({:.0}s avg train)",
                    partition.label(),
                    n_clients,
                    wname,
                    mean.seconds
                );
            }
        }
        fig.print();
    }

    println!("## Table 3 — Diff. Corr. by client count (default vs enlarged)\n");
    table3.print();
    println!("expected shape (paper): quality degrades as clients increase;");
    println!("the enlarged generator degrades less; JSD/WD stay roughly flat.");
}
