//! Fig. 5 / Fig. 6 — the server reconstruction attack, quantified: the
//! accuracy of the server's inference table over observed cells, with and
//! without *training-with-shuffling*, per dataset.

use gtv::{GtvConfig, GtvTrainer};
use gtv_bench::report::{f3, MarkdownTable};
use gtv_bench::ExperimentScale;
use gtv_data::Dataset;
use gtv_vfl::PartitionPlan;

fn attack(ds: Dataset, shuffling: bool, scale: ExperimentScale) -> (f64, usize) {
    let table = ds.generate(scale.rows.min(400), 0);
    let groups = PartitionPlan::Even { n_clients: 2 }
        .column_groups(table.n_cols(), None, None)
        .expect("valid partition");
    let shards = table.vertical_split(&groups);
    let config = GtvConfig {
        rounds: scale.rounds.min(150),
        d_steps: 1,
        batch: scale.batch,
        block_width: 64,
        embedding_dim: 32,
        ..GtvConfig::default()
    };
    let mut trainer = GtvTrainer::new(shards, config);
    trainer.set_shuffling(shuffling);
    trainer.train().expect("GTV protocol transport failed");
    let report = trainer.observer().reconstruction_accuracy(&trainer.column_truths());
    (report.accuracy, report.observed_cells)
}

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 5/6 — server reconstruction attack (rows≤400, rounds≤150)\n");
    let mut t = MarkdownTable::new([
        "dataset",
        "attack accuracy WITHOUT shuffling (Fig. 5)",
        "attack accuracy WITH shuffling (Fig. 6)",
        "observed cells",
    ]);
    for ds in Dataset::all() {
        let (plain, _) = attack(ds, false, scale);
        let (shuf, cells) = attack(ds, true, scale);
        t.row([ds.name().to_string(), f3(plain), f3(shuf), cells.to_string()]);
        eprintln!("{} done", ds.name());
    }
    t.print();
    println!("expected shape (paper): ≈1.0 without shuffling; near chance with it.");
}
