//! Fig. 3 — motivation case study: F1 of an MLP trained on (A) the top-10%
//! most important features, (B) the remaining 90%, (C) all features.
//! Importance is Shapley-ranked, as in the paper (§2.3).

use gtv_bench::report::{f3, MarkdownTable};
use gtv_bench::ExperimentScale;
use gtv_data::Dataset;
use gtv_ml::{evaluate_one, importance_ranking, Evaluator, ShapleyConfig};

fn main() {
    let scale = ExperimentScale::from_env();
    println!("# Fig. 3 — motivation case study (rows={}, repeats={})\n", scale.rows, scale.repeats);
    let mut table = MarkdownTable::new([
        "dataset",
        "Setting-A (top 10%)",
        "Setting-B (rest 90%)",
        "Setting-C (all)",
    ]);
    for ds in Dataset::all() {
        let data = ds.generate(scale.rows, 7);
        let target = data.schema().target().expect("benchmark datasets have targets");
        let ranking = importance_ranking(&data, ShapleyConfig { seed: 7, ..Default::default() });
        let n_features = ranking.len();
        let k = ((n_features as f64) * 0.1).round().max(1.0) as usize;

        let mut f1 = Vec::new();
        for cols in [
            {
                let mut c = ranking[..k].to_vec();
                c.push(target);
                c
            },
            {
                let mut c = ranking[k..].to_vec();
                c.push(target);
                c
            },
            {
                let mut c = ranking.clone();
                c.push(target);
                c
            },
        ] {
            let sub = data.select_columns(&cols);
            // Average over a few splits: small-sample macro-F1 is noisy.
            let mut total = 0.0;
            let reps = 3usize.max(scale.repeats);
            for rep in 0..reps {
                let (train, test) = sub.train_test_split(0.2, rep as u64);
                total += evaluate_one(Evaluator::Mlp, &train, &test, rep as u64).f1;
            }
            f1.push(total / reps as f64);
        }
        println!("{}: A={:.3} B={:.3} C={:.3}", ds.name(), f1[0], f1[1], f1[2]);
        table.row([ds.name().to_string(), f3(f1[0]), f3(f1[1]), f3(f1[2])]);
    }
    println!();
    table.print();
    println!("expected shape (paper): Setting-C ≥ max(A, B) on every dataset.");
}
