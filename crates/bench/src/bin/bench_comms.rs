//! Communication benchmark for the pipelined round engine and the sparse
//! wire codec (DESIGN.md §10).
//!
//! Sweeps {lockstep, pipelined} × {dense, sparse} × parties ∈ {2, 3, 5} and
//! emits `BENCH_comms.json` (path overridable as the first CLI argument)
//! with per-round bytes, messages and wall time for every cell, plus two
//! derived ratios per cell: bytes relative to the same schedule's dense run
//! (`bytes_ratio_vs_dense`, < 1 shows the sparse win) and wall time
//! relative to the same codec's lockstep run (`speedup_vs_lockstep`).
//!
//! Byte counts come from the trainer's own `NetStats` round windows —
//! warm-up rounds are excluded via `reset_stats`, so only the measured
//! rounds are averaged. `GTV_BENCH_REPS` controls how many measured rounds
//! are timed (default 3; the minimum seconds/round over reps is reported,
//! byte counts are identical every round modulo sampled conditions, so
//! they are averaged over all measured rounds).

use gtv::{GtvConfig, GtvTrainer, Transport};
use gtv_data::Dataset;
use std::time::Instant;

const ROWS: usize = 128;
const WARMUP_ROUNDS: usize = 1;
const PARTY_COUNTS: [usize; 3] = [2, 3, 5];

fn config(pipelined: bool, sparse: bool) -> GtvConfig {
    GtvConfig { threads: 1, pipelined_rounds: pipelined, sparse_wire: sparse, ..GtvConfig::smoke() }
}

struct Measurement {
    bytes_per_round: f64,
    messages_per_round: f64,
    seconds_per_round: f64,
}

fn measure(trainer: &mut GtvTrainer, reps: usize) -> Measurement {
    for _ in 0..WARMUP_ROUNDS {
        trainer.train_round().expect("in-process transport");
    }
    // Drop warm-up traffic so the averages cover only measured rounds.
    trainer.network().reset_stats();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        trainer.train_round().expect("in-process transport");
        best = best.min(start.elapsed().as_secs_f64());
    }
    let stats = trainer.network_stats();
    let rounds = stats.rounds.len().max(1) as f64;
    let bytes: u64 = stats.rounds.iter().map(|r| r.bytes).sum();
    let messages: u64 = stats.rounds.iter().map(|r| r.messages).sum();
    Measurement {
        bytes_per_round: bytes as f64 / rounds,
        messages_per_round: messages as f64 / rounds,
        seconds_per_round: best,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_comms.json".to_string());
    let reps = std::env::var("GTV_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    eprintln!("bench_comms: {ROWS} rows, parties {PARTY_COUNTS:?}, {reps} measured rounds");

    let table = Dataset::Loan.generate(ROWS, 0);
    let n_cols = table.n_cols();

    let mut entries = Vec::new();
    for &parties in &PARTY_COUNTS {
        let per = n_cols / parties;
        let groups: Vec<Vec<usize>> = (0..parties)
            .map(|p| {
                let end = if p + 1 == parties { n_cols } else { (p + 1) * per };
                (p * per..end).collect()
            })
            .collect();
        // (schedule, codec) → measurement, for the derived ratios.
        let mut cells: Vec<(bool, bool, Measurement)> = Vec::with_capacity(4);
        for pipelined in [false, true] {
            for sparse in [false, true] {
                let shards = table.vertical_split(&groups);
                let mut trainer = GtvTrainer::new(shards, config(pipelined, sparse));
                cells.push((pipelined, sparse, measure(&mut trainer, reps)));
            }
        }
        for (pipelined, sparse, m) in &cells {
            let dense_bytes = cells
                .iter()
                .find(|(p, s, _)| p == pipelined && !s)
                .map_or(f64::NAN, |(_, _, d)| d.bytes_per_round);
            let lockstep_secs = cells
                .iter()
                .find(|(p, s, _)| !p && s == sparse)
                .map_or(f64::NAN, |(_, _, l)| l.seconds_per_round);
            let schedule = if *pipelined { "pipelined" } else { "lockstep" };
            let codec = if *sparse { "sparse" } else { "dense" };
            eprintln!(
                "  parties={parties} {schedule:<9} {codec:<6} {:>12.0} B/round  {:>5.0} msgs/round  {:.4} s/round",
                m.bytes_per_round, m.messages_per_round, m.seconds_per_round
            );
            entries.push(format!(
                "{{\"parties\":{parties},\"schedule\":\"{schedule}\",\"codec\":\"{codec}\",\
                 \"bytes_per_round\":{},\"messages_per_round\":{},\"seconds_per_round\":{},\
                 \"bytes_ratio_vs_dense\":{},\"speedup_vs_lockstep\":{}}}",
                json_f(m.bytes_per_round),
                json_f(m.messages_per_round),
                json_f(m.seconds_per_round),
                json_f(m.bytes_per_round / dense_bytes),
                json_f(lockstep_secs / m.seconds_per_round)
            ));
        }
    }

    let json = format!(
        "{{\"rows\":{ROWS},\"reps\":{reps},\"warmup_rounds\":{WARMUP_ROUNDS},\"cells\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write(&out_path, &json).expect("writing the benchmark report");
    println!("wrote {out_path}");
}
