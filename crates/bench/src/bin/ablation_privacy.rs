//! Privacy/extension ablations beyond the paper's headline experiments:
//!
//! 1. **Membership inference** (§3.3): distance-to-closest-record attack AUC
//!    on GTV's published synthetic data, against the verbatim-release upper
//!    bound and the independent-sample lower bound.
//! 2. **DP noise trade-off** (§3.3): quality degradation as Gaussian noise
//!    is injected into the uploaded intermediate logits — the accuracy cost
//!    the paper cites for not applying DP.
//! 3. **Future-work width boost** (§4.3.2): enlarging the small client's
//!    bottom network under the extreme 9010 split.

use gtv::{GtvConfig, GtvTrainer, NetPartition};
use gtv_bench::report::{f3, f4, MarkdownTable};
use gtv_bench::ExperimentScale;
use gtv_data::Dataset;
use gtv_metrics::{membership_inference, similarity};
use gtv_ml::{importance_ranking, ShapleyConfig};
use gtv_vfl::PartitionPlan;

fn main() {
    let scale = ExperimentScale::from_env();
    let base = |seed: u64| GtvConfig {
        rounds: scale.rounds,
        d_steps: 1,
        batch: scale.batch,
        block_width: scale.width,
        embedding_dim: 64,
        seed,
        ..GtvConfig::default()
    };

    // --- 1. Membership inference -----------------------------------------
    println!("# Membership-inference attack (loan stand-in)\n");
    let table = Dataset::Loan.generate(scale.rows, 0);
    let (train, holdout) = table.train_test_split(0.5, 1);
    let groups = PartitionPlan::Even { n_clients: 2 }
        .column_groups(table.n_cols(), None, None)
        .expect("valid partition");
    let mut trainer = GtvTrainer::new(train.vertical_split(&groups), base(0));
    trainer.train().expect("GTV protocol transport failed");
    let synth = trainer.synthesize(train.n_rows(), 2).expect("GTV protocol transport failed");
    // Restore original column order for schema-matched comparison.
    let order: Vec<usize> = groups.iter().flatten().copied().collect();
    let train_o = train.select_columns(&order);
    let holdout_o = holdout.select_columns(&order);
    let gtv_report = membership_inference(&train_o, &holdout_o, &synth);
    let verbatim = membership_inference(&train_o, &holdout_o, &train_o);
    let independent = membership_inference(
        &train_o,
        &holdout_o,
        &Dataset::Loan.generate(train.n_rows(), 77).select_columns(&order),
    );
    let mut t = MarkdownTable::new(["published data", "attack AUC (0.5 = no leak)"]);
    t.row(["verbatim training rows (upper bound)".to_string(), f3(verbatim.auc)]);
    t.row(["GTV synthetic".to_string(), f3(gtv_report.auc)]);
    t.row(["independent sample (lower bound)".to_string(), f3(independent.auc)]);
    t.print();

    // --- 2. DP noise trade-off -------------------------------------------
    println!("# DP-noise trade-off (loan stand-in)\n");
    let mut t = MarkdownTable::new(["σ (logit noise)", "avg JSD", "avg WD", "diff corr"]);
    for sigma in [0.0f32, 0.2, 0.5, 1.0] {
        let config = GtvConfig { dp_noise_sigma: sigma, ..base(3) };
        let mut tr = GtvTrainer::new(train.vertical_split(&groups), config);
        tr.train().expect("GTV protocol transport failed");
        let s = tr.synthesize(train.n_rows(), 4).expect("GTV protocol transport failed");
        let rep = similarity(&train_o, &s);
        t.row([format!("{sigma:.1}"), f4(rep.avg_jsd), f4(rep.avg_wd), f3(rep.diff_corr)]);
        eprintln!("sigma {sigma} done");
    }
    t.print();
    println!("expected shape: quality degrades monotonically with σ — the cost the");
    println!("paper cites for omitting DP.\n");

    // --- 3. Future-work width boost at 9010 --------------------------------
    println!("# Future work: boosting the small client's network at 9010\n");
    let ranking = importance_ranking(&table, ShapleyConfig { seed: 7, ..Default::default() });
    let target = table.schema().target().expect("loan has a target");
    let groups_9010 = PartitionPlan::ByImportance { important_frac: 0.9 }
        .column_groups(table.n_cols(), Some(target), Some(&ranking))
        .expect("valid partition");
    let order: Vec<usize> = groups_9010.iter().flatten().copied().collect();
    let train_o = train.select_columns(&order);
    let mut t = MarkdownTable::new(["configuration", "avg JSD", "avg WD", "diff corr"]);
    for (name, mult) in [("default widths", vec![]), ("small client ×3", vec![1.0f32, 3.0])] {
        let config = GtvConfig {
            partition: NetPartition::d2g0(),
            client_width_multipliers: mult,
            ..base(5)
        };
        let mut tr = GtvTrainer::new(train.vertical_split(&groups_9010), config);
        tr.train().expect("GTV protocol transport failed");
        let s = tr.synthesize(train.n_rows(), 6).expect("GTV protocol transport failed");
        let rep = similarity(&train_o, &s);
        t.row([name.to_string(), f4(rep.avg_jsd), f4(rep.avg_wd), f3(rep.diff_corr)]);
        eprintln!("{name} done");
    }
    t.print();
}
