//! Tensor hot-loop benchmark: matmul, elementwise, reductions and a
//! backward pass, swept over worker-pool sizes.
//!
//! Emits `BENCH_tensor.json` (path overridable as the first CLI argument)
//! with wall times, GFLOP/s and per-op speedups versus the single-threaded
//! run. The host's available parallelism is recorded alongside: on a
//! single-core machine the sweep still *validates* the pool (results stay
//! bit-identical) but cannot show wall-clock speedups — read the numbers
//! with the `host_parallelism` field in hand.
//!
//! A roofline summary rides along: a compute-peak probe (the repo's own
//! f32x8 dot kernel on an L1-resident operand — mul+add throughput, no
//! FMA, matching the determinism contract), per-case nominal bytes moved,
//! arithmetic intensity (FLOP/byte) and single-thread percent-of-peak,
//! plus a scalar-libm reference for the elementwise and reduction cases so
//! the SIMD delta is measured, not asserted.
//!
//! `GTV_BENCH_REPS` controls repetitions per measurement (default 3; the
//! minimum over reps is reported).

use gtv_tensor::{pool, simd, Graph, Tensor, UnaryOp};
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// SplitMix64 — deterministic fill without ambient randomness.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn filled(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed;
    let data: Vec<f32> =
        (0..rows * cols).map(|_| (splitmix(&mut state) % 2000) as f32 / 1000.0 - 1.0).collect();
    Tensor::from_vec(rows, cols, data)
}

struct Case {
    name: &'static str,
    /// Floating-point operations per run (for GFLOP/s).
    flops: f64,
    /// Nominal bytes moved per run (operands read once + result written
    /// once, cache-ignorant) — the denominator of arithmetic intensity.
    bytes: f64,
    run: Box<dyn Fn() -> f32>,
    /// Scalar-libm reference doing the same arithmetic without the f32x8
    /// kernels, for the SIMD-delta column. `None` where no meaningful
    /// scalar twin exists (matmul shares its inner kernel either way).
    scalar_run: Option<Box<dyn Fn() -> f32>>,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    for n in [128usize, 256, 512] {
        let a = filled(n, n, 1);
        let b = filled(n, n, 2);
        out.push(Case {
            name: match n {
                128 => "matmul_128",
                256 => "matmul_256",
                _ => "matmul_512",
            },
            flops: 2.0 * (n * n * n) as f64,
            bytes: (3 * n * n * 4) as f64,
            run: Box::new(move || a.matmul(&b).at(0, 0)),
            scalar_run: None,
        });
    }
    let big = filled(1024, 1024, 3);
    let elem = big.clone();
    let elem_scalar = big.clone();
    out.push(Case {
        name: "elementwise_tanh_1m",
        flops: (1024 * 1024) as f64,
        bytes: (2 * 1024 * 1024 * 4) as f64,
        run: Box::new(move || elem.apply(UnaryOp::Tanh).at(0, 0)),
        scalar_run: Some(Box::new(move || {
            elem_scalar.as_slice().iter().map(|&v| v.tanh()).fold(0.0f32, f32::max)
        })),
    });
    let red = big.clone();
    let red_scalar = big.clone();
    out.push(Case {
        name: "reduction_sum_1m",
        flops: (1024 * 1024) as f64,
        bytes: (1024 * 1024 * 4) as f64,
        run: Box::new(move || red.sum_all().item()),
        scalar_run: Some(Box::new(move || red_scalar.as_slice().iter().sum::<f32>())),
    });
    let x0 = filled(256, 128, 4);
    let w0 = filled(128, 64, 5);
    out.push(Case {
        name: "backward_tanh_matmul",
        // Forward matmul + backward's two matmuls, elementwise terms omitted.
        flops: 3.0 * 2.0 * (256 * 128 * 64) as f64,
        bytes: (3 * (256 * 128 + 128 * 64 + 256 * 64) * 4) as f64,
        run: Box::new(move || {
            let g = Graph::new();
            let x = g.leaf(x0.clone());
            let w = g.leaf(w0.clone());
            let h = g.tanh(g.matmul(x, w));
            let y = g.mean_all(g.mul(h, h));
            let dw = g.grad(y, &[w])[0];
            g.value(dw).at(0, 0)
        }),
        scalar_run: None,
    });
    out
}

/// Single-thread compute ceiling in GFLOP/s: the repo's own f32x8 dot
/// kernel over an L1-resident 4Ki-element pair (2 FLOPs/element, no FMA —
/// the determinism contract forbids it, so this *is* the relevant peak for
/// every kernel in the crate, not a theoretical FMA number).
fn measure_peak(reps: usize) -> f64 {
    const LEN: usize = 4096;
    const ITERS: usize = 20_000;
    let mut state = 7u64;
    let a: Vec<f32> =
        (0..LEN).map(|_| (splitmix(&mut state) % 2000) as f32 / 1000.0 - 1.0).collect();
    let b: Vec<f32> =
        (0..LEN).map(|_| (splitmix(&mut state) % 2000) as f32 / 1000.0 - 1.0).collect();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let mut sink = 0.0f64;
        for _ in 0..ITERS {
            sink += f64::from(simd::dot(&a, &b));
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(sink.is_finite(), "peak probe must produce finite values");
        best = best.min(elapsed);
    }
    2.0 * (LEN * ITERS) as f64 / best / 1e9
}

fn measure(case: &Case, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let sink = (case.run)();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(sink.is_finite(), "benchmark kernels must produce finite values");
        best = best.min(elapsed);
    }
    best
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_tensor.json".to_string());
    let reps = std::env::var("GTV_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let host = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    eprintln!("bench_tensor: host parallelism {host}, {reps} reps, threads {THREAD_COUNTS:?}");

    let peak_gflops = measure_peak(reps);
    eprintln!("  compute peak (f32x8 dot, L1-resident): {peak_gflops:.2} GFLOP/s");

    let cases = cases();
    // times[case][thread-count index]
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); cases.len()];
    for &threads in &THREAD_COUNTS {
        pool::set_threads(threads);
        for (i, case) in cases.iter().enumerate() {
            let t = measure(case, reps);
            times[i].push(t);
            eprintln!("  {:>2} threads  {:<22} {:>9.3} ms", threads, case.name, t * 1e3);
        }
    }
    pool::set_threads(1);

    let mut entries = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let base = times[i][0];
        let per_threads: Vec<String> = THREAD_COUNTS
            .iter()
            .zip(&times[i])
            .map(|(&threads, &t)| {
                format!(
                    "{{\"threads\":{threads},\"seconds\":{},\"gflops\":{},\"speedup_vs_1\":{}}}",
                    json_f(t),
                    json_f(case.flops / t / 1e9),
                    json_f(base / t)
                )
            })
            .collect();
        // Roofline columns: single-thread numbers against the probe's
        // single-thread peak, plus the scalar-libm delta where it exists.
        let mut roofline = format!(
            "\"bytes\":{},\"arithmetic_intensity\":{},\"pct_of_peak_1t\":{}",
            case.bytes,
            json_f(case.flops / case.bytes),
            json_f(case.flops / base / 1e9 / peak_gflops * 100.0)
        );
        if let Some(scalar) = &case.scalar_run {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let start = Instant::now();
                let sink = scalar();
                let elapsed = start.elapsed().as_secs_f64();
                assert!(sink.is_finite(), "scalar reference must produce finite values");
                best = best.min(elapsed);
            }
            let scalar_gflops = case.flops / best / 1e9;
            eprintln!(
                "  scalar ref  {:<22} {:>9.3} ms  (SIMD 1t is {:.2}x)",
                case.name,
                best * 1e3,
                best / base
            );
            roofline.push_str(&format!(
                ",\"scalar_gflops\":{},\"simd_speedup_vs_scalar\":{}",
                json_f(scalar_gflops),
                json_f(best / base)
            ));
        }
        entries.push(format!(
            "{{\"op\":\"{}\",\"flops\":{},{},\"runs\":[{}]}}",
            case.name,
            case.flops,
            roofline,
            per_threads.join(",")
        ));
    }
    let json = format!(
        "{{\"host_parallelism\":{host},\"reps\":{reps},\"thread_counts\":{:?},\
         \"roofline_peak_gflops\":{},\"roofline_probe\":\"f32x8_dot_l1_4k\",\"cases\":[{}]}}\n",
        THREAD_COUNTS,
        json_f(peak_gflops),
        entries.join(",")
    );
    std::fs::write(&out_path, &json).expect("writing the benchmark report");
    println!("wrote {out_path}");
}
