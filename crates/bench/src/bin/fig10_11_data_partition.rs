//! Fig. 10 / Fig. 11 / Table 2 — training-data partition study: features
//! are Shapley-ranked and split 1090 / 5050 / 9010 between two clients (the
//! target column always sits with the *less* important half), for both
//! `D_0^2 G_2^0` (Fig. 10) and `D_0^2 G_0^2` (Fig. 11).

use gtv::NetPartition;
use gtv_bench::report::{f3, f4, MarkdownTable};
use gtv_bench::{run_gtv, ExperimentScale};
use gtv_data::Dataset;
use gtv_ml::{importance_ranking, ShapleyConfig};
use gtv_vfl::PartitionPlan;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "# Fig. 10/11 + Table 2 — data partition (rows={}, rounds={}, repeats={})\n",
        scale.rows, scale.rounds, scale.repeats
    );

    let splits = [("1090", 0.1), ("5050", 0.5), ("9010", 0.9)];
    let partitions = [
        ("D_0^2 G_2^0 (Fig. 10)", NetPartition::d2g0()),
        ("D_0^2 G_0^2 (Fig. 11)", NetPartition::d2g2()),
    ];

    // Shapley rankings once per dataset.
    let rankings: Vec<(Dataset, Vec<usize>, usize)> = Dataset::all()
        .iter()
        .map(|&ds| {
            let data = ds.generate(scale.rows, 7);
            let target = data.schema().target().expect("target exists");
            let ranking =
                importance_ranking(&data, ShapleyConfig { seed: 7, ..Default::default() });
            eprintln!("shapley ranking done for {}", ds.name());
            (ds, ranking, target)
        })
        .collect();

    let mut table2 = MarkdownTable::new([
        "partition-distribution",
        "loan",
        "adult",
        "covtype",
        "intrusion",
        "credit",
    ]);

    for (pname, partition) in partitions {
        println!("## {pname}\n");
        let mut fig = MarkdownTable::new([
            "dataset",
            "split",
            "Δaccuracy",
            "ΔF1",
            "ΔAUC",
            "avg JSD",
            "avg WD",
        ]);
        let mut corr_rows: Vec<Vec<String>> =
            splits.iter().map(|(s, _)| vec![format!("{} -{s}", partition.label())]).collect();
        for (ds, ranking, target) in &rankings {
            let n = ds.generate(4, 0).n_cols();
            for (si, (sname, frac)) in splits.iter().enumerate() {
                let groups = PartitionPlan::ByImportance { important_frac: *frac }
                    .column_groups(n, Some(*target), Some(ranking))
                    .expect("valid partition");
                let r = run_gtv(*ds, &groups, partition, scale.width, scale);
                fig.row([
                    ds.name().to_string(),
                    (*sname).to_string(),
                    f3(r.utility.accuracy),
                    f3(r.utility.f1),
                    f3(r.utility.auc),
                    f4(r.sim.avg_jsd),
                    f4(r.sim.avg_wd),
                ]);
                corr_rows[si].push(f3(r.diff_corr));
                eprintln!("{} {} {} done ({:.0}s)", partition.label(), ds.name(), sname, r.seconds);
            }
        }
        fig.print();
        for row in corr_rows {
            table2.row(row);
        }
    }

    println!("## Table 2 — Diff. Corr. by data partition\n");
    table2.print();
    println!("expected shape (paper): 1090 ≤ 5050 ≤ 9010 on Diff.Corr. and utility");
    println!("degradation; D_0^2 G_0^2 less affected than D_0^2 G_2^0 at 9010.");
}
