//! §4.3.1 communication ablation: protocol bytes per round by network
//! partition, by client count, and with the faithful (full-table upload)
//! real path vs the optimized one — quantifying the paper's discussion of
//! `D_0^2 G_0^2` vs `D_0^2 G_2^0` overheads and the cost of the
//! privacy-preserving index selection.

use gtv::{GtvConfig, GtvTrainer, NetPartition};
use gtv_bench::report::MarkdownTable;
use gtv_data::Dataset;
use gtv_vfl::{PartitionPlan, Transport};

fn bytes_per_round(n_clients: usize, partition: NetPartition, faithful: bool) -> (f64, f64) {
    let table = Dataset::Adult.generate(300, 0);
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .expect("valid partition");
    let shards = table.vertical_split(&groups);
    let config = GtvConfig {
        partition,
        rounds: 0,
        d_steps: 1,
        batch: 64,
        block_width: 256,
        embedding_dim: 64,
        faithful_real_path: faithful,
        ..GtvConfig::default()
    };
    let mut trainer = GtvTrainer::new(shards, config);
    trainer.network().reset_stats();
    let rounds = 5;
    for _ in 0..rounds {
        trainer.train_round().expect("GTV protocol transport failed");
    }
    let stats = trainer.network_stats();
    (
        stats.bytes as f64 / rounds as f64 / 1024.0,
        stats.server_bytes() as f64 / rounds as f64 / 1024.0,
    )
}

fn main() {
    println!("# Communication ablation (adult stand-in, batch 64, width 256)\n");

    println!("## KiB per round by partition (2 clients)\n");
    let mut t = MarkdownTable::new(["partition", "KiB/round", "KiB/round through server"]);
    for partition in NetPartition::all_nine() {
        let (total, server) = bytes_per_round(2, partition, false);
        t.row([partition.label(), format!("{total:.0}"), format!("{server:.0}")]);
        eprintln!("{} done", partition.label());
    }
    t.print();

    println!("## KiB per round by client count (D_0^2 G_2^0)\n");
    let mut t = MarkdownTable::new(["clients", "KiB/round", "KiB/round through server"]);
    for n in 2..=5usize {
        let (total, server) = bytes_per_round(n, NetPartition::d2g0(), false);
        t.row([n.to_string(), format!("{total:.0}"), format!("{server:.0}")]);
    }
    t.print();

    println!("## Faithful privacy-preserving real path vs optimized (2 clients, D_0^2 G_2^0)\n");
    let mut t = MarkdownTable::new(["real path", "KiB/round"]);
    let (opt, _) = bytes_per_round(2, NetPartition::d2g0(), false);
    let (faithful, _) = bytes_per_round(2, NetPartition::d2g0(), true);
    t.row(["selected rows only".to_string(), format!("{opt:.0}")]);
    t.row(["full-table upload (paper §3.1.6)".to_string(), format!("{faithful:.0}")]);
    t.print();
    println!("expected shape (paper): G_0^2 (generator on server) moves more bytes than");
    println!("G_2^0; the privacy-preserving full-table real path costs ~rows/batch more.");
}
