//! Serving benchmark for the batched synthesis engine (DESIGN.md §14).
//!
//! Smoke-trains one Loan model, registers it warm in a [`ModelRegistry`],
//! then drives the in-process [`SynthService`] with closed-loop clients at
//! several concurrency levels and emits `BENCH_serve.json` (path
//! overridable as the first CLI argument). Each client issues requests
//! back-to-back — under the leader-combining engine, concurrent callers
//! coalesce into shared batched forward passes, so the sweep shows how
//! throughput and batch occupancy scale with offered concurrency.
//!
//! Per level the artifact records rows/s, request p50/p99 latency (ms),
//! the mean coalesced batch size and full batch-size histogram from the
//! engine's own counters, and the tensor pool hit rate (steady-state
//! serving should allocate nothing — see the zero_alloc serve test).
//! `GTV_BENCH_REPS` scales requests per client (default 2 → 32 requests).

use gtv::{GtvConfig, GtvTrainer, SynthSpec};
use gtv_data::Dataset;
use gtv_serve::{ModelRegistry, RowsRequest, ServeConfig, SynthService};
use gtv_tensor::pool_mem;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 96;
const ROWS_PER_REQUEST: usize = 64;
const REQUESTS_PER_REP: usize = 16;
const CONCURRENCY: [usize; 3] = [1, 4, 8];
const MODEL: &str = "loan";

struct Level {
    clients: usize,
    rows_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_batch: f64,
    pool_hit_rate: f64,
    batch_hist: Vec<u64>,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_level(service: &Arc<SynthService>, clients: usize, per_client: usize) -> Level {
    // Warm one request per client so first-touch pool misses and lazy
    // staging growth stay out of the measured window.
    for c in 0..clients {
        let req = request(c as u64, 0);
        service.request(&req).expect("warm-up request");
    }
    service.reset_stats();
    pool_mem::reset_stats();

    let start = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let service = Arc::clone(service);
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let req = request(c as u64, i as u64);
                        let t = Instant::now();
                        let table = service.request(&req).expect("serving request");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(table.n_rows(), ROWS_PER_REQUEST);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let stats = service.stats();
    let mut sorted = latencies;
    sorted.sort_by(|a, b| a.total_cmp(b));
    Level {
        clients,
        rows_per_sec: (clients * per_client * ROWS_PER_REQUEST) as f64 / elapsed,
        p50_ms: percentile(&sorted, 0.50),
        p99_ms: percentile(&sorted, 0.99),
        mean_batch: stats.mean_batch(),
        pool_hit_rate: stats.pool_hit_rate(),
        batch_hist: stats.batch_hist.to_vec(),
    }
}

fn request(client: u64, i: u64) -> RowsRequest {
    RowsRequest {
        model: MODEL.to_string(),
        // Distinct seed per (client, iteration): results stay
        // bit-reproducible however the engine groups the requests.
        spec: SynthSpec { n: ROWS_PER_REQUEST, seed: client * 1_000_003 + i, cond: None },
        deadline_ticks: None,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serve.json".to_string());
    let reps: usize =
        std::env::var("GTV_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let per_client = REQUESTS_PER_REP * reps;
    eprintln!(
        "bench_serve: {ROWS_PER_REQUEST} rows/request, {per_client} requests/client, \
         concurrency {CONCURRENCY:?}"
    );

    let table = Dataset::Loan.generate(ROWS, 3);
    let n = table.n_cols();
    let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
    let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
    trainer.train_round().expect("smoke training round");
    let synth = trainer.synthesizer().expect("synthesizer");

    pool_mem::set_enabled(true);
    let mut registry = ModelRegistry::new();
    let parked = registry.insert_warm(MODEL, synth).expect("warm registration");
    eprintln!("  model '{MODEL}' registered, {parked} buffers pre-warmed");
    let service = Arc::new(SynthService::new(registry, ServeConfig::default()));

    let mut entries = Vec::new();
    for &clients in &CONCURRENCY {
        let level = run_level(&service, clients, per_client);
        eprintln!(
            "  clients={clients} {:>9.0} rows/s  p50 {:.2} ms  p99 {:.2} ms  \
             mean batch {:.1}  pool hit rate {:.3}",
            level.rows_per_sec, level.p50_ms, level.p99_ms, level.mean_batch, level.pool_hit_rate
        );
        let hist: Vec<String> = level.batch_hist.iter().map(u64::to_string).collect();
        entries.push(format!(
            "{{\"clients\":{},\"rows_per_sec\":{},\"p50_ms\":{},\"p99_ms\":{},\
             \"mean_batch\":{},\"pool_hit_rate\":{},\"batch_hist\":[{}]}}",
            level.clients,
            json_f(level.rows_per_sec),
            json_f(level.p50_ms),
            json_f(level.p99_ms),
            json_f(level.mean_batch),
            json_f(level.pool_hit_rate),
            hist.join(",")
        ));
    }

    let json = format!(
        "{{\"rows_per_request\":{ROWS_PER_REQUEST},\"requests_per_client\":{per_client},\
         \"reps\":{reps},\"levels\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write(&out_path, &json).expect("writing the benchmark report");
    println!("wrote {out_path}");
}
