//! Training-step benchmark for the step-scoped memory runtime
//! (DESIGN.md §9): centralized and 2-client VFL rounds, with buffer
//! recycling on and off.
//!
//! Emits `BENCH_step.json` (path overridable as the first CLI argument)
//! with steps/second, allocator misses per step and the pool hit rate for
//! every scenario × pool setting. `GTV_BENCH_REPS` controls repetitions per
//! measurement (default 3; the minimum wall time over reps is reported,
//! counters are accumulated over all reps).
//!
//! Everything runs single-threaded (`threads = 1`) so the thread-local pool
//! counters are exact and the comparison isolates allocator pressure, not
//! scheduling.

use gtv::{CentralizedTrainer, GtvConfig, GtvTrainer};
use gtv_data::Dataset;
use gtv_tensor::pool_mem;
use std::time::Instant;

const ROWS: usize = 256;
const WARMUP_ROUNDS: usize = 2;
const TIMED_ROUNDS: usize = 4;

fn config(pool_recycling: bool) -> GtvConfig {
    GtvConfig { threads: 1, pool_recycling, ..GtvConfig::smoke() }
}

struct Measurement {
    seconds_per_round: f64,
    steps_per_sec: f64,
    allocations_per_step: f64,
    pool_hit_rate: f64,
}

/// Warms the trainer up, then times `TIMED_ROUNDS` rounds `reps` times.
fn measure(mut run_round: impl FnMut(), steps_per_round: usize, reps: usize) -> Measurement {
    for _ in 0..WARMUP_ROUNDS {
        run_round();
    }
    pool_mem::reset_stats();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..TIMED_ROUNDS {
            run_round();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let stats = pool_mem::stats();
    let steps = (reps * TIMED_ROUNDS * steps_per_round) as f64;
    let requests = stats.hits + stats.misses;
    Measurement {
        seconds_per_round: best / TIMED_ROUNDS as f64,
        steps_per_sec: steps_per_round as f64 / (best / TIMED_ROUNDS as f64),
        allocations_per_step: stats.misses as f64 / steps,
        pool_hit_rate: if requests == 0 { 0.0 } else { stats.hits as f64 / requests as f64 },
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_step.json".to_string());
    let reps = std::env::var("GTV_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    eprintln!("bench_step: {ROWS} rows, {TIMED_ROUNDS} timed rounds, {reps} reps");

    let table = Dataset::Loan.generate(ROWS, 0);
    let n_cols = table.n_cols();
    let split: Vec<Vec<usize>> = vec![(0..n_cols / 2).collect(), (n_cols / 2..n_cols).collect()];

    let mut entries = Vec::new();
    for pool_recycling in [true, false] {
        for scenario in ["centralized", "vfl_2client"] {
            // Fresh pool per scenario so parked buffers from the previous
            // configuration can't subsidize this one's hit rate.
            pool_mem::clear();
            let cfg = config(pool_recycling);
            let steps_per_round = cfg.d_steps + 1;
            let m = match scenario {
                "centralized" => {
                    let mut t = CentralizedTrainer::new(table.clone(), cfg);
                    measure(
                        || t.train_round().expect("in-process transport"),
                        steps_per_round,
                        reps,
                    )
                }
                _ => {
                    let shards = table.vertical_split(&split);
                    let mut t = GtvTrainer::new(shards, cfg);
                    measure(
                        || t.train_round().expect("in-process transport"),
                        steps_per_round,
                        reps,
                    )
                }
            };
            eprintln!(
                "  {scenario:<12} pool={pool_recycling:<5} {:>8.1} steps/s  {:>7.1} allocs/step  hit rate {:.3}",
                m.steps_per_sec, m.allocations_per_step, m.pool_hit_rate
            );
            entries.push(format!(
                "{{\"scenario\":\"{scenario}\",\"pool_recycling\":{pool_recycling},\
                 \"seconds_per_round\":{},\"steps_per_sec\":{},\
                 \"allocations_per_step\":{},\"pool_hit_rate\":{}}}",
                json_f(m.seconds_per_round),
                json_f(m.steps_per_sec),
                json_f(m.allocations_per_step),
                json_f(m.pool_hit_rate)
            ));
        }
    }
    pool_mem::set_enabled(true);
    pool_mem::clear();

    let json = format!(
        "{{\"rows\":{ROWS},\"reps\":{reps},\"timed_rounds\":{TIMED_ROUNDS},\"scenarios\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write(&out_path, &json).expect("writing the benchmark report");
    println!("wrote {out_path}");
}
