//! # gtv-bench
//!
//! Experiment harness regenerating every table and figure of the GTV
//! paper's evaluation (§4). One binary per experiment:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3_motivation` | Fig. 3 — feature-importance case study |
//! | `fig8_partition` | Fig. 8 — 9 network partitions vs centralized |
//! | `fig10_11_data_partition` | Fig. 10, Fig. 11 and Table 2 — 1090/5050/9010 splits |
//! | `fig12_13_clients` | Fig. 12, Fig. 13 and Table 3 — 2–5 clients, default/enlarged generator |
//! | `fig5_6_privacy` | Fig. 5/6 — server reconstruction attack |
//! | `ablation_comm` | §4.3.1 — communication overhead by partition |
//!
//! Scale is controlled by environment variables (`GTV_ROWS`, `GTV_ROUNDS`,
//! `GTV_REPEATS`, `GTV_BATCH`) so the same binaries run as a quick smoke or
//! a paper-scale reproduction. Criterion micro-benchmarks live in
//! `benches/`.

pub mod report;
pub mod runner;

pub use runner::{run_centralized, run_gtv, ExperimentScale, RunOutcome};
