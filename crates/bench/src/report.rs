//! Markdown table rendering for the experiment binaries.

/// A simple markdown table builder.
#[derive(Debug, Default, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the rendered table.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 4 decimals.
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = MarkdownTable::new(["a", "b"]);
        t.row(["1", "2"]);
        let s = t.render();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("|---|---|"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_arity() {
        let mut t = MarkdownTable::new(["a"]);
        t.row(["1", "2"]);
    }
}
