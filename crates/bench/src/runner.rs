//! Shared experiment pipeline: generate data → split → train → synthesize
//! → score (ML utility + statistical similarity + Diff.Corr variants).

use gtv::{CentralizedTrainer, GtvConfig, GtvTrainer, NetPartition};
use gtv_data::{Dataset, Table};
use gtv_metrics::{
    across_client_diff_corr, avg_client_diff_corr, diff_corr, similarity, SimilarityReport,
};
use gtv_ml::{utility_difference, Scores};
use std::time::Instant;

/// Experiment scale knobs (env-overridable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Rows per dataset (the paper uses 5 K–50 K; default is CPU-sized).
    pub rows: usize,
    /// Training rounds (the paper trains 300 epochs over 50 K rows).
    pub rounds: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Repetitions averaged per configuration (paper: 3).
    pub repeats: usize,
    /// Σ block width (the paper's default is 256; the *enlarged* generator
    /// of §4.3.3 is 3× this).
    pub width: usize,
}

impl ExperimentScale {
    /// Default CPU-sized scale.
    pub fn default_scale() -> Self {
        Self { rows: 800, rounds: 300, batch: 128, repeats: 1, width: 256 }
    }

    /// Tiny scale for smoke runs.
    pub fn quick() -> Self {
        Self { rows: 250, rounds: 40, batch: 64, repeats: 1, width: 64 }
    }

    /// Reads `GTV_ROWS`, `GTV_ROUNDS`, `GTV_BATCH`, `GTV_REPEATS` (and
    /// `GTV_QUICK=1` for the smoke preset) over the defaults.
    pub fn from_env() -> Self {
        let mut s = if std::env::var("GTV_QUICK").is_ok_and(|v| v == "1") {
            Self::quick()
        } else {
            Self::default_scale()
        };
        let read = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        if let Some(v) = read("GTV_ROWS") {
            s.rows = v;
        }
        if let Some(v) = read("GTV_ROUNDS") {
            s.rounds = v;
        }
        if let Some(v) = read("GTV_BATCH") {
            s.batch = v;
        }
        if let Some(v) = read("GTV_REPEATS") {
            s.repeats = v.max(1);
        }
        if let Some(v) = read("GTV_WIDTH") {
            s.width = v;
        }
        s
    }

    /// GTV config for this scale.
    pub fn config(&self, partition: NetPartition, block_width: usize, seed: u64) -> GtvConfig {
        GtvConfig {
            partition,
            rounds: self.rounds,
            d_steps: 1,
            batch: self.batch,
            block_width,
            embedding_dim: 64,
            seed,
            ..GtvConfig::default()
        }
    }
}

/// Scores of one (averaged) run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOutcome {
    /// ML-utility difference vs real-trained models (lower = better).
    pub utility: Scores,
    /// Statistical similarity (lower = better).
    pub sim: SimilarityReport,
    /// Full-table Diff. Corr. (Tables 2/3).
    pub diff_corr: f64,
    /// Paper's Avg-client Diff.Corr. (2-client runs; 0 otherwise).
    pub avg_client: f64,
    /// Paper's Across-client Diff.Corr. (2-client runs; 0 otherwise).
    pub across_client: f64,
    /// Total protocol bytes.
    pub bytes: u64,
    /// Wall-clock seconds of training.
    pub seconds: f64,
}

impl RunOutcome {
    /// Elementwise mean over repeats.
    pub fn mean(items: &[RunOutcome]) -> RunOutcome {
        let n = items.len().max(1) as f64;
        let mut out = RunOutcome::default();
        for it in items {
            out.utility.accuracy += it.utility.accuracy / n;
            out.utility.f1 += it.utility.f1 / n;
            out.utility.auc += it.utility.auc / n;
            out.sim.avg_jsd += it.sim.avg_jsd / n;
            out.sim.avg_wd += it.sim.avg_wd / n;
            out.sim.diff_corr += it.sim.diff_corr / n;
            out.diff_corr += it.diff_corr / n;
            out.avg_client += it.avg_client / n;
            out.across_client += it.across_client / n;
            out.bytes += (it.bytes as f64 / n) as u64;
            out.seconds += it.seconds / n;
        }
        out
    }
}

fn score_run(
    train: &Table,
    test: &Table,
    synth: &Table,
    groups: &[Vec<usize>],
    bytes: u64,
    seconds: f64,
    seed: u64,
) -> RunOutcome {
    let utility = utility_difference(train, synth, test, seed);
    let sim = similarity(train, synth);
    let dc = diff_corr(train, synth);
    let (avg_client, across_client) = if groups.len() == 2 {
        // `train` and `synth` are both in group-concatenation order, so the
        // per-client shards are positional prefixes/suffixes.
        let mut cursor = 0;
        let mut positional = Vec::new();
        for g in groups {
            positional.push((cursor..cursor + g.len()).collect::<Vec<_>>());
            cursor += g.len();
        }
        let real_parts = train.vertical_split(&positional);
        let synth_parts = synth.vertical_split(&positional);
        (
            avg_client_diff_corr(&real_parts, &synth_parts),
            across_client_diff_corr(
                &real_parts[0],
                &real_parts[1],
                &synth_parts[0],
                &synth_parts[1],
            ),
        )
    } else {
        (0.0, 0.0)
    };
    RunOutcome { utility, sim, diff_corr: dc, avg_client, across_client, bytes, seconds }
}

/// Trains GTV on `dataset` with the given column groups and scores the
/// result; averages over `scale.repeats` seeds.
pub fn run_gtv(
    dataset: Dataset,
    groups: &[Vec<usize>],
    partition: NetPartition,
    block_width: usize,
    scale: ExperimentScale,
) -> RunOutcome {
    let outcomes: Vec<RunOutcome> = (0..scale.repeats)
        .map(|rep| {
            let seed = 100 + rep as u64;
            let table = dataset.generate(scale.rows, seed);
            let (train, test) = table.train_test_split(0.2, seed);
            let shards = train.vertical_split(groups);
            let mut trainer = GtvTrainer::new(shards, scale.config(partition, block_width, seed));
            let start = Instant::now();
            trainer.train().expect("GTV protocol transport failed");
            let seconds = start.elapsed().as_secs_f64();
            let synth = trainer
                .synthesize(train.n_rows(), seed + 1)
                .expect("GTV protocol transport failed");
            // The synthetic join's column order follows the group order;
            // reorder the real train/test tables identically so schemas
            // match for scoring.
            let order: Vec<usize> = groups.iter().flatten().copied().collect();
            let train_o = train.select_columns(&order);
            let test_o = test.select_columns(&order);
            score_run(
                &train_o,
                &test_o,
                &synth,
                groups,
                trainer.network_stats().bytes,
                seconds,
                seed,
            )
        })
        .collect();
    RunOutcome::mean(&outcomes)
}

/// Trains the centralized baseline and scores it identically.
pub fn run_centralized(dataset: Dataset, block_width: usize, scale: ExperimentScale) -> RunOutcome {
    let outcomes: Vec<RunOutcome> = (0..scale.repeats)
        .map(|rep| {
            let seed = 100 + rep as u64;
            let table = dataset.generate(scale.rows, seed);
            let (train, test) = table.train_test_split(0.2, seed);
            let mut trainer = CentralizedTrainer::new(
                train.clone(),
                scale.config(NetPartition::d2g0(), block_width, seed),
            );
            let start = Instant::now();
            trainer.train().expect("GTV protocol transport failed");
            let seconds = start.elapsed().as_secs_f64();
            let synth = trainer
                .synthesize(train.n_rows(), seed + 1)
                .expect("GTV protocol transport failed");
            score_run(&train, &test, &synth, &[], 0, seconds, seed)
        })
        .collect();
    RunOutcome::mean(&outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_finite_scores() {
        let scale = ExperimentScale { rows: 120, rounds: 4, batch: 32, repeats: 1, width: 64 };
        let groups = vec![(0..6).collect::<Vec<_>>(), (6..13).collect::<Vec<_>>()];
        let out = run_gtv(Dataset::Loan, &groups, NetPartition::d2g0(), 64, scale);
        assert!(out.utility.f1.is_finite());
        assert!(out.sim.avg_jsd.is_finite());
        assert!(out.bytes > 0);
        assert!(out.avg_client > 0.0);
    }

    #[test]
    fn scale_env_defaults() {
        let s = ExperimentScale::default_scale();
        assert!(s.rows > 0 && s.rounds > 0 && s.repeats >= 1);
    }
}
