//! The paper's ML-utility pipeline (§4.2.1): train the five standard
//! classifiers on (real or synthetic) training data, evaluate on the real
//! test set, and report the *difference* between real-trained and
//! synthetic-trained scores — lower is better.

use crate::features::Featurizer;
use crate::forest::{ForestConfig, RandomForest};
use crate::linear::{LinearConfig, LinearSvm, LogisticRegression};
use crate::metrics::{accuracy, macro_auc, macro_f1};
use crate::mlp::{MlpClassifier, MlpConfig};
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use gtv_data::Table;

/// Accuracy / macro-F1 / macro-AUC triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Classification accuracy.
    pub accuracy: f64,
    /// Macro-averaged F1.
    pub f1: f64,
    /// Macro one-vs-rest ROC AUC.
    pub auc: f64,
}

impl Scores {
    /// Elementwise absolute difference.
    pub fn abs_diff(self, other: Scores) -> Scores {
        Scores {
            accuracy: (self.accuracy - other.accuracy).abs(),
            f1: (self.f1 - other.f1).abs(),
            auc: (self.auc - other.auc).abs(),
        }
    }

    /// Elementwise mean of a set of scores.
    pub fn mean(items: &[Scores]) -> Scores {
        let n = items.len().max(1) as f64;
        Scores {
            accuracy: items.iter().map(|s| s.accuracy).sum::<f64>() / n,
            f1: items.iter().map(|s| s.f1).sum::<f64>() / n,
            auc: items.iter().map(|s| s.auc).sum::<f64>() / n,
        }
    }
}

/// The five evaluation classifiers used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Evaluator {
    /// CART decision tree.
    DecisionTree,
    /// Linear SVM (one-vs-rest hinge).
    LinearSvm,
    /// Random forest.
    RandomForest,
    /// Multinomial logistic regression.
    LogisticRegression,
    /// One-hidden-layer MLP.
    Mlp,
}

impl Evaluator {
    /// All five evaluators.
    pub fn all() -> [Evaluator; 5] {
        [
            Evaluator::DecisionTree,
            Evaluator::LinearSvm,
            Evaluator::RandomForest,
            Evaluator::LogisticRegression,
            Evaluator::Mlp,
        ]
    }

    fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            Evaluator::DecisionTree => {
                Box::new(DecisionTree::new(TreeConfig { seed, ..Default::default() }))
            }
            Evaluator::LinearSvm => {
                Box::new(LinearSvm::new(LinearConfig { seed, epochs: 15, ..Default::default() }))
            }
            Evaluator::RandomForest => {
                Box::new(RandomForest::new(ForestConfig { seed, ..Default::default() }))
            }
            Evaluator::LogisticRegression => {
                Box::new(LogisticRegression::new(LinearConfig { seed, ..Default::default() }))
            }
            Evaluator::Mlp => {
                Box::new(MlpClassifier::new(MlpConfig { seed, epochs: 20, ..Default::default() }))
            }
        }
    }
}

/// Trains one evaluator on `train` and scores it on `test`.
///
/// # Panics
///
/// Panics if the tables' schemas differ or lack a target column.
pub fn evaluate_one(evaluator: Evaluator, train: &Table, test: &Table, seed: u64) -> Scores {
    let f = Featurizer::fit(train);
    let n_classes = f.n_classes();
    let (xtr, ytr) = f.transform(train);
    let (xte, yte) = f.transform(test);
    let mut model = evaluator.build(seed);
    model.fit(&xtr, &ytr, n_classes);
    let proba = model.predict_proba(&xte);
    let pred: Vec<u32> = proba
        .iter()
        .map(|p| {
            let mut best = 0;
            for (i, &v) in p.iter().enumerate() {
                if v > p[best] {
                    best = i;
                }
            }
            best as u32
        })
        .collect();
    Scores {
        accuracy: accuracy(&pred, &yte),
        f1: macro_f1(&pred, &yte, n_classes),
        auc: macro_auc(&proba, &yte, n_classes),
    }
}

/// Trains all five evaluators on `train`, scores on `test`, averages.
pub fn evaluate_all(train: &Table, test: &Table, seed: u64) -> Scores {
    let scores: Vec<Scores> =
        Evaluator::all().iter().map(|&e| evaluate_one(e, train, test, seed)).collect();
    Scores::mean(&scores)
}

/// The paper's ML-utility *difference*: `|score(real-trained) −
/// score(synthetic-trained)|` on the same real test set, averaged over the
/// five classifiers. Lower is better.
pub fn utility_difference(
    real_train: &Table,
    synth_train: &Table,
    test: &Table,
    seed: u64,
) -> Scores {
    let real = evaluate_all(real_train, test, seed);
    let synth = evaluate_all(synth_train, test, seed);
    real.abs_diff(synth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::Dataset;

    #[test]
    fn real_data_trains_informative_models() {
        let t = Dataset::Loan.generate(600, 0);
        let (train, test) = t.train_test_split(0.25, 1);
        let tree = evaluate_one(Evaluator::DecisionTree, &train, &test, 0);
        assert!(tree.accuracy > 0.8, "tree accuracy {}", tree.accuracy);
        let lr = evaluate_one(Evaluator::LogisticRegression, &train, &test, 0);
        // The Loan generator's label is only partly linear in the features;
        // the deterministic run lands at auc ≈ 0.68. Anything clearly above
        // chance (0.5) shows the model is informative.
        assert!(lr.auc > 0.6, "logistic-regression auc {}", lr.auc);
    }

    #[test]
    fn same_distribution_has_small_utility_difference() {
        let a = Dataset::Loan.generate(500, 0);
        let b = Dataset::Loan.generate(500, 9);
        let (train, test) = a.train_test_split(0.3, 1);
        let d = utility_difference(&train, &b, &test, 0);
        assert!(d.accuracy < 0.12, "Δaccuracy {}", d.accuracy);
    }

    #[test]
    fn scores_mean_and_diff() {
        let a = Scores { accuracy: 0.8, f1: 0.6, auc: 0.9 };
        let b = Scores { accuracy: 0.6, f1: 0.8, auc: 0.9 };
        let d = a.abs_diff(b);
        assert!((d.accuracy - 0.2).abs() < 1e-12);
        assert!((d.f1 - 0.2).abs() < 1e-12);
        assert_eq!(d.auc, 0.0);
        let m = Scores::mean(&[a, b]);
        assert!((m.accuracy - 0.7).abs() < 1e-12);
    }
}
