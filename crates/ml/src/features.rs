//! Table → feature-matrix conversion for the evaluation classifiers.
//!
//! Continuous/mixed columns are z-scored with statistics fitted on the
//! *training* table (so a model trained on synthetic data is applied to real
//! test data with the synthetic-data statistics, exactly like a downstream
//! user would); categorical feature columns are one-hot expanded. The target
//! column is label-encoded and excluded from the features.

use crate::matrix::DMatrix;
use gtv_data::{ColumnData, ColumnKind, Schema, Table};

/// Where each original column lands in the feature matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSpan {
    /// Original column index.
    pub column: usize,
    /// First feature index.
    pub start: usize,
    /// Number of features (1 for continuous, `k` for categorical).
    pub width: usize,
}

/// Fitted featurizer.
#[derive(Debug, Clone)]
pub struct Featurizer {
    schema: Schema,
    target: usize,
    spans: Vec<FeatureSpan>,
    means: Vec<f64>,
    stds: Vec<f64>,
    width: usize,
}

impl Featurizer {
    /// Fits normalization statistics on `table`.
    ///
    /// # Panics
    ///
    /// Panics if the table has no target column or no rows.
    pub fn fit(table: &Table) -> Self {
        let schema = table.schema().clone();
        let target = schema.target().expect("ML utility requires a target column");
        assert!(table.n_rows() > 0, "cannot fit a featurizer on an empty table");
        let mut spans = Vec::new();
        let mut means = Vec::new();
        let mut stds = Vec::new();
        let mut cursor = 0usize;
        for (ci, meta) in schema.columns().iter().enumerate() {
            if ci == target {
                continue;
            }
            match &meta.kind {
                ColumnKind::Categorical { categories } => {
                    spans.push(FeatureSpan { column: ci, start: cursor, width: categories.len() });
                    for _ in 0..categories.len() {
                        means.push(0.0);
                        stds.push(1.0);
                    }
                    cursor += categories.len();
                }
                ColumnKind::Continuous | ColumnKind::Mixed { .. } => {
                    let vals = table.column(ci).as_float();
                    let n = vals.len() as f64;
                    let mean = vals.iter().sum::<f64>() / n;
                    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                    spans.push(FeatureSpan { column: ci, start: cursor, width: 1 });
                    means.push(mean);
                    stds.push(var.sqrt().max(1e-9));
                    cursor += 1;
                }
            }
        }
        Self { schema, target, spans, means, stds, width: cursor }
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of target classes.
    pub fn n_classes(&self) -> usize {
        self.schema.column(self.target).kind.n_categories().expect("target is categorical")
    }

    /// Per-column feature spans.
    pub fn spans(&self) -> &[FeatureSpan] {
        &self.spans
    }

    /// Transforms a table (same schema) into `(features, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if the schema differs from the fitted one.
    pub fn transform(&self, table: &Table) -> (DMatrix, Vec<u32>) {
        assert_eq!(table.schema(), &self.schema, "schema differs from fitted schema");
        let n = table.n_rows();
        let mut x = DMatrix::zeros(n, self.width);
        for span in &self.spans {
            match table.column(span.column) {
                ColumnData::Cat(vals) => {
                    for (r, &v) in vals.iter().enumerate() {
                        x.set(r, span.start + v as usize, 1.0);
                    }
                }
                ColumnData::Float(vals) => {
                    let mean = self.means[span.start];
                    let std = self.stds[span.start];
                    for (r, &v) in vals.iter().enumerate() {
                        x.set(r, span.start, (v - mean) / std);
                    }
                }
            }
        }
        let y = table.column(self.target).as_cat().to_vec();
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::Dataset;

    #[test]
    fn transform_shapes_and_normalization() {
        let t = Dataset::Loan.generate(300, 0);
        let f = Featurizer::fit(&t);
        let (x, y) = f.transform(&t);
        assert_eq!(x.rows(), 300);
        assert_eq!(x.cols(), f.width());
        assert_eq!(y.len(), 300);
        assert_eq!(f.n_classes(), 2);
        // First continuous feature should be ~z-scored.
        let col0: Vec<f64> = (0..300).map(|r| x.at(r, 0)).collect();
        let mean = col0.iter().sum::<f64>() / 300.0;
        assert!(mean.abs() < 1e-9);
    }

    #[test]
    fn train_stats_applied_to_test() {
        let t = Dataset::Loan.generate(400, 0);
        let (train, test) = t.train_test_split(0.25, 1);
        let f = Featurizer::fit(&train);
        let (xt, _) = f.transform(&test);
        // Test features use train statistics: mean will not be exactly 0.
        let col0: Vec<f64> = (0..xt.rows()).map(|r| xt.at(r, 0)).collect();
        let mean = col0.iter().sum::<f64>() / col0.len() as f64;
        assert!(mean.abs() < 0.5); // same distribution, so close but not exact
    }

    #[test]
    fn categorical_features_one_hot() {
        let t = Dataset::Loan.generate(100, 0);
        let f = Featurizer::fit(&t);
        let (x, _) = f.transform(&t);
        // Find the family (4-way categorical) span and check one-hot rows.
        let fam = t.schema().index_of("family").unwrap();
        let span = f.spans().iter().find(|s| s.column == fam).unwrap();
        assert_eq!(span.width, 4);
        for r in 0..20 {
            let sum: f64 = (0..4).map(|k| x.at(r, span.start + k)).sum();
            assert_eq!(sum, 1.0);
        }
    }
}
