//! Random-forest classifier: bootstrap-sampled CART trees with √d feature
//! subsetting, probabilities averaged over trees.

use crate::matrix::DMatrix;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self { n_trees: 24, max_depth: 12, seed: 0 }
    }
}

/// Random-forest classifier.
#[derive(Debug, Clone, Default)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self { config, trees: Vec::new(), n_classes: 0 }
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        self.n_classes = n_classes;
        self.trees.clear();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = x.rows();
        let max_features = (x.cols() as f64).sqrt().ceil() as usize;
        for t in 0..self.config.n_trees {
            let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
            let xb = x.select_rows(&idx);
            let yb: Vec<u32> = idx.iter().map(|&i| y[i]).collect();
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.config.max_depth,
                min_samples_split: 4,
                max_features: Some(max_features),
                seed: self.config.seed.wrapping_add(t as u64 + 1),
            });
            tree.fit(&xb, &yb, n_classes);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>> {
        assert!(!self.trees.is_empty(), "forest is not fitted");
        let mut acc = vec![vec![0.0f64; self.n_classes]; x.rows()];
        for tree in &self.trees {
            for (row, p) in acc.iter_mut().zip(tree.predict_proba(x)) {
                for (a, b) in row.iter_mut().zip(p) {
                    *a += b;
                }
            }
        }
        let k = self.trees.len() as f64;
        for row in &mut acc {
            for v in row.iter_mut() {
                *v /= k;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn blobs() -> (DMatrix, Vec<u32>) {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            let jitter = ((i * 31) % 11) as f64 * 0.05;
            data.push(c as f64 * 3.0 + jitter);
            data.push(c as f64 * -2.0 + jitter);
            y.push(c as u32);
        }
        (DMatrix::from_vec(300, 2, data), y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut rf = RandomForest::new(ForestConfig { n_trees: 10, ..Default::default() });
        rf.fit(&x, &y, 3);
        assert!(accuracy(&rf.predict(&x), &y) > 0.98);
        assert_eq!(rf.n_trees(), 10);
    }

    #[test]
    fn probabilities_are_averaged_distributions() {
        let (x, y) = blobs();
        let mut rf = RandomForest::new(ForestConfig { n_trees: 5, ..Default::default() });
        rf.fit(&x, &y, 3);
        for p in rf.predict_proba(&x).iter().take(10) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
