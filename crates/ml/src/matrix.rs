//! Dense `f64` feature matrix for the evaluation classifiers.

/// Row-major `f64` matrix (rows = samples, cols = features).
#[derive(Debug, Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, vec![0.0; rows * cols])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow the full buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Gathers rows into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> DMatrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        DMatrix::from_vec(idx.len(), self.cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let m = DMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.at(0, 2), 3.0);
        let s = m.select_rows(&[1, 1]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[4.0, 5.0, 6.0]);
    }
}
