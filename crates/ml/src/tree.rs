//! CART decision-tree classifier (gini impurity), with the random feature
//! subsetting hook the random forest uses.

use crate::matrix::DMatrix;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Decision-tree hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all, forests use √d).
    pub max_features: Option<usize>,
    /// RNG seed for feature subsetting.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_split: 4, max_features: None, seed: 0 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { probs: Vec<f64> },
    Split { feature: usize, threshold: f64, left: usize, right: usize },
}

/// CART classifier.
#[derive(Debug, Clone, Default)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        Self { config, nodes: Vec::new(), n_classes: 0 }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn leaf(&mut self, y: &[u32], idx: &[usize]) -> usize {
        let mut counts = vec![0.0f64; self.n_classes];
        for &i in idx {
            counts[y[i] as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum::<f64>().max(1.0);
        for c in &mut counts {
            *c /= total;
        }
        self.nodes.push(Node::Leaf { probs: counts });
        self.nodes.len() - 1
    }

    fn gini_from_counts(counts: &[f64], total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
    }

    fn best_split(
        &self,
        x: &DMatrix,
        y: &[u32],
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64, f64)> {
        let d = x.cols();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(k) = self.config.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1).min(d));
        }

        let mut total_counts = vec![0.0f64; self.n_classes];
        for &i in idx {
            total_counts[y[i] as usize] += 1.0;
        }
        let n = idx.len() as f64;
        let parent_gini = Self::gini_from_counts(&total_counts, n);
        if parent_gini <= 1e-12 {
            return None;
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity decrease)
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for &f in &features {
            order.clear();
            order.extend_from_slice(idx);
            order.sort_by(|&a, &b| x.at(a, f).total_cmp(&x.at(b, f)));
            let mut left_counts = vec![0.0f64; self.n_classes];
            let mut left_n = 0.0f64;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_counts[y[i] as usize] += 1.0;
                left_n += 1.0;
                let xv = x.at(i, f);
                let xn = x.at(order[w + 1], f);
                if xn <= xv {
                    continue; // no threshold between equal values
                }
                let right_n = n - left_n;
                let right_counts: Vec<f64> =
                    total_counts.iter().zip(&left_counts).map(|(t, l)| t - l).collect();
                let gini = (left_n * Self::gini_from_counts(&left_counts, left_n)
                    + right_n * Self::gini_from_counts(&right_counts, right_n))
                    / n;
                let decrease = parent_gini - gini;
                if best.is_none_or(|(_, _, d0)| decrease > d0) {
                    best = Some((f, (xv + xn) / 2.0, decrease));
                }
            }
        }
        best.filter(|(_, _, d)| *d > 1e-12)
    }

    fn build(
        &mut self,
        x: &DMatrix,
        y: &[u32],
        idx: &[usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        if depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return self.leaf(y, idx);
        }
        let Some((feature, threshold, _)) = self.best_split(x, y, idx, rng) else {
            return self.leaf(y, idx);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x.at(i, feature) <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return self.leaf(y, idx);
        }
        let left = self.build(x, y, &left_idx, depth + 1, rng);
        let right = self.build(x, y, &right_idx, depth + 1, rng);
        self.nodes.push(Node::Split { feature, threshold, left, right });
        self.nodes.len() - 1
    }

    fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut node = self.nodes.len() - 1; // root is pushed last
        loop {
            match &self.nodes[node] {
                Node::Leaf { probs } => return probs,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        self.n_classes = n_classes;
        self.nodes.clear();
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.build(x, y, &idx, 0, &mut rng);
    }

    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>> {
        assert!(!self.nodes.is_empty(), "tree is not fitted");
        (0..x.rows()).map(|r| self.predict_row(x.row(r)).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn xor_data() -> (DMatrix, Vec<u32>) {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = (i / 2 % 2) as f64 + ((i * 13) % 7) as f64 * 0.01;
            let b = (i % 2) as f64 + ((i * 17) % 5) as f64 * 0.01;
            data.push(a);
            data.push(b);
            y.push(((a.round() as u32) ^ (b.round() as u32)) & 1);
        }
        (DMatrix::from_vec(200, 2, data), y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, 2);
        let pred = tree.predict(&x);
        assert!(accuracy(&pred, &y) > 0.99);
    }

    #[test]
    fn depth_limit_keeps_tree_small() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(TreeConfig { max_depth: 1, ..Default::default() });
        stump.fit(&x, &y, 2);
        assert!(stump.n_nodes() <= 3);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, 2);
        for p in tree.predict_proba(&x) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_labels_give_pure_leaf() {
        let x = DMatrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let y = vec![1u32; 4];
        let mut tree = DecisionTree::new(TreeConfig::default());
        tree.fit(&x, &y, 3);
        let p = tree.predict_proba(&x);
        assert_eq!(p[0][1], 1.0);
    }
}
