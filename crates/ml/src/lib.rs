//! # gtv-ml
//!
//! The paper's ML-utility evaluation stack (§4.2.1) plus the Shapley feature
//! ranking used by the motivation case study and the data-partition
//! experiments:
//!
//! * five classifiers — [`DecisionTree`], [`RandomForest`], [`LinearSvm`],
//!   [`LogisticRegression`], [`MlpClassifier`] — behind one [`Classifier`]
//!   trait;
//! * [`Featurizer`] mapping tables to feature matrices (train-set
//!   statistics applied to the test set);
//! * [`accuracy`] / [`macro_f1`] / [`macro_auc`] metrics;
//! * [`utility_difference`] — the train-on-synthetic vs train-on-real
//!   pipeline;
//! * [`shapley_importance`] — Monte-Carlo Shapley column importance.
//!
//! # Examples
//!
//! ```no_run
//! use gtv_data::Dataset;
//! use gtv_ml::{evaluate_all, utility_difference};
//!
//! let table = Dataset::Loan.generate(800, 0);
//! let (train, test) = table.train_test_split(0.2, 1);
//! let real_scores = evaluate_all(&train, &test, 0);
//! assert!(real_scores.accuracy > 0.5);
//! ```

mod features;
mod forest;
mod linear;
mod matrix;
mod metrics;
mod mlp;
mod shapley;
mod tree;
mod utility;

pub use features::{FeatureSpan, Featurizer};
pub use forest::{ForestConfig, RandomForest};
pub use linear::{LinearConfig, LinearSvm, LogisticRegression};
pub use matrix::DMatrix;
pub use metrics::{accuracy, macro_auc, macro_f1};
pub use mlp::{MlpClassifier, MlpConfig};
pub use shapley::{importance_ranking, shapley_importance, ShapleyConfig};
pub use tree::{DecisionTree, TreeConfig};
pub use utility::{evaluate_all, evaluate_one, utility_difference, Evaluator, Scores};

/// A classifier that learns from a feature matrix and emits per-class
/// probabilities.
pub trait Classifier {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.rows() != y.len()` or the data is empty.
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize);

    /// Per-class probabilities, one row per sample.
    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>>;

    /// Hard predictions (argmax of [`Classifier::predict_proba`]).
    fn predict(&self, x: &DMatrix) -> Vec<u32> {
        self.predict_proba(x)
            .iter()
            .map(|p| {
                let mut best = 0;
                for (i, &v) in p.iter().enumerate() {
                    if v > p[best] {
                        best = i;
                    }
                }
                best as u32
            })
            .collect()
    }
}
