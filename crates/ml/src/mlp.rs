//! Multi-layer-perceptron classifier (one hidden layer of 100 ReLU units,
//! matching the paper's evaluation MLP), trained with Adam on cross-entropy.

use crate::matrix::DMatrix;
use crate::Classifier;
use gtv_nn::{Adam, AdamConfig, Ctx, Init, Linear, Module};
use gtv_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden width (paper: 100).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self { hidden: 100, epochs: 30, batch: 128, lr: 1e-3, seed: 0 }
    }
}

/// One-hidden-layer MLP classifier.
#[derive(Debug, Default)]
pub struct MlpClassifier {
    config: MlpConfig,
    layers: Option<(Linear, Linear)>,
    n_classes: usize,
}

impl MlpClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: MlpConfig) -> Self {
        Self { config, layers: None, n_classes: 0 }
    }

    fn to_tensor(x: &DMatrix, idx: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(idx.len() * x.cols());
        for &i in idx {
            data.extend(x.row(i).iter().map(|&v| v as f32));
        }
        Tensor::from_vec(idx.len(), x.cols(), data)
    }

    fn forward_logits(&self, g: &Graph, ctx: &Ctx<'_>, x: gtv_tensor::Var) -> gtv_tensor::Var {
        let (l1, l2) = self.layers.as_ref().expect("model is not fitted");
        let h = l1.forward(ctx, x);
        let h = g.relu(h);
        l2.forward(ctx, h)
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        assert!(x.rows() > 0, "cannot fit on empty data");
        self.n_classes = n_classes;
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let l1 =
            Linear::new("mlp.l1", x.cols(), self.config.hidden, Init::KaimingUniform, &mut rng);
        let l2 =
            Linear::new("mlp.l2", self.config.hidden, n_classes, Init::KaimingUniform, &mut rng);
        let mut params = l1.params();
        params.extend(l2.params());
        let mut opt = Adam::new(
            params,
            AdamConfig {
                lr: self.config.lr,
                beta1: 0.9,
                beta2: 0.999,
                weight_decay: 0.0,
                ..Default::default()
            },
        );
        self.layers = Some((l1, l2));

        let mut order: Vec<usize> = (0..x.rows()).collect();
        for epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for (bi, chunk) in order.chunks(self.config.batch).enumerate() {
                let xb = Self::to_tensor(x, chunk);
                let mut onehot = Tensor::zeros(chunk.len(), n_classes);
                for (r, &i) in chunk.iter().enumerate() {
                    onehot.set(r, y[i] as usize, 1.0);
                }
                let g = Graph::new();
                let ctx = Ctx::train(&g, (epoch * 10_000 + bi) as u64);
                let xv = g.leaf(xb);
                let logits = self.forward_logits(&g, &ctx, xv);
                let p = g.softmax_rows(logits);
                let logp = g.ln(g.add_scalar(p, 1e-9));
                let t = g.leaf(onehot);
                let ce = g.neg(g.mean_all(g.sum_cols(g.mul(t, logp))));
                opt.zero_grad();
                ctx.binder().backprop(&g, ce);
                opt.step();
            }
        }
    }

    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>> {
        assert!(self.layers.is_some(), "model is not fitted");
        let idx: Vec<usize> = (0..x.rows()).collect();
        let mut out = Vec::with_capacity(x.rows());
        // Evaluate in chunks to bound graph size.
        for chunk in idx.chunks(512) {
            let xb = Self::to_tensor(x, chunk);
            let g = Graph::new();
            let ctx = Ctx::eval(&g, 0);
            let xv = g.leaf(xb);
            let logits = self.forward_logits(&g, &ctx, xv);
            let p = g.value(g.softmax_rows(logits));
            for r in 0..chunk.len() {
                out.push(p.row_slice(r).iter().map(|&v| v as f64).collect());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    #[test]
    fn learns_nonlinear_boundary() {
        // Ring vs center: not linearly separable.
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..400 {
            let angle = i as f64 * 0.217;
            let r = if i % 2 == 0 { 0.3 } else { 1.5 };
            data.push(r * angle.cos());
            data.push(r * angle.sin());
            y.push((i % 2) as u32);
        }
        let x = DMatrix::from_vec(400, 2, data);
        let mut m = MlpClassifier::new(MlpConfig { epochs: 60, hidden: 32, ..Default::default() });
        m.fit(&x, &y, 2);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let x = DMatrix::from_vec(10, 2, (0..20).map(|i| i as f64 * 0.1).collect());
        let y: Vec<u32> = (0..10).map(|i| (i % 2) as u32).collect();
        let mut m = MlpClassifier::new(MlpConfig { epochs: 2, hidden: 8, ..Default::default() });
        m.fit(&x, &y, 2);
        for p in m.predict_proba(&x) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-4);
        }
    }
}
