//! Monte-Carlo Shapley feature importance over an MLP, used to rank features
//! for the motivation case study (Fig. 3) and the 1090/5050/9010 data
//! partitions (§4.3.2).
//!
//! The estimator follows the interventional Kernel-SHAP convention: masked
//! features are replaced by their background (training-mean) values; for a
//! sample of rows and random feature permutations, each feature's marginal
//! contribution to the model's predicted probability of the row's true class
//! is accumulated. Masking operates at *original column* granularity — a
//! categorical column's one-hot block is masked as a unit.

use crate::features::Featurizer;
use crate::matrix::DMatrix;
use crate::mlp::{MlpClassifier, MlpConfig};
use crate::Classifier;
use gtv_data::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the Shapley estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapleyConfig {
    /// Number of rows sampled for explanation.
    pub n_rows: usize,
    /// Number of feature permutations per row.
    pub n_permutations: usize,
    /// Epochs for the explained MLP.
    pub mlp_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShapleyConfig {
    fn default() -> Self {
        Self { n_rows: 24, n_permutations: 8, mlp_epochs: 15, seed: 0 }
    }
}

/// Mean |Shapley value| per feature column of `table` (target excluded),
/// in original column order (the target position is skipped).
///
/// # Panics
///
/// Panics if the table lacks a target column or has no rows.
pub fn shapley_importance(table: &Table, config: ShapleyConfig) -> Vec<f64> {
    let f = Featurizer::fit(table);
    let (x, y) = f.transform(table);
    let n_classes = f.n_classes();
    let mut model = MlpClassifier::new(MlpConfig {
        epochs: config.mlp_epochs,
        seed: config.seed,
        ..Default::default()
    });
    model.fit(&x, &y, n_classes);

    // Background: feature means.
    let d = x.cols();
    let mut background = vec![0.0f64; d];
    for r in 0..x.rows() {
        for (b, v) in background.iter_mut().zip(x.row(r)) {
            *b += v;
        }
    }
    for b in &mut background {
        *b /= x.rows() as f64;
    }

    let spans = f.spans().to_vec();
    let n_feat_cols = spans.len();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut rows: Vec<usize> = (0..x.rows()).collect();
    rows.shuffle(&mut rng);
    rows.truncate(config.n_rows.min(x.rows()));

    let score = |model: &MlpClassifier, row: &[f64], class: usize| -> f64 {
        let m = DMatrix::from_vec(1, row.len(), row.to_vec());
        model.predict_proba(&m)[0][class]
    };

    let mut phi = vec![0.0f64; n_feat_cols];
    let mut order: Vec<usize> = (0..n_feat_cols).collect();
    for &ri in &rows {
        let target_class = y[ri] as usize;
        let full_row = x.row(ri).to_vec();
        for _ in 0..config.n_permutations {
            order.shuffle(&mut rng);
            let mut current = background.clone();
            let mut prev_score = score(&model, &current, target_class);
            for &col in &order {
                let span = &spans[col];
                current[span.start..span.start + span.width]
                    .copy_from_slice(&full_row[span.start..span.start + span.width]);
                let new_score = score(&model, &current, target_class);
                phi[col] += (new_score - prev_score).abs();
                prev_score = new_score;
            }
        }
    }
    let norm = (rows.len() * config.n_permutations).max(1) as f64;
    for p in &mut phi {
        *p /= norm;
    }
    phi
}

/// Column indices (into the original table, target excluded) sorted by
/// descending Shapley importance.
pub fn importance_ranking(table: &Table, config: ShapleyConfig) -> Vec<usize> {
    let f = Featurizer::fit(table);
    let phi = shapley_importance(table, config);
    let mut cols: Vec<(usize, f64)> = f.spans().iter().map(|s| s.column).zip(phi).collect();
    cols.sort_by(|a, b| b.1.total_cmp(&a.1));
    cols.into_iter().map(|(c, _)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema};

    /// A table where column 0 fully determines the label and column 1 is
    /// pure noise — Shapley must rank 0 above 1.
    fn planted_table() -> Table {
        let n = 400;
        let schema = Schema::new(
            vec![
                ColumnMeta::new("signal", ColumnKind::Continuous),
                ColumnMeta::new("noise", ColumnKind::Continuous),
                ColumnMeta::new("y", ColumnKind::categorical(["a", "b"])),
            ],
            Some(2),
        );
        let mut signal = Vec::with_capacity(n);
        let mut noise = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = (i % 2) as u32;
            signal.push(label as f64 * 4.0 - 2.0 + ((i * 13) % 11) as f64 * 0.02);
            noise.push(((i * 29) % 17) as f64 * 0.1 - 0.8);
            y.push(label);
        }
        Table::new(
            schema,
            vec![ColumnData::Float(signal), ColumnData::Float(noise), ColumnData::Cat(y)],
        )
    }

    #[test]
    fn identifies_the_informative_feature() {
        let t = planted_table();
        let cfg = ShapleyConfig { n_rows: 16, n_permutations: 4, mlp_epochs: 25, seed: 0 };
        let phi = shapley_importance(&t, cfg);
        assert_eq!(phi.len(), 2);
        assert!(phi[0] > phi[1] * 2.0, "signal {} vs noise {}", phi[0], phi[1]);
        let ranking = importance_ranking(&t, cfg);
        assert_eq!(ranking[0], 0);
    }
}
