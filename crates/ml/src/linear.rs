//! Linear models: multinomial logistic regression and one-vs-rest linear
//! SVM, both trained with mini-batch SGD.

use crate::matrix::DMatrix;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shared SGD hyper-parameters for the linear models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearConfig {
    /// Learning rate.
    pub lr: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        Self { lr: 0.1, epochs: 40, l2: 1e-4, batch: 64, seed: 0 }
    }
}

/// Multinomial (softmax) logistic regression.
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    config: LinearConfig,
    // (n_classes × (d+1)) weights, last column is the bias.
    w: Vec<Vec<f64>>,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    pub fn new(config: LinearConfig) -> Self {
        Self { config, w: Vec::new() }
    }

    fn logits(&self, row: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .map(|wc| {
                let mut z = wc[row.len()];
                for (wi, xi) in wc.iter().zip(row) {
                    z += wi * xi;
                }
                z
            })
            .collect()
    }
}

fn softmax(z: &mut [f64]) {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for v in z.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    for v in z.iter_mut() {
        *v /= total;
    }
}

impl Classifier for LogisticRegression {
    #[allow(clippy::needless_range_loop)] // indexed weight updates mirror the math
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        let d = x.cols();
        self.w = vec![vec![0.0; d + 1]; n_classes];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch) {
                let mut grad = vec![vec![0.0; d + 1]; n_classes];
                for &i in chunk {
                    let row = x.row(i);
                    let mut p = self.logits(row);
                    softmax(&mut p);
                    for c in 0..n_classes {
                        let err = p[c] - if y[i] as usize == c { 1.0 } else { 0.0 };
                        for (g, xi) in grad[c].iter_mut().zip(row) {
                            *g += err * xi;
                        }
                        grad[c][d] += err;
                    }
                }
                let scale = self.config.lr / chunk.len() as f64;
                for c in 0..n_classes {
                    for j in 0..=d {
                        let reg = if j < d { self.config.l2 * self.w[c][j] } else { 0.0 };
                        self.w[c][j] -= scale * grad[c][j] + self.config.lr * reg;
                    }
                }
            }
        }
    }

    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>> {
        assert!(!self.w.is_empty(), "model is not fitted");
        (0..x.rows())
            .map(|r| {
                let mut p = self.logits(x.row(r));
                softmax(&mut p);
                p
            })
            .collect()
    }
}

/// One-vs-rest linear SVM (hinge loss, L2), with probabilities derived from
/// the margins via a logistic link (Platt-style without calibration fitting).
#[derive(Debug, Clone, Default)]
pub struct LinearSvm {
    config: LinearConfig,
    w: Vec<Vec<f64>>,
}

impl LinearSvm {
    /// Creates an unfitted model.
    pub fn new(config: LinearConfig) -> Self {
        Self { config, w: Vec::new() }
    }

    /// Raw decision margins per class.
    pub fn decision_function(&self, row: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .map(|wc| {
                let mut z = wc[row.len()];
                for (wi, xi) in wc.iter().zip(row) {
                    z += wi * xi;
                }
                z
            })
            .collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &DMatrix, y: &[u32], n_classes: usize) {
        assert_eq!(x.rows(), y.len(), "feature/label count mismatch");
        let d = x.cols();
        self.w = vec![vec![0.0; d + 1]; n_classes];
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = x.row(i);
                for c in 0..n_classes {
                    let target = if y[i] as usize == c { 1.0 } else { -1.0 };
                    let margin = {
                        let mut z = self.w[c][d];
                        for (wi, xi) in self.w[c].iter().zip(row) {
                            z += wi * xi;
                        }
                        z
                    };
                    // Sub-gradient of hinge + L2.
                    if target * margin < 1.0 {
                        for (wj, xj) in self.w[c].iter_mut().zip(row) {
                            *wj += self.config.lr * (target * xj);
                        }
                        self.w[c][d] += self.config.lr * target;
                    }
                    for wj in self.w[c][..d].iter_mut() {
                        *wj -= self.config.lr * self.config.l2 * *wj;
                    }
                }
            }
        }
    }

    fn predict_proba(&self, x: &DMatrix) -> Vec<Vec<f64>> {
        assert!(!self.w.is_empty(), "model is not fitted");
        (0..x.rows())
            .map(|r| {
                let margins = self.decision_function(x.row(r));
                let mut p: Vec<f64> = margins.iter().map(|m| 1.0 / (1.0 + (-m).exp())).collect();
                let total: f64 = p.iter().sum();
                if total > 0.0 {
                    for v in &mut p {
                        *v /= total;
                    }
                }
                p
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, macro_auc};

    fn linearly_separable() -> (DMatrix, Vec<u32>) {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let c = i % 2;
            let jitter = ((i * 7) % 13) as f64 * 0.02;
            data.push(if c == 0 { -1.0 - jitter } else { 1.0 + jitter });
            data.push(jitter - 0.1);
            y.push(c as u32);
        }
        (DMatrix::from_vec(200, 2, data), y)
    }

    #[test]
    fn logreg_separates() {
        let (x, y) = linearly_separable();
        let mut m = LogisticRegression::new(LinearConfig::default());
        m.fit(&x, &y, 2);
        assert!(accuracy(&m.predict(&x), &y) > 0.99);
        let proba = m.predict_proba(&x);
        assert!(macro_auc(&proba, &y, 2) > 0.99);
    }

    #[test]
    fn svm_separates() {
        let (x, y) = linearly_separable();
        let mut m = LinearSvm::new(LinearConfig { epochs: 20, ..Default::default() });
        m.fit(&x, &y, 2);
        assert!(accuracy(&m.predict(&x), &y) > 0.99);
    }

    #[test]
    fn logreg_multiclass() {
        let mut data = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let c = i % 3;
            data.push(c as f64 * 2.0 + ((i * 11) % 7) as f64 * 0.05);
            y.push(c as u32);
        }
        let x = DMatrix::from_vec(300, 1, data);
        let mut m =
            LogisticRegression::new(LinearConfig { epochs: 120, lr: 0.3, ..Default::default() });
        m.fit(&x, &y, 3);
        assert!(accuracy(&m.predict(&x), &y) > 0.95);
    }

    #[test]
    fn probabilities_normalized() {
        let (x, y) = linearly_separable();
        let mut m = LinearSvm::new(LinearConfig::default());
        m.fit(&x, &y, 2);
        for p in m.predict_proba(&x).iter().take(5) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
