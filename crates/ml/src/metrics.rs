//! Classification metrics: accuracy, macro-F1, macro one-vs-rest ROC AUC.

/// Fraction of correct predictions.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(pred: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty predictions");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Macro-averaged F1 over the classes present in `truth`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn macro_f1(pred: &[u32], truth: &[u32], n_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty predictions");
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes as u32 {
        let tp = pred.iter().zip(truth).filter(|(&p, &t)| p == c && t == c).count();
        let fp = pred.iter().zip(truth).filter(|(&p, &t)| p == c && t != c).count();
        let fn_ = pred.iter().zip(truth).filter(|(&p, &t)| p != c && t == c).count();
        if tp + fn_ == 0 {
            continue; // class absent from truth
        }
        present += 1;
        if tp == 0 {
            continue;
        }
        let (tp, fp, fn_) = (tp as f64, fp as f64, fn_ as f64);
        let precision = tp / (tp + fp);
        let recall = tp / (tp + fn_);
        f1_sum += 2.0 * precision * recall / (precision + recall);
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// ROC AUC for one class given per-sample scores (probability of that class)
/// and binary relevance, computed via the rank statistic (ties averaged).
fn binary_auc(scores: &[f64], positive: &[bool]) -> Option<f64> {
    let n_pos = positive.iter().filter(|&&p| p).count();
    let n_neg = positive.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks over ties.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum: f64 = ranks.iter().zip(positive).filter(|(_, &p)| p).map(|(r, _)| *r).sum();
    let auc = (rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64;
    Some(auc)
}

/// Macro-averaged one-vs-rest ROC AUC from per-class probability scores.
///
/// `proba[r][c]` is the score of class `c` for sample `r`. Classes absent
/// from `truth` are skipped.
///
/// # Panics
///
/// Panics if `proba` and `truth` differ in length or are empty.
pub fn macro_auc(proba: &[Vec<f64>], truth: &[u32], n_classes: usize) -> f64 {
    assert_eq!(proba.len(), truth.len(), "length mismatch");
    assert!(!proba.is_empty(), "empty predictions");
    let mut total = 0.0;
    let mut counted = 0usize;
    for c in 0..n_classes {
        let scores: Vec<f64> = proba.iter().map(|p| p[c]).collect();
        let positive: Vec<bool> = truth.iter().map(|&t| t as usize == c).collect();
        if let Some(a) = binary_auc(&scores, &positive) {
            total += a;
            counted += 1;
        }
    }
    if counted == 0 {
        0.5
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 0, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn f1_perfect_and_worst() {
        assert_eq!(macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1], 2), 1.0);
        assert_eq!(macro_f1(&[1, 0, 1, 0], &[0, 1, 0, 1], 2), 0.0);
    }

    #[test]
    fn f1_skips_absent_classes() {
        // Class 2 never appears in truth; macro-F1 averages over 2 classes.
        let f1 = macro_f1(&[0, 1, 0, 1], &[0, 1, 0, 1], 3);
        assert_eq!(f1, 1.0);
    }

    #[test]
    fn auc_perfect_separation() {
        let proba = vec![vec![0.9, 0.1], vec![0.8, 0.2], vec![0.2, 0.8], vec![0.1, 0.9]];
        let truth = [0, 0, 1, 1];
        assert_eq!(macro_auc(&proba, &truth, 2), 1.0);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let proba: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let s = ((i * 37) % 101) as f64 / 101.0;
                vec![s, 1.0 - s]
            })
            .collect();
        let truth: Vec<u32> = (0..200).map(|i| (i % 2) as u32).collect();
        let auc = macro_auc(&proba, &truth, 2);
        assert!((auc - 0.5).abs() < 0.1, "auc {auc}");
    }

    #[test]
    fn auc_handles_ties() {
        let proba = vec![vec![0.5, 0.5]; 4];
        let truth = [0, 0, 1, 1];
        assert_eq!(macro_auc(&proba, &truth, 2), 0.5);
    }
}
