//! `gtv-cli` — train GTV on CSV files, synthesize joint tables, evaluate
//! synthetic data quality, and run the privacy analysis, from the shell.
//!
//! ```sh
//! gtv-cli demo     --dataset loan --rows 1000 --out loan.csv
//! gtv-cli synth    --input loan.csv --target personal_loan --clients 2 \
//!                  --rounds 300 --out synth.csv
//! gtv-cli evaluate --real loan.csv --synth synth.csv --target personal_loan
//! gtv-cli privacy  --input loan.csv --rounds 100
//! ```

mod args;

use args::Args;
use gtv::{GtvConfig, GtvTrainer, NetPartition};
use gtv_data::{from_csv_string, infer_schema, to_csv_string, Dataset, Table};
use gtv_metrics::similarity;
use gtv_ml::utility_difference;
use gtv_serve::{ModelRegistry, ServeConfig, SynthServer, SynthService};
use gtv_vfl::{Endpoint, PartitionPlan, PartyId, PartyNode, SocketTransport, Transport};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
gtv-cli — tabular data synthesis via vertical federated learning

USAGE:
  gtv-cli demo     --dataset <loan|adult|covtype|intrusion|credit> [--rows N] [--seed S] --out FILE
  gtv-cli synth    --input FILE [--target COL] [--clients N] [--rounds R] [--batch B]
                   [--width W] [--partition d2g0|d2g2] [--seed S] [--threads T] --out FILE
                   [--save-weights FILE] [--load-weights FILE] [--alloc-stats true]
                   [--pipelined true|false] [--sparse-wire true] [--comms-stats true]
  gtv-cli evaluate --real FILE --synth FILE --target COL [--seed S]
  gtv-cli privacy  --input FILE [--rounds R] [--clients N]
  gtv-cli serve-party  --party <server|public|CLIENT_IDX> --listen <host:port|unix:PATH>
  gtv-cli serve-server --input FILE --parties IDX=ENDPOINT[,IDX=ENDPOINT…] --out FILE
                       [--target COL] [--clients N] [--rounds R] [--batch B] [--width W]
                       [--partition d2g0|d2g2] [--seed S] [--sparse-wire true]
  gtv-cli serve-synth  --input FILE --listen <host:port|unix:PATH> [--model NAME]
                       [--load-weights FILE] [--target COL] [--clients N] [--rounds R]
                       [--batch B] [--width W] [--partition d2g0|d2g2] [--seed S]
                       [--queue-cap N] [--max-batch-rows N] [--max-replies N]
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command() {
        "demo" => demo(&args),
        "synth" => synth(&args),
        "evaluate" => evaluate(&args),
        "privacy" => privacy(&args),
        "serve-party" => serve_party(&args),
        "serve-server" => serve_server(&args),
        "serve-synth" => serve_synth(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn load_table(path: &str, target: Option<&str>) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = infer_schema(&text, target).map_err(|e| e.to_string())?;
    from_csv_string(&text, &schema).map_err(|e| e.to_string())
}

fn dataset_by_name(name: &str) -> Result<Dataset, String> {
    Dataset::all()
        .into_iter()
        .find(|d| d.name() == name)
        .ok_or_else(|| format!("unknown dataset '{name}'"))
}

fn demo(args: &Args) -> Result<(), String> {
    let ds = dataset_by_name(args.required("dataset").map_err(|e| e.to_string())?)?;
    let rows = args.parsed_or("rows", 1_000usize).map_err(|e| e.to_string())?;
    let seed = args.parsed_or("seed", 0u64).map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let table = ds.generate(rows, seed);
    std::fs::write(out, to_csv_string(&table)).map_err(|e| e.to_string())?;
    println!("wrote {} rows × {} cols of the {} stand-in to {}", rows, table.n_cols(), ds, out);
    Ok(())
}

fn build_config(args: &Args) -> Result<GtvConfig, String> {
    let partition = match args.optional("partition").unwrap_or("d2g0") {
        "d2g0" => NetPartition::d2g0(),
        "d2g2" => NetPartition::d2g2(),
        other => return Err(format!("unknown partition '{other}' (use d2g0 or d2g2)")),
    };
    Ok(GtvConfig {
        partition,
        rounds: args.parsed_or("rounds", 300usize).map_err(|e| e.to_string())?,
        batch: args.parsed_or("batch", 128usize).map_err(|e| e.to_string())?,
        block_width: args.parsed_or("width", 256usize).map_err(|e| e.to_string())?,
        seed: args.parsed_or("seed", 0u64).map_err(|e| e.to_string())?,
        threads: args.parsed_or("threads", 0usize).map_err(|e| e.to_string())?,
        alloc_stats: args.parsed_or("alloc-stats", false).map_err(|e| e.to_string())?,
        pipelined_rounds: args.parsed_or("pipelined", true).map_err(|e| e.to_string())?,
        sparse_wire: args.parsed_or("sparse-wire", false).map_err(|e| e.to_string())?,
        ..GtvConfig::default()
    })
}

/// Prints the per-step allocation counters recorded during training
/// (`--alloc-stats true`): warm-up step, steady-state allocator misses per
/// step and the overall pool hit rate (DESIGN.md §9).
fn print_alloc_stats(stats: &[gtv::StepAllocStats]) {
    let Some(last) = stats.last() else {
        println!("alloc stats: no steps recorded");
        return;
    };
    let steps = stats.len() as u64;
    let requests = last.pool_hits + last.pool_misses;
    let hit_rate = if requests == 0 { 0.0 } else { last.pool_hits as f64 / requests as f64 };
    // Steady state excludes the cold first step, which must populate the
    // pool before anything can be recycled.
    let warm_misses = if stats.len() > 1 {
        (last.pool_misses - stats[0].pool_misses) as f64 / (steps - 1) as f64
    } else {
        last.pool_misses as f64
    };
    println!(
        "alloc stats: {} steps | {} live graph nodes/step | cold-step misses {} | \
         warm misses/step {:.1} | pool hit rate {:.3} | {:.1} MiB requested",
        steps,
        last.live_nodes,
        stats[0].pool_misses,
        warm_misses,
        hit_rate,
        last.bytes_requested as f64 / (1024.0 * 1024.0)
    );
}

/// Prints the per-round, per-party traffic windows recorded during training
/// (`--comms-stats true`): round totals for the first few measured rounds,
/// then per-party averages over all of them (DESIGN.md §10).
fn print_comms_stats(stats: &gtv_vfl::NetStats, n_clients: usize) {
    use gtv_vfl::PartyId;
    if stats.rounds.is_empty() {
        println!("comms stats: no rounds recorded");
        return;
    }
    let shown = stats.rounds.len().min(8);
    println!("comms stats ({} measured rounds, warm-up excluded):", stats.rounds.len());
    for r in &stats.rounds[..shown] {
        print!("  round {:>4}: {} msgs / {} B |", r.round, r.messages, r.bytes);
        let (sm, sb) = r.sent_by(PartyId::Server);
        print!(" server sent {sm}/{sb} B |");
        for i in 0..n_clients {
            let (cm, cb) = r.sent_by(PartyId::Client(i));
            print!(" client{i} sent {cm}/{cb} B |");
        }
        println!();
    }
    if stats.rounds.len() > shown {
        println!("  … {} more rounds", stats.rounds.len() - shown);
    }
    let rounds = stats.rounds.len() as f64;
    let mut parties = vec![PartyId::Server];
    parties.extend((0..n_clients).map(PartyId::Client));
    println!("  per-round averages:");
    for p in parties {
        let (sm, sb) = stats
            .rounds
            .iter()
            .map(|r| r.sent_by(p))
            .fold((0u64, 0u64), |(m, b), (dm, db)| (m + dm, b + db));
        let (rm, rb) = stats
            .rounds
            .iter()
            .map(|r| r.received_by(p))
            .fold((0u64, 0u64), |(m, b), (dm, db)| (m + dm, b + db));
        println!(
            "    {p}: sent {:.1} msgs / {:.0} B, received {:.1} msgs / {:.0} B",
            sm as f64 / rounds,
            sb as f64 / rounds,
            rm as f64 / rounds,
            rb as f64 / rounds
        );
    }
}

fn synth(args: &Args) -> Result<(), String> {
    let input = args.required("input").map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let table = load_table(input, args.optional("target"))?;
    let n_clients = args.parsed_or("clients", 2usize).map_err(|e| e.to_string())?;
    let comms_stats = args.parsed_or("comms-stats", false).map_err(|e| e.to_string())?;
    let config = build_config(args)?;
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .map_err(|e| e.to_string())?;
    let shards = table.vertical_split(&groups);
    println!(
        "training GTV ({} clients, partition {}, {} rounds) on {} rows × {} cols…",
        n_clients,
        config.partition,
        config.rounds,
        table.n_rows(),
        table.n_cols()
    );
    let mut trainer = GtvTrainer::new(shards, config);
    if let Some(path) = args.optional("load-weights") {
        let dict = gtv_nn::StateDict::load(path).map_err(|e| e.to_string())?;
        trainer.load_weights(&dict).map_err(|e| e.to_string())?;
        println!("loaded weights from {path} — skipping training");
    } else {
        if comms_stats && trainer.config().rounds > 1 {
            // One warm-up round, then reset the counters so the per-round
            // report covers only steady-state rounds.
            trainer.train_round().map_err(|e| e.to_string())?;
            trainer.network().reset_stats();
            for _ in 1..trainer.config().rounds {
                trainer.train_round().map_err(|e| e.to_string())?;
            }
        } else {
            trainer.train().map_err(|e| e.to_string())?;
        }
        if trainer.config().alloc_stats {
            print_alloc_stats(trainer.alloc_stats());
        }
        if comms_stats {
            print_comms_stats(&trainer.network_stats(), n_clients);
        }
    }
    if let Some(path) = args.optional("save-weights") {
        trainer.save_weights().save(path).map_err(|e| e.to_string())?;
        println!("saved weights to {path}");
    }
    let synthetic = trainer.synthesize(table.n_rows(), 1).map_err(|e| e.to_string())?;
    // Restore the input column order before writing.
    let order: Vec<usize> = groups.iter().flatten().copied().collect();
    let mut inverse = vec![0usize; order.len()];
    for (pos, &col) in order.iter().enumerate() {
        inverse[col] = pos;
    }
    let synthetic = synthetic.select_columns(&inverse);
    std::fs::write(out, to_csv_string(&synthetic)).map_err(|e| e.to_string())?;
    let report = similarity(&table, &synthetic);
    let stats = trainer.network_stats();
    println!("wrote {} synthetic rows to {out}", synthetic.n_rows());
    println!(
        "avg JSD {:.4} | avg WD {:.4} | diff corr {:.3}",
        report.avg_jsd, report.avg_wd, report.diff_corr
    );
    println!(
        "protocol traffic: {} messages, {:.1} MiB",
        stats.messages,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

fn evaluate(args: &Args) -> Result<(), String> {
    let target = args.required("target").map_err(|e| e.to_string())?;
    let real = load_table(args.required("real").map_err(|e| e.to_string())?, Some(target))?;
    // Parse the synthetic file against the *real* schema: inferring it
    // independently would order categories by first occurrence (and pick
    // Mixed vs Continuous from the data), making the two schemas unequal.
    let synth_path = args.required("synth").map_err(|e| e.to_string())?;
    let synth_text =
        std::fs::read_to_string(synth_path).map_err(|e| format!("reading {synth_path}: {e}"))?;
    let synth = from_csv_string(&synth_text, real.schema()).map_err(|e| e.to_string())?;
    let seed = args.parsed_or("seed", 0u64).map_err(|e| e.to_string())?;
    let report = similarity(&real, &synth);
    println!("avg JSD   {:.4}", report.avg_jsd);
    println!("avg WD    {:.4}", report.avg_wd);
    println!("diff corr {:.3}", report.diff_corr);
    let (train, test) = real.train_test_split(0.2, seed);
    let diff = utility_difference(&train, &synth, &test, seed);
    println!("ML-utility difference vs real-trained models (lower is better):");
    println!("  Δaccuracy {:.3} | ΔF1 {:.3} | ΔAUC {:.3}", diff.accuracy, diff.f1, diff.auc);
    Ok(())
}

fn privacy(args: &Args) -> Result<(), String> {
    let table =
        load_table(args.required("input").map_err(|e| e.to_string())?, args.optional("target"))?;
    let n_clients = args.parsed_or("clients", 2usize).map_err(|e| e.to_string())?;
    let rounds = args.parsed_or("rounds", 100usize).map_err(|e| e.to_string())?;
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .map_err(|e| e.to_string())?;
    for shuffling in [false, true] {
        let config =
            GtvConfig { rounds, block_width: 64, embedding_dim: 32, ..GtvConfig::default() };
        let mut trainer = GtvTrainer::new(table.vertical_split(&groups), config);
        trainer.set_shuffling(shuffling);
        trainer.train().map_err(|e| e.to_string())?;
        let report = trainer.observer().reconstruction_accuracy(&trainer.column_truths());
        println!(
            "{} shuffling: server reconstruction accuracy {:.1}% over {} observed cells",
            if shuffling { "WITH   " } else { "WITHOUT" },
            report.accuracy * 100.0,
            report.observed_cells
        );
    }
    Ok(())
}

fn parse_party(spec: &str) -> Result<PartyId, String> {
    match spec {
        "server" => Ok(PartyId::Server),
        "public" => Ok(PartyId::Public),
        n => n
            .parse::<usize>()
            .map(PartyId::Client)
            .map_err(|_| format!("invalid party '{spec}' (use server, public, or a client index)")),
    }
}

/// Parses `--parties 0=127.0.0.1:7000,1=unix:/tmp/p1.sock` into a roster of
/// remote endpoints for [`SocketTransport::connect`].
fn parse_parties(spec: &str) -> Result<HashMap<PartyId, Endpoint>, String> {
    let mut endpoints = HashMap::new();
    for entry in spec.split(',').filter(|s| !s.is_empty()) {
        let (party, endpoint) = entry
            .split_once('=')
            .ok_or_else(|| format!("invalid --parties entry '{entry}' (use PARTY=ENDPOINT)"))?;
        if endpoints.insert(parse_party(party)?, Endpoint::parse(endpoint)).is_some() {
            return Err(format!("party '{party}' listed twice in --parties"));
        }
    }
    if endpoints.is_empty() {
        return Err("--parties must name at least one PARTY=ENDPOINT pair".to_string());
    }
    Ok(endpoints)
}

/// Runs one party's inbox daemon until the process is killed: the
/// distributed deployment's per-organization process.
fn serve_party(args: &Args) -> Result<(), String> {
    let party = parse_party(args.required("party").map_err(|e| e.to_string())?)?;
    let listen = Endpoint::parse(args.required("listen").map_err(|e| e.to_string())?);
    let node = PartyNode::bind(party, &listen).map_err(|e| e.to_string())?;
    println!("party {party} listening on {} (Ctrl-C to stop)", node.endpoint());
    node.serve().map_err(|e| e.to_string())
}

/// Orchestrates a training run whose parties are separate OS processes
/// (started with `serve-party`), reached over TCP or Unix-domain sockets.
fn serve_server(args: &Args) -> Result<(), String> {
    let input = args.required("input").map_err(|e| e.to_string())?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let endpoints = parse_parties(args.required("parties").map_err(|e| e.to_string())?)?;
    let table = load_table(input, args.optional("target"))?;
    let n_clients = args.parsed_or("clients", 2usize).map_err(|e| e.to_string())?;
    let config = build_config(args)?;
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .map_err(|e| e.to_string())?;
    let shards = table.vertical_split(&groups);
    println!("connecting to {} remote parties ({} clients total)…", endpoints.len(), n_clients);
    let transport = SocketTransport::connect(n_clients, endpoints).map_err(|e| e.to_string())?;
    println!(
        "training GTV over sockets (partition {}, {} rounds) on {} rows × {} cols…",
        config.partition,
        config.rounds,
        table.n_rows(),
        table.n_cols()
    );
    let mut trainer =
        GtvTrainer::with_transport(shards, config, transport).map_err(|e| e.to_string())?;
    trainer.train().map_err(|e| e.to_string())?;
    let synthetic = trainer.synthesize(table.n_rows(), 1).map_err(|e| e.to_string())?;
    let order: Vec<usize> = groups.iter().flatten().copied().collect();
    let mut inverse = vec![0usize; order.len()];
    for (pos, &col) in order.iter().enumerate() {
        inverse[col] = pos;
    }
    let synthetic = synthetic.select_columns(&inverse);
    std::fs::write(out, to_csv_string(&synthetic)).map_err(|e| e.to_string())?;
    let stats = trainer.network_stats();
    println!("wrote {} synthetic rows to {out}", synthetic.n_rows());
    println!(
        "protocol traffic: {} messages, {:.1} MiB",
        stats.messages,
        stats.bytes as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}

/// Long-lived synthesis service: train (or load) a model once, warm its
/// buffer pool, then serve batched sampling requests over the serving wire
/// protocol (`ServeFrame` on length-delimited framing, DESIGN.md §14).
fn serve_synth(args: &Args) -> Result<(), String> {
    let input = args.required("input").map_err(|e| e.to_string())?;
    let listen = Endpoint::parse(args.required("listen").map_err(|e| e.to_string())?);
    let model = args.optional("model").unwrap_or("default").to_string();
    let table = load_table(input, args.optional("target"))?;
    let n_clients = args.parsed_or("clients", 2usize).map_err(|e| e.to_string())?;
    let config = build_config(args)?;
    let groups = PartitionPlan::Even { n_clients }
        .column_groups(table.n_cols(), None, None)
        .map_err(|e| e.to_string())?;
    let shards = table.vertical_split(&groups);
    let mut trainer = GtvTrainer::new(shards, config);
    if let Some(path) = args.optional("load-weights") {
        let dict = gtv_nn::StateDict::load(path).map_err(|e| e.to_string())?;
        trainer.load_weights(&dict).map_err(|e| e.to_string())?;
        println!("loaded weights from {path} — skipping training");
    } else {
        println!(
            "training GTV ({} clients, {} rounds) before serving…",
            n_clients,
            trainer.config().rounds
        );
        trainer.train().map_err(|e| e.to_string())?;
    }
    let synth = trainer.synthesizer().map_err(|e| e.to_string())?;

    // Steady-state serving runs entirely from recycled buffers; warming the
    // registry parks the first request's allocations up front.
    gtv_tensor::pool_mem::set_enabled(true);
    let mut registry = ModelRegistry::new();
    let parked = registry.insert_warm(&model, synth).map_err(|e| e.to_string())?;
    let serve_config = ServeConfig {
        queue_cap: args.parsed_or("queue-cap", 256usize).map_err(|e| e.to_string())?,
        max_batch_rows: args.parsed_or("max-batch-rows", 4096usize).map_err(|e| e.to_string())?,
        ..ServeConfig::default()
    };
    let service = std::sync::Arc::new(SynthService::new(registry, serve_config));
    let server = SynthServer::bind(service, &listen).map_err(|e| e.to_string())?;
    println!(
        "model '{model}' registered ({parked} buffers pre-warmed); serving on {} (Ctrl-C to stop)",
        server.endpoint()
    );
    let max_replies = match args.optional("max-replies") {
        Some(n) => Some(n.parse::<u64>().map_err(|e| format!("--max-replies: {e}"))?),
        None => None,
    };
    let replies = server.serve(max_replies).map_err(|e| e.to_string())?;
    let stats = server.service().stats();
    println!(
        "served {replies} replies: {} completed, {} busy-rejected, mean batch {:.1}, pool hit rate {:.3}",
        stats.completed,
        stats.rejected_busy,
        stats.mean_batch(),
        stats.pool_hit_rate()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn party_and_roster_specs_parse() {
        assert_eq!(parse_party("server").unwrap(), PartyId::Server);
        assert_eq!(parse_party("public").unwrap(), PartyId::Public);
        assert_eq!(parse_party("3").unwrap(), PartyId::Client(3));
        assert!(parse_party("client-3").is_err());
        let roster = parse_parties("0=127.0.0.1:7000,1=unix:/tmp/p1.sock").unwrap();
        assert_eq!(roster[&PartyId::Client(0)], Endpoint::Tcp("127.0.0.1:7000".to_string()));
        assert_eq!(
            roster[&PartyId::Client(1)],
            Endpoint::Unix(std::path::PathBuf::from("/tmp/p1.sock"))
        );
        assert!(parse_parties("").is_err());
        assert!(parse_parties("0=a:1,0=b:2").is_err());
        assert!(parse_parties("nope").is_err());
    }

    #[test]
    fn dataset_lookup() {
        assert!(dataset_by_name("loan").is_ok());
        assert!(dataset_by_name("nope").is_err());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        let argv: Vec<String> = vec!["frobnicate".into()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn demo_and_synth_roundtrip() {
        let dir = std::env::temp_dir().join("gtv_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let demo_path = dir.join("demo.csv");
        let synth_path = dir.join("synth.csv");
        let argv: Vec<String> =
            format!("demo --dataset loan --rows 120 --out {}", demo_path.display())
                .split_whitespace()
                .map(String::from)
                .collect();
        run(&argv).unwrap();
        let argv: Vec<String> = format!(
            "synth --input {} --target personal_loan --rounds 2 --batch 16 --width 32 \
             --alloc-stats true --sparse-wire true --comms-stats true --out {}",
            demo_path.display(),
            synth_path.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        run(&argv).unwrap();
        let text = std::fs::read_to_string(&synth_path).unwrap();
        assert!(text.lines().count() > 100);
        // Header preserved in original column order.
        assert!(text.starts_with("age,experience,income"));
    }
}
