//! Minimal `--flag value` argument parsing (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Error from parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseArgsError {}

fn err(message: impl Into<String>) -> ParseArgsError {
    ParseArgsError { message: message.into() }
}

impl Args {
    /// Parses `argv[1..]`: the first token is the subcommand, the rest are
    /// `--key value` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error on a missing subcommand, a flag without a value, or
    /// a token that is not a flag.
    pub fn parse(argv: &[String]) -> Result<Args, ParseArgsError> {
        let mut it = argv.iter();
        let command = it.next().ok_or_else(|| err("missing subcommand"))?.clone();
        let mut flags = HashMap::new();
        while let Some(token) = it.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected a --flag, found '{token}'")))?;
            let value = it.next().ok_or_else(|| err(format!("flag --{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Args { command, flags })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A required string flag.
    ///
    /// # Errors
    ///
    /// Returns an error if the flag is absent.
    pub fn required(&self, key: &str) -> Result<&str, ParseArgsError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| err(format!("missing required flag --{key}")))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns an error if the value does not parse.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| err(format!("invalid value '{v}' for --{key}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv("synth --input x.csv --rounds 50")).unwrap();
        assert_eq!(a.command(), "synth");
        assert_eq!(a.required("input").unwrap(), "x.csv");
        assert_eq!(a.parsed_or::<usize>("rounds", 0).unwrap(), 50);
        assert_eq!(a.parsed_or::<usize>("batch", 64).unwrap(), 64);
        assert!(a.optional("missing").is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(Args::parse(&argv("")).is_err());
        assert!(Args::parse(&argv("cmd stray")).is_err());
        assert!(Args::parse(&argv("cmd --flag")).is_err());
        let a = Args::parse(&argv("cmd --n abc")).unwrap();
        assert!(a.parsed_or::<usize>("n", 1).is_err());
        assert!(a.required("other").is_err());
    }
}
