//! One-hot encoding for categorical columns.

/// One-hot encoder over a fixed category count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneHotEncoder {
    n_categories: usize,
}

impl OneHotEncoder {
    /// Creates an encoder for `n_categories` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_categories == 0`.
    pub fn new(n_categories: usize) -> Self {
        assert!(n_categories > 0, "one-hot encoder needs at least one category");
        Self { n_categories }
    }

    /// Encoded width.
    pub fn width(&self) -> usize {
        self.n_categories
    }

    /// Writes the one-hot pattern for `category` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `category` is out of range or `out` has the wrong length.
    pub fn encode_into(&self, category: u32, out: &mut [f32]) {
        assert_eq!(out.len(), self.n_categories, "output slice width mismatch");
        assert!((category as usize) < self.n_categories, "category {category} out of range");
        out.fill(0.0);
        out[category as usize] = 1.0;
    }

    /// Decodes a (possibly soft) one-hot slice by argmax.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong length.
    pub fn decode(&self, values: &[f32]) -> u32 {
        assert_eq!(values.len(), self.n_categories, "input slice width mismatch");
        let mut best = 0;
        for (i, &v) in values.iter().enumerate() {
            if v > values[best] {
                best = i;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let enc = OneHotEncoder::new(4);
        let mut buf = vec![0.0; 4];
        for c in 0..4u32 {
            enc.encode_into(c, &mut buf);
            assert_eq!(buf.iter().sum::<f32>(), 1.0);
            assert_eq!(enc.decode(&buf), c);
        }
    }

    #[test]
    fn decode_soft_vector() {
        let enc = OneHotEncoder::new(3);
        assert_eq!(enc.decode(&[0.2, 0.5, 0.3]), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let enc = OneHotEncoder::new(2);
        let mut buf = vec![0.0; 2];
        enc.encode_into(5, &mut buf);
    }
}
