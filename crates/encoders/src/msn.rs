//! Mode-specific normalization (CTGAN §4.2) for continuous columns and the
//! CTAB-GAN mixed-type extension.
//!
//! A continuous value `x` is encoded as `(α, β)`: a mixture mode `k` is
//! sampled from the GMM posterior, `α = (x − μ_k) / (4σ_k)` (clipped to
//! `[-1, 1]`) and `β` is the one-hot indicator of `k`. Decoding inverts with
//! the argmax mode. Mixed columns prepend one indicator per *special value*
//! (point mass); when a cell equals a special value its indicator is hot and
//! `α = 0`.

use crate::gmm::Gmm1d;
use rand::rngs::StdRng;

/// Encoder for a continuous column: scalar `α` plus a one-hot mode indicator.
#[derive(Debug, Clone)]
pub struct ModeSpecificNormalizer {
    gmm: Gmm1d,
}

impl ModeSpecificNormalizer {
    /// Fits the underlying GMM (up to `max_modes` components).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(data: &[f64], max_modes: usize, seed: u64) -> Self {
        Self { gmm: Gmm1d::fit(data, max_modes, seed) }
    }

    /// The fitted mixture.
    pub fn gmm(&self) -> &Gmm1d {
        &self.gmm
    }

    /// Encoded width: `1 + n_modes`.
    pub fn width(&self) -> usize {
        1 + self.gmm.n_components()
    }

    /// Encodes `x` into `out = [α, β…]`, sampling the mode from the GMM
    /// posterior.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != width()`.
    pub fn encode_into(&self, x: f64, out: &mut [f32], rng: &mut StdRng) {
        assert_eq!(out.len(), self.width(), "output slice width mismatch");
        let mode = self.gmm.sample_mode(x, rng);
        let alpha = self.alpha_for(x, mode);
        out.fill(0.0);
        out[0] = alpha;
        out[1 + mode] = 1.0;
    }

    fn alpha_for(&self, x: f64, mode: usize) -> f32 {
        let mean = self.gmm.means()[mode];
        let std = self.gmm.stds()[mode].max(1e-12);
        (((x - mean) / (4.0 * std)) as f32).clamp(-1.0, 1.0)
    }

    /// Decodes `[α, β…]` (β may be soft; decoded by argmax).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width()`.
    pub fn decode(&self, values: &[f32]) -> f64 {
        assert_eq!(values.len(), self.width(), "input slice width mismatch");
        let alpha = values[0].clamp(-1.0, 1.0) as f64;
        let beta = &values[1..];
        let mut mode = 0;
        for (i, &v) in beta.iter().enumerate() {
            if v > beta[mode] {
                mode = i;
            }
        }
        let mean = self.gmm.means()[mode];
        let std = self.gmm.stds()[mode];
        alpha * 4.0 * std + mean
    }
}

/// Encoder for a mixed column: special-value indicators followed by GMM
/// modes, per CTAB-GAN's mixed-type encoding.
#[derive(Debug, Clone)]
pub struct MixedEncoder {
    specials: Vec<f64>,
    msn: ModeSpecificNormalizer,
}

impl MixedEncoder {
    /// Fits the encoder. `specials` are the point-mass values; the GMM is fit
    /// on the remaining (continuous) cells.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty. If *every* cell is special, a degenerate
    /// single-mode GMM is fitted on the special values themselves.
    pub fn fit(data: &[f64], specials: &[f64], max_modes: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a mixed encoder to empty data");
        let continuous: Vec<f64> =
            data.iter().copied().filter(|v| !specials.iter().any(|s| close(*s, *v))).collect();
        let fit_data = if continuous.is_empty() { data.to_vec() } else { continuous };
        Self {
            specials: specials.to_vec(),
            msn: ModeSpecificNormalizer::fit(&fit_data, max_modes, seed),
        }
    }

    /// The special (point-mass) values.
    pub fn specials(&self) -> &[f64] {
        &self.specials
    }

    /// Encoded width: `1 + n_specials + n_modes`.
    pub fn width(&self) -> usize {
        self.specials.len() + self.msn.width()
    }

    /// Number of one-hot slots (specials + modes).
    pub fn indicator_width(&self) -> usize {
        self.width() - 1
    }

    /// Encodes `x` into `out = [α, specials…, modes…]`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != width()`.
    pub fn encode_into(&self, x: f64, out: &mut [f32], rng: &mut StdRng) {
        assert_eq!(out.len(), self.width(), "output slice width mismatch");
        out.fill(0.0);
        if let Some(si) = self.specials.iter().position(|s| close(*s, x)) {
            // α = 0, special indicator hot.
            out[1 + si] = 1.0;
            return;
        }
        let ns = self.specials.len();
        let mut tmp = vec![0.0f32; self.msn.width()];
        self.msn.encode_into(x, &mut tmp, rng);
        out[0] = tmp[0];
        out[1 + ns..].copy_from_slice(&tmp[1..]);
    }

    /// Decodes `[α, specials…, modes…]`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != width()`.
    pub fn decode(&self, values: &[f32]) -> f64 {
        assert_eq!(values.len(), self.width(), "input slice width mismatch");
        let ns = self.specials.len();
        let indicators = &values[1..];
        let mut best = 0;
        for (i, &v) in indicators.iter().enumerate() {
            if v > indicators[best] {
                best = i;
            }
        }
        if best < ns {
            return self.specials[best];
        }
        let mut tmp = vec![0.0f32; self.msn.width()];
        tmp[0] = values[0];
        tmp[1..].copy_from_slice(&values[1 + ns..]);
        self.msn.decode(&tmp)
    }
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bimodal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    -10.0 + (i % 7) as f64 * 0.1
                } else {
                    10.0 + (i % 5) as f64 * 0.1
                }
            })
            .collect()
    }

    #[test]
    fn msn_roundtrip_is_accurate() {
        let data = bimodal(400);
        let enc = ModeSpecificNormalizer::fit(&data, 5, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f32; enc.width()];
        for &x in data.iter().take(50) {
            enc.encode_into(x, &mut buf, &mut rng);
            let back = enc.decode(&buf);
            assert!((back - x).abs() < 0.5, "x={x} back={back}");
        }
    }

    #[test]
    fn msn_alpha_is_bounded() {
        let data = bimodal(200);
        let enc = ModeSpecificNormalizer::fit(&data, 5, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0.0f32; enc.width()];
        enc.encode_into(1e6, &mut buf, &mut rng); // way outside the data
        assert!(buf[0].abs() <= 1.0);
    }

    #[test]
    fn msn_beta_is_one_hot() {
        let data = bimodal(200);
        let enc = ModeSpecificNormalizer::fit(&data, 5, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0f32; enc.width()];
        enc.encode_into(data[0], &mut buf, &mut rng);
        let hot: f32 = buf[1..].iter().sum();
        assert_eq!(hot, 1.0);
        assert_eq!(buf[1..].iter().filter(|&&v| v == 1.0).count(), 1);
    }

    #[test]
    fn mixed_encodes_specials_exactly() {
        let mut data = bimodal(300);
        for i in 0..150 {
            data[i * 2] = 0.0; // heavy point mass at 0
        }
        let enc = MixedEncoder::fit(&data, &[0.0], 5, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = vec![0.0f32; enc.width()];
        enc.encode_into(0.0, &mut buf, &mut rng);
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[1], 1.0);
        assert_eq!(enc.decode(&buf), 0.0);
    }

    #[test]
    fn mixed_roundtrips_continuous_part() {
        let mut data = bimodal(300);
        for i in 0..100 {
            data[i * 3] = 0.0;
        }
        let enc = MixedEncoder::fit(&data, &[0.0], 5, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = vec![0.0f32; enc.width()];
        enc.encode_into(10.2, &mut buf, &mut rng);
        let back = enc.decode(&buf);
        assert!((back - 10.2).abs() < 0.5, "back={back}");
    }

    #[test]
    fn mixed_all_special_degenerates_gracefully() {
        let enc = MixedEncoder::fit(&[0.0; 40], &[0.0], 5, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = vec![0.0f32; enc.width()];
        enc.encode_into(0.0, &mut buf, &mut rng);
        assert_eq!(enc.decode(&buf), 0.0);
    }
}
