//! One-dimensional Gaussian mixture fitted with EM.
//!
//! This is the reproduction's stand-in for the *variational* Gaussian
//! mixture CTGAN uses for mode-specific normalization: we fit a plain EM
//! mixture with `max_components` components and prune components whose
//! weight collapses below a threshold, which reproduces VGM's key behaviour
//! (only as many active modes as the data supports).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const WEIGHT_PRUNE_THRESHOLD: f64 = 0.005;
const EM_ITERS: usize = 60;
const MIN_STD_FRAC: f64 = 1e-4;

/// A 1-D Gaussian mixture model.
#[derive(Debug, Clone, PartialEq)]
pub struct Gmm1d {
    weights: Vec<f64>,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Gmm1d {
    /// Fits a mixture with up to `max_components` components.
    ///
    /// Components whose mixture weight collapses below 0.5% are pruned, so
    /// the final [`Gmm1d::n_components`] may be smaller than requested.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `max_components == 0`.
    pub fn fit(data: &[f64], max_components: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot fit a GMM to empty data");
        assert!(max_components > 0, "need at least one component");
        let mut rng = StdRng::seed_from_u64(seed);

        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Degenerate (constant) column: one tight component. Checked on the
        // *raw* spread — clamping first would make this branch unreachable
        // and send constant columns through EM with garbage jitter scales.
        if hi - lo < 1e-12 {
            return Self {
                weights: vec![1.0],
                means: vec![lo],
                stds: vec![1e-6_f64.max(lo.abs() * 1e-6)],
            };
        }
        let range = (hi - lo).max(1e-12);
        let min_std = range * MIN_STD_FRAC;

        let k = max_components.min(data.len());
        // Quantile init with slight jitter.
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut means: Vec<f64> = (0..k)
            .map(|i| {
                let q = (i as f64 + 0.5) / k as f64;
                let idx = ((sorted.len() as f64 - 1.0) * q) as usize;
                sorted[idx] + rng.gen_range(-0.01..0.01) * range
            })
            .collect();
        let global_std = std_dev(data).max(min_std);
        let mut stds = vec![global_std / k as f64 + min_std; k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![0.0f64; k];
        for _ in 0..EM_ITERS {
            // Accumulators.
            let mut nk = vec![0.0f64; k];
            let mut sum = vec![0.0f64; k];
            let mut sq = vec![0.0f64; k];
            for &x in data {
                posterior(&weights, &means, &stds, x, &mut resp);
                for j in 0..k {
                    nk[j] += resp[j];
                    sum[j] += resp[j] * x;
                    sq[j] += resp[j] * x * x;
                }
            }
            let n = data.len() as f64;
            for j in 0..k {
                if nk[j] < 1e-10 {
                    weights[j] = 0.0;
                    continue;
                }
                weights[j] = nk[j] / n;
                means[j] = sum[j] / nk[j];
                let var = (sq[j] / nk[j] - means[j] * means[j]).max(min_std * min_std);
                stds[j] = var.sqrt();
            }
        }

        // Prune near-empty components (VGM-like sparsity) and renormalize.
        let mut out = Self { weights: Vec::new(), means: Vec::new(), stds: Vec::new() };
        for j in 0..k {
            if weights[j] >= WEIGHT_PRUNE_THRESHOLD {
                out.weights.push(weights[j]);
                out.means.push(means[j]);
                out.stds.push(stds[j]);
            }
        }
        if out.weights.is_empty() {
            // Everything pruned (pathological); keep the heaviest component.
            let j = weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            out.weights.push(1.0);
            out.means.push(means[j]);
            out.stds.push(stds[j].max(min_std));
        }
        let total: f64 = out.weights.iter().sum();
        for w in &mut out.weights {
            *w /= total;
        }
        out
    }

    /// Number of surviving components.
    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    /// Component mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Component standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Posterior responsibilities `p(component | x)`.
    pub fn responsibilities(&self, x: f64) -> Vec<f64> {
        let mut resp = vec![0.0; self.n_components()];
        posterior(&self.weights, &self.means, &self.stds, x, &mut resp);
        resp
    }

    /// Samples a component from the posterior `p(component | x)` — the mode
    /// assignment CTGAN uses during encoding.
    pub fn sample_mode(&self, x: f64, rng: &mut StdRng) -> usize {
        let resp = self.responsibilities(x);
        let mut u = rng.gen::<f64>();
        for (i, &r) in resp.iter().enumerate() {
            u -= r;
            if u <= 0.0 {
                return i;
            }
        }
        resp.len() - 1
    }

    /// Log-likelihood of the data under the mixture (for tests/diagnostics).
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        data.iter()
            .map(|&x| {
                let p: f64 = self
                    .weights
                    .iter()
                    .zip(&self.means)
                    .zip(&self.stds)
                    .map(|((w, m), s)| w * gauss_pdf(x, *m, *s))
                    .sum();
                p.max(1e-300).ln()
            })
            .sum()
    }
}

fn std_dev(data: &[f64]) -> f64 {
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    (data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
}

fn gauss_pdf(x: f64, mean: f64, std: f64) -> f64 {
    let z = (x - mean) / std;
    (-0.5 * z * z).exp() / (std * (2.0 * std::f64::consts::PI).sqrt())
}

fn posterior(weights: &[f64], means: &[f64], stds: &[f64], x: f64, out: &mut [f64]) {
    let mut total = 0.0;
    for j in 0..weights.len() {
        let p = weights[j] * gauss_pdf(x, means[j], stds[j]);
        out[j] = p;
        total += p;
    }
    if total <= 0.0 {
        // Numerically underflowed everywhere: assign to nearest component.
        let nearest = means
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - x).abs().total_cmp(&(b.1 - x).abs()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        out.iter_mut().for_each(|v| *v = 0.0);
        out[nearest] = 1.0;
    } else {
        out.iter_mut().for_each(|v| *v /= total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let center = if i % 2 == 0 { -5.0 } else { 5.0 };
                center + rng.gen_range(-1.0..1.0)
            })
            .collect()
    }

    #[test]
    fn recovers_two_well_separated_modes() {
        let data = bimodal(2000, 1);
        let gmm = Gmm1d::fit(&data, 10, 0);
        // Every surviving component sits inside one of the two modes, and
        // the mixture mass splits roughly evenly between them.
        let (mut low_mass, mut high_mass) = (0.0, 0.0);
        for (m, w) in gmm.means().iter().zip(gmm.weights()) {
            if *m < 0.0 {
                assert!((m + 5.0).abs() < 1.5, "stray component at {m}");
                low_mass += w;
            } else {
                assert!((m - 5.0).abs() < 1.5, "stray component at {m}");
                high_mass += w;
            }
        }
        assert!((low_mass - 0.5).abs() < 0.1, "low-mode mass {low_mass}");
        assert!((high_mass - 0.5).abs() < 0.1, "high-mode mass {high_mass}");
    }

    #[test]
    fn posterior_assigns_to_nearest_mode() {
        let data = bimodal(1000, 2);
        let gmm = Gmm1d::fit(&data, 4, 0);
        let resp = gmm.responsibilities(-5.0);
        let best =
            resp.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        assert!((gmm.means()[best] + 5.0).abs() < 1.0);
    }

    #[test]
    fn constant_column_yields_single_component() {
        let gmm = Gmm1d::fit(&[3.0; 50], 5, 0);
        assert_eq!(gmm.n_components(), 1);
        assert!((gmm.means()[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_column_takes_the_degenerate_branch() {
        // Regression: `range` used to be clamped to 1e-12 *before* the
        // `range < 1e-12` check, so constant columns went through EM and
        // got a loose std near `range * MIN_STD_FRAC` of the clamped value.
        // The degenerate branch must fire and produce one *tight* component
        // centered exactly on the constant.
        let gmm = Gmm1d::fit(&[42.0; 100], 8, 3);
        assert_eq!(gmm.n_components(), 1);
        assert_eq!(gmm.weights(), &[1.0]);
        assert_eq!(gmm.means(), &[42.0]);
        assert!(
            gmm.stds()[0] <= 42.0 * 1e-6 + 1e-12,
            "constant column must get a tight std, got {}",
            gmm.stds()[0]
        );
        // Negative and zero-valued constants hit the same branch.
        let neg = Gmm1d::fit(&[-7.5; 20], 3, 0);
        assert_eq!(neg.means(), &[-7.5]);
        let zero = Gmm1d::fit(&[0.0; 20], 3, 0);
        assert_eq!(zero.means(), &[0.0]);
        assert!(zero.stds()[0] >= 1e-6, "std floor must stay positive for zeros");
    }

    #[test]
    fn weights_sum_to_one() {
        let data = bimodal(500, 3);
        let gmm = Gmm1d::fit(&data, 6, 1);
        let total: f64 = gmm.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_components_dont_hurt_likelihood_much() {
        let data = bimodal(1000, 4);
        let g2 = Gmm1d::fit(&data, 2, 0);
        let g8 = Gmm1d::fit(&data, 8, 0);
        assert!(g8.log_likelihood(&data) >= g2.log_likelihood(&data) - 50.0);
    }

    #[test]
    fn sample_mode_follows_posterior() {
        let data = bimodal(1000, 5);
        let gmm = Gmm1d::fit(&data, 4, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let mode = gmm.sample_mode(5.0, &mut rng);
        assert!((gmm.means()[mode] - 5.0).abs() < 1.5);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn rejects_empty() {
        let _ = Gmm1d::fit(&[], 3, 0);
    }
}
