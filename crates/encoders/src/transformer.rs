//! Whole-table feature engineering: fits one encoder per column and maps a
//! [`Table`] to/from the dense matrix a tabular GAN trains on.

use crate::gmm::Gmm1d;
use crate::msn::{MixedEncoder, ModeSpecificNormalizer};
use crate::onehot::OneHotEncoder;
use gtv_data::{ColumnData, ColumnKind, Schema, Table};
use gtv_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a span of encoded columns must be activated by the generator head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Single scalar (`α`) — `tanh` activation.
    Alpha,
    /// One-hot group (modes, specials or categories) — Gumbel-softmax.
    Indicator,
}

/// A contiguous span of encoded columns sharing one activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First encoded column of the span.
    pub start: usize,
    /// Number of encoded columns.
    pub width: usize,
    /// Activation kind.
    pub kind: SpanKind,
}

/// Location of one original column inside the encoded matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnLayout {
    /// Index of the original column.
    pub column: usize,
    /// First encoded column.
    pub start: usize,
    /// Total encoded width of the column.
    pub width: usize,
    /// Activation spans within the column (absolute offsets).
    pub spans: Vec<Span>,
}

/// Info the conditional-vector machinery needs about one categorical column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalInfo {
    /// Index of the original column.
    pub column: usize,
    /// First encoded column of the one-hot group.
    pub onehot_start: usize,
    /// Number of categories.
    pub n_categories: usize,
    /// Training-data counts per category.
    pub counts: Vec<usize>,
}

#[derive(Debug, Clone)]
enum ColumnEncoder {
    OneHot(OneHotEncoder),
    Msn(ModeSpecificNormalizer),
    Mixed(MixedEncoder),
}

/// Fitted whole-table transformer.
///
/// # Examples
///
/// ```
/// use gtv_data::Dataset;
/// use gtv_encoders::TableTransformer;
///
/// let table = Dataset::Loan.generate(200, 0);
/// let tf = TableTransformer::fit(&table, 5, 0);
/// let encoded = tf.encode(&table, 1);
/// assert_eq!(encoded.rows(), 200);
/// let decoded = tf.decode(&encoded);
/// assert_eq!(decoded.n_rows(), 200);
/// assert_eq!(decoded.schema(), table.schema());
/// ```
#[derive(Debug, Clone)]
pub struct TableTransformer {
    schema: Schema,
    encoders: Vec<ColumnEncoder>,
    layouts: Vec<ColumnLayout>,
    categorical: Vec<CategoricalInfo>,
    width: usize,
}

impl TableTransformer {
    /// Fits encoders for every column of `table`.
    ///
    /// `max_modes` bounds the GMM components for continuous/mixed columns
    /// (CTGAN uses 10; the reproduction's default is 5 for CPU budget).
    ///
    /// # Panics
    ///
    /// Panics if the table has no rows.
    pub fn fit(table: &Table, max_modes: usize, seed: u64) -> Self {
        assert!(table.n_rows() > 0, "cannot fit a transformer on an empty table");
        let schema = table.schema().clone();
        let mut encoders = Vec::with_capacity(schema.len());
        let mut layouts = Vec::with_capacity(schema.len());
        let mut categorical = Vec::new();
        let mut cursor = 0usize;
        for (ci, meta) in schema.columns().iter().enumerate() {
            match &meta.kind {
                ColumnKind::Categorical { categories } => {
                    let enc = OneHotEncoder::new(categories.len());
                    let width = enc.width();
                    layouts.push(ColumnLayout {
                        column: ci,
                        start: cursor,
                        width,
                        spans: vec![Span { start: cursor, width, kind: SpanKind::Indicator }],
                    });
                    categorical.push(CategoricalInfo {
                        column: ci,
                        onehot_start: cursor,
                        n_categories: categories.len(),
                        counts: table.category_counts(ci),
                    });
                    encoders.push(ColumnEncoder::OneHot(enc));
                    cursor += width;
                }
                ColumnKind::Continuous => {
                    let enc = ModeSpecificNormalizer::fit(
                        table.column(ci).as_float(),
                        max_modes,
                        seed.wrapping_add(ci as u64),
                    );
                    let width = enc.width();
                    layouts.push(ColumnLayout {
                        column: ci,
                        start: cursor,
                        width,
                        spans: vec![
                            Span { start: cursor, width: 1, kind: SpanKind::Alpha },
                            Span { start: cursor + 1, width: width - 1, kind: SpanKind::Indicator },
                        ],
                    });
                    encoders.push(ColumnEncoder::Msn(enc));
                    cursor += width;
                }
                ColumnKind::Mixed { special_values } => {
                    let enc = MixedEncoder::fit(
                        table.column(ci).as_float(),
                        special_values,
                        max_modes,
                        seed.wrapping_add(ci as u64),
                    );
                    let width = enc.width();
                    layouts.push(ColumnLayout {
                        column: ci,
                        start: cursor,
                        width,
                        spans: vec![
                            Span { start: cursor, width: 1, kind: SpanKind::Alpha },
                            Span { start: cursor + 1, width: width - 1, kind: SpanKind::Indicator },
                        ],
                    });
                    encoders.push(ColumnEncoder::Mixed(enc));
                    cursor += width;
                }
            }
        }
        Self { schema, encoders, layouts, categorical, width: cursor }
    }

    /// Total encoded width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The fitted schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Per-column layout in the encoded matrix.
    pub fn layouts(&self) -> &[ColumnLayout] {
        &self.layouts
    }

    /// Flattened activation spans (in encoded-column order).
    pub fn spans(&self) -> Vec<Span> {
        self.layouts.iter().flat_map(|l| l.spans.iter().copied()).collect()
    }

    /// Conditional-vector info for every categorical column.
    pub fn categorical_info(&self) -> &[CategoricalInfo] {
        &self.categorical
    }

    /// The GMM fitted for a continuous column, if that column is continuous.
    pub fn gmm_for(&self, column: usize) -> Option<&Gmm1d> {
        match &self.encoders[column] {
            ColumnEncoder::Msn(m) => Some(m.gmm()),
            _ => None,
        }
    }

    /// Encodes a table (which must match the fitted schema) into the dense
    /// training matrix. `seed` drives the stochastic mode assignment.
    ///
    /// # Panics
    ///
    /// Panics if `table`'s schema differs from the fitted schema.
    pub fn encode(&self, table: &Table, seed: u64) -> Tensor {
        assert_eq!(table.schema(), &self.schema, "table schema differs from fitted schema");
        let n = table.n_rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Tensor::zeros(n, self.width);
        let data = out.as_mut_slice();
        for (ci, enc) in self.encoders.iter().enumerate() {
            let layout = &self.layouts[ci];
            match enc {
                ColumnEncoder::OneHot(e) => {
                    let vals = table.column(ci).as_cat();
                    for (r, &v) in vals.iter().enumerate() {
                        let base = r * self.width + layout.start;
                        e.encode_into(v, &mut data[base..base + layout.width]);
                    }
                }
                ColumnEncoder::Msn(e) => {
                    let vals = table.column(ci).as_float();
                    for (r, &v) in vals.iter().enumerate() {
                        let base = r * self.width + layout.start;
                        e.encode_into(v, &mut data[base..base + layout.width], &mut rng);
                    }
                }
                ColumnEncoder::Mixed(e) => {
                    let vals = table.column(ci).as_float();
                    for (r, &v) in vals.iter().enumerate() {
                        let base = r * self.width + layout.start;
                        e.encode_into(v, &mut data[base..base + layout.width], &mut rng);
                    }
                }
            }
        }
        out
    }

    /// Decodes a dense matrix (e.g. generator output) back to a table with
    /// the fitted schema.
    ///
    /// # Panics
    ///
    /// Panics if the matrix width differs from [`TableTransformer::width`].
    pub fn decode(&self, matrix: &Tensor) -> Table {
        assert_eq!(
            matrix.cols(),
            self.width,
            "matrix width {} != encoded width {}",
            matrix.cols(),
            self.width
        );
        let n = matrix.rows();
        let mut columns: Vec<ColumnData> = Vec::with_capacity(self.encoders.len());
        for (ci, enc) in self.encoders.iter().enumerate() {
            let layout = &self.layouts[ci];
            match enc {
                ColumnEncoder::OneHot(e) => {
                    let vals = (0..n)
                        .map(|r| {
                            let row = matrix.row_slice(r);
                            e.decode(&row[layout.start..layout.start + layout.width])
                        })
                        .collect();
                    columns.push(ColumnData::Cat(vals));
                }
                ColumnEncoder::Msn(e) => {
                    let vals = (0..n)
                        .map(|r| {
                            let row = matrix.row_slice(r);
                            e.decode(&row[layout.start..layout.start + layout.width])
                        })
                        .collect();
                    columns.push(ColumnData::Float(vals));
                }
                ColumnEncoder::Mixed(e) => {
                    let vals = (0..n)
                        .map(|r| {
                            let row = matrix.row_slice(r);
                            e.decode(&row[layout.start..layout.start + layout.width])
                        })
                        .collect();
                    columns.push(ColumnData::Float(vals));
                }
            }
        }
        Table::new(self.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::{ColumnMeta, Dataset};

    fn demo_table() -> Table {
        let schema = Schema::new(
            vec![
                ColumnMeta::new("x", ColumnKind::Continuous),
                ColumnMeta::new("g", ColumnKind::categorical(["a", "b", "c"])),
                ColumnMeta::new("m", ColumnKind::Mixed { special_values: vec![0.0] }),
            ],
            None,
        );
        let x: Vec<f64> = (0..60).map(|i| if i % 2 == 0 { -4.0 } else { 4.0 }).collect();
        let g: Vec<u32> = (0..60).map(|i| (i % 3) as u32).collect();
        let m: Vec<f64> =
            (0..60).map(|i| if i % 4 == 0 { 0.0 } else { 2.0 + (i % 5) as f64 }).collect();
        Table::new(schema, vec![ColumnData::Float(x), ColumnData::Cat(g), ColumnData::Float(m)])
    }

    #[test]
    fn layout_widths_cover_matrix() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let total: usize = tf.layouts().iter().map(|l| l.width).sum();
        assert_eq!(total, tf.width());
        // Layouts are contiguous.
        let mut cursor = 0;
        for l in tf.layouts() {
            assert_eq!(l.start, cursor);
            cursor += l.width;
        }
    }

    #[test]
    fn encode_decode_roundtrip_categorical_exact() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let enc = tf.encode(&t, 1);
        let dec = tf.decode(&enc);
        assert_eq!(dec.column(1), t.column(1));
    }

    #[test]
    fn encode_decode_roundtrip_continuous_close() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let enc = tf.encode(&t, 1);
        let dec = tf.decode(&enc);
        let orig = t.column(0).as_float();
        let back = dec.column(0).as_float();
        for (a, b) in orig.iter().zip(back) {
            assert!((a - b).abs() < 0.5, "orig {a} decoded {b}");
        }
    }

    #[test]
    fn mixed_specials_roundtrip_exactly() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let enc = tf.encode(&t, 2);
        let dec = tf.decode(&enc);
        let orig = t.column(2).as_float();
        let back = dec.column(2).as_float();
        for (a, b) in orig.iter().zip(back) {
            if *a == 0.0 {
                assert_eq!(*b, 0.0);
            }
        }
    }

    #[test]
    fn categorical_info_counts() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let info = tf.categorical_info();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].n_categories, 3);
        assert_eq!(info[0].counts, vec![20, 20, 20]);
    }

    #[test]
    fn spans_alternate_alpha_then_indicator_for_continuous() {
        let t = demo_table();
        let tf = TableTransformer::fit(&t, 4, 0);
        let spans = tf.spans();
        assert_eq!(spans[0].kind, SpanKind::Alpha);
        assert_eq!(spans[0].width, 1);
        assert_eq!(spans[1].kind, SpanKind::Indicator);
    }

    #[test]
    fn works_on_all_benchmark_datasets() {
        for ds in Dataset::all() {
            let t = ds.generate(150, 0);
            let tf = TableTransformer::fit(&t, 4, 0);
            let enc = tf.encode(&t, 1);
            assert_eq!(enc.rows(), 150, "{ds}");
            let dec = tf.decode(&enc);
            assert_eq!(dec.schema(), t.schema(), "{ds}");
        }
    }
}
