//! # gtv-encoders
//!
//! The CTGAN/CTAB-GAN feature engineering used by GTV (paper §2.2, §3.1.4
//! step 1):
//!
//! * [`OneHotEncoder`] for categorical columns;
//! * [`ModeSpecificNormalizer`] (backed by an EM [`Gmm1d`]) for continuous
//!   columns — the `(α, β)` encoding of CTGAN;
//! * [`MixedEncoder`] for columns with point masses (CTAB-GAN);
//! * [`TableTransformer`] to fit/encode/decode whole tables and report the
//!   activation [`Span`]s the generator head and the conditional-vector
//!   machinery need.
//!
//! In GTV each client fits a transformer on its *local* columns only — no
//! raw data leaves the client.
//!
//! # Examples
//!
//! ```
//! use gtv_data::Dataset;
//! use gtv_encoders::TableTransformer;
//!
//! let table = Dataset::Credit.generate(100, 0);
//! let tf = TableTransformer::fit(&table, 5, 0);
//! let encoded = tf.encode(&table, 1);
//! assert_eq!(encoded.shape(), (100, tf.width()));
//! ```

mod gmm;
mod msn;
mod onehot;
mod transformer;

pub use gmm::Gmm1d;
pub use msn::{MixedEncoder, ModeSpecificNormalizer};
pub use onehot::OneHotEncoder;
pub use transformer::{CategoricalInfo, ColumnLayout, Span, SpanKind, TableTransformer};
