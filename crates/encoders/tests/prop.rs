//! Property-based tests of the feature-engineering invariants.

use gtv_encoders::{Gmm1d, MixedEncoder, ModeSpecificNormalizer, OneHotEncoder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-50.0f64..50.0, 20..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GMM weights always form a distribution and stds stay positive.
    #[test]
    fn gmm_is_well_formed(data in data_strategy(), k in 1usize..8) {
        let gmm = Gmm1d::fit(&data, k, 0);
        let total: f64 = gmm.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(gmm.stds().iter().all(|&s| s > 0.0));
        prop_assert!(gmm.n_components() >= 1 && gmm.n_components() <= k.min(data.len()));
    }

    /// Posterior responsibilities are a distribution for any query point.
    #[test]
    fn gmm_posterior_is_distribution(data in data_strategy(), x in -100.0f64..100.0) {
        let gmm = Gmm1d::fit(&data, 4, 1);
        let resp = gmm.responsibilities(x);
        let total: f64 = resp.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        prop_assert!(resp.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    /// Mode-specific normalization round-trips within a few mode-widths.
    #[test]
    fn msn_roundtrip_error_is_bounded(data in data_strategy(), probe in 0usize..20) {
        let enc = ModeSpecificNormalizer::fit(&data, 5, 0);
        let x = data[probe % data.len()];
        let mut buf = vec![0.0f32; enc.width()];
        let mut rng = StdRng::seed_from_u64(7);
        enc.encode_into(x, &mut buf, &mut rng);
        // α is clamped to [-1, 1], so the inverse can deviate by at most
        // 4σ of the assigned mode plus float error; use the global spread
        // as a conservative bound.
        let spread = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - data.iter().cloned().fold(f64::INFINITY, f64::min);
        let back = enc.decode(&buf);
        prop_assert!((back - x).abs() <= spread.max(1.0), "x={x} back={back}");
        prop_assert!(buf[0].abs() <= 1.0);
    }

    /// Mixed encoding always produces exactly one hot indicator.
    #[test]
    fn mixed_encoding_one_hot_invariant(mut data in data_strategy(), probe in 0usize..20) {
        data.extend(std::iter::repeat_n(0.0, 10)); // guarantee the special exists
        let enc = MixedEncoder::fit(&data, &[0.0], 4, 0);
        let x = data[probe % data.len()];
        let mut buf = vec![0.0f32; enc.width()];
        let mut rng = StdRng::seed_from_u64(3);
        enc.encode_into(x, &mut buf, &mut rng);
        let hot: f32 = buf[1..].iter().sum();
        prop_assert_eq!(hot, 1.0);
        prop_assert_eq!(buf[1..].iter().filter(|&&v| v == 1.0).count(), 1);
    }

    /// One-hot encode/decode is the identity on any category.
    #[test]
    fn onehot_roundtrip(k in 1usize..20, c in 0u32..20) {
        let c = c % k as u32;
        let enc = OneHotEncoder::new(k);
        let mut buf = vec![0.0f32; k];
        enc.encode_into(c, &mut buf);
        prop_assert_eq!(enc.decode(&buf), c);
    }
}
