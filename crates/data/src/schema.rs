//! Column and table schemas.

/// The statistical type of a column, which decides how it is encoded for GAN
/// training (one-hot, mode-specific normalization, or the CTAB-GAN
/// mixed-type encoding).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnKind {
    /// Discrete column with a fixed category vocabulary.
    Categorical {
        /// Category labels; cell values index into this list.
        categories: Vec<String>,
    },
    /// Real-valued column.
    Continuous,
    /// Column that is mostly continuous but has point masses at special
    /// values (e.g. `Mortgage` where most entries are exactly `0`).
    Mixed {
        /// The special (categorical-like) values.
        special_values: Vec<f64>,
    },
}

impl ColumnKind {
    /// Convenience constructor for a categorical kind from label strings.
    pub fn categorical<S: Into<String>>(labels: impl IntoIterator<Item = S>) -> Self {
        ColumnKind::Categorical { categories: labels.into_iter().map(Into::into).collect() }
    }

    /// Number of categories (categorical columns only).
    pub fn n_categories(&self) -> Option<usize> {
        match self {
            ColumnKind::Categorical { categories } => Some(categories.len()),
            _ => None,
        }
    }

    /// True for [`ColumnKind::Categorical`].
    pub fn is_categorical(&self) -> bool {
        matches!(self, ColumnKind::Categorical { .. })
    }

    /// True for [`ColumnKind::Continuous`].
    pub fn is_continuous(&self) -> bool {
        matches!(self, ColumnKind::Continuous)
    }

    /// True for [`ColumnKind::Mixed`].
    pub fn is_mixed(&self) -> bool {
        matches!(self, ColumnKind::Mixed { .. })
    }
}

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Statistical type.
    pub kind: ColumnKind,
}

impl ColumnMeta {
    /// Creates column metadata.
    pub fn new(name: impl Into<String>, kind: ColumnKind) -> Self {
        Self { name: name.into(), kind }
    }
}

/// A table schema: ordered columns plus an optional target column used by the
/// ML-utility evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
    target: Option<usize>,
}

impl Schema {
    /// Creates a schema. `target`, if given, must index a categorical column.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range or not categorical.
    pub fn new(columns: Vec<ColumnMeta>, target: Option<usize>) -> Self {
        if let Some(t) = target {
            assert!(t < columns.len(), "target index {t} out of range");
            assert!(
                columns[t].kind.is_categorical(),
                "target column '{}' must be categorical",
                columns[t].name
            );
        }
        Self { columns, target }
    }

    /// Column metadata in order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Metadata of column `i`.
    pub fn column(&self, i: usize) -> &ColumnMeta {
        &self.columns[i]
    }

    /// Index of the target column, if any.
    pub fn target(&self) -> Option<usize> {
        self.target
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Sub-schema over the given column indices. The target is preserved if
    /// it is among them.
    pub fn project(&self, indices: &[usize]) -> Schema {
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        let target = self.target.and_then(|t| indices.iter().position(|&i| i == t));
        Schema { columns, target }
    }

    /// Concatenates schemas side by side. At most one part may carry a
    /// target.
    ///
    /// # Panics
    ///
    /// Panics if more than one part has a target column.
    pub fn concat(parts: &[&Schema]) -> Schema {
        let mut columns = Vec::new();
        let mut target = None;
        for p in parts {
            if let Some(t) = p.target {
                assert!(target.is_none(), "multiple parts define a target column");
                target = Some(columns.len() + t);
            }
            columns.extend(p.columns.iter().cloned());
        }
        Schema { columns, target }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_schema() -> Schema {
        Schema::new(
            vec![
                ColumnMeta::new("age", ColumnKind::Continuous),
                ColumnMeta::new("gender", ColumnKind::categorical(["M", "F"])),
                ColumnMeta::new("mortgage", ColumnKind::Mixed { special_values: vec![0.0] }),
                ColumnMeta::new("label", ColumnKind::categorical(["no", "yes"])),
            ],
            Some(3),
        )
    }

    #[test]
    fn lookup_and_target() {
        let s = demo_schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("gender"), Some(1));
        assert_eq!(s.target(), Some(3));
        assert_eq!(s.column(1).kind.n_categories(), Some(2));
    }

    #[test]
    fn project_remaps_target() {
        let s = demo_schema();
        let p = s.project(&[3, 0]);
        assert_eq!(p.target(), Some(0));
        assert_eq!(p.column(1).name, "age");
        let q = s.project(&[0, 1]);
        assert_eq!(q.target(), None);
    }

    #[test]
    fn concat_offsets_target() {
        let s = demo_schema();
        let left = s.project(&[0, 1]);
        let right = s.project(&[2, 3]);
        let joined = Schema::concat(&[&left, &right]);
        assert_eq!(joined.target(), Some(3));
        assert_eq!(joined.len(), 4);
    }

    #[test]
    #[should_panic(expected = "must be categorical")]
    fn target_must_be_categorical() {
        let _ = Schema::new(vec![ColumnMeta::new("x", ColumnKind::Continuous)], Some(0));
    }
}
