//! The five benchmark dataset stand-ins used throughout the paper's
//! evaluation: Loan, Adult, Covertype, Intrusion and Credit.
//!
//! Each mirrors its real counterpart's column structure and class imbalance;
//! see the crate docs and `DESIGN.md` for the substitution rationale.

use super::{SynthColumn, SynthSpec};
use crate::table::Table;

/// The benchmark datasets of the paper (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Kaggle "Bank Personal Loan" stand-in: 12 features + binary target
    /// (~9.6% positives), 5 000 rows in the original.
    Loan,
    /// UCI Adult stand-in: 14 features (6 continuous/mixed, 8 categorical) +
    /// binary income target (~24% positives).
    Adult,
    /// UCI Covertype stand-in: 10 continuous + wilderness/soil categoricals +
    /// 7-class target with strong imbalance.
    Covtype,
    /// KDD-Cup'99 intrusion stand-in: 41 features + 5-class attack-category
    /// target with strong imbalance.
    Intrusion,
    /// Kaggle credit-card-fraud stand-in: 30 continuous features + an
    /// extremely imbalanced binary target (1.7% positives here vs the
    /// original 0.17% — softened 10× so the minority stays populated at the
    /// reproduction's reduced row counts; see DESIGN.md).
    Credit,
}

impl Dataset {
    /// All five datasets in the paper's order.
    pub fn all() -> [Dataset; 5] {
        [Dataset::Loan, Dataset::Adult, Dataset::Covtype, Dataset::Intrusion, Dataset::Credit]
    }

    /// Lower-case dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Loan => "loan",
            Dataset::Adult => "adult",
            Dataset::Covtype => "covtype",
            Dataset::Intrusion => "intrusion",
            Dataset::Credit => "credit",
        }
    }

    /// Row count used by the paper (after its 50 K stratified subsampling).
    pub fn paper_rows(self) -> usize {
        match self {
            Dataset::Loan => 5_000,
            Dataset::Adult => 32_561,
            Dataset::Covtype | Dataset::Intrusion | Dataset::Credit => 50_000,
        }
    }

    /// The generative specification of the stand-in.
    pub fn spec(self) -> SynthSpec {
        match self {
            Dataset::Loan => loan_spec(),
            Dataset::Adult => adult_spec(),
            Dataset::Covtype => covtype_spec(),
            Dataset::Intrusion => intrusion_spec(),
            Dataset::Credit => credit_spec(),
        }
    }

    /// Generates `rows` rows with the given sampling seed.
    pub fn generate(self, rows: usize, seed: u64) -> Table {
        self.spec().generate(rows, seed)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn loan_spec() -> SynthSpec {
    SynthSpec {
        name: "loan".into(),
        n_factors: 6,
        columns: vec![
            SynthColumn::continuous("age", 8.0, 45.0),
            SynthColumn::continuous("experience", 8.0, 20.0),
            SynthColumn::skewed("income", 30.0, 10.0),
            SynthColumn::categorical("family", 4),
            SynthColumn::skewed("ccavg", 1.5, 0.1),
            SynthColumn::categorical("education", 3),
            SynthColumn::mixed("mortgage", 0.0, 0.65, 80.0, 20.0),
            SynthColumn::binary("securities_account"),
            SynthColumn::binary("cd_account"),
            SynthColumn::binary("online"),
            SynthColumn::binary("creditcard"),
            SynthColumn::continuous("zip_region", 2.0, 5.0),
        ],
        target_name: "personal_loan".into(),
        class_priors: vec![0.904, 0.096],
        signal_decay: 0.45,
        signal_strength: 0.9,
        feature_noise: 1.2,
        model_seed: 0x10a1,
    }
}

fn adult_spec() -> SynthSpec {
    SynthSpec {
        name: "adult".into(),
        n_factors: 8,
        columns: vec![
            SynthColumn::continuous("age", 12.0, 38.0),
            SynthColumn::categorical("workclass", 7),
            SynthColumn::skewed("fnlwgt", 60_000.0, 30_000.0),
            SynthColumn::categorical("education", 16),
            SynthColumn::continuous("education_num", 2.5, 10.0),
            SynthColumn::categorical("marital_status", 7),
            SynthColumn::categorical("occupation", 14),
            SynthColumn::categorical("relationship", 6),
            SynthColumn::categorical("race", 5),
            SynthColumn::binary("sex"),
            SynthColumn::mixed("capital_gain", 0.0, 0.90, 4_000.0, 100.0),
            SynthColumn::mixed("capital_loss", 0.0, 0.95, 800.0, 50.0),
            SynthColumn::continuous("hours_per_week", 10.0, 40.0),
            SynthColumn::categorical("native_country", 10),
        ],
        target_name: "income".into(),
        class_priors: vec![0.759, 0.241],
        signal_decay: 0.4,
        signal_strength: 0.8,
        feature_noise: 1.2,
        model_seed: 0xad01,
    }
}

fn covtype_spec() -> SynthSpec {
    let mut columns = vec![
        SynthColumn::continuous("elevation", 280.0, 2950.0),
        SynthColumn::continuous("aspect", 110.0, 155.0),
        SynthColumn::continuous("slope", 7.5, 14.0),
        SynthColumn::continuous("horiz_dist_hydrology", 210.0, 270.0),
        SynthColumn::continuous("vert_dist_hydrology", 58.0, 46.0),
        SynthColumn::continuous("horiz_dist_roadways", 1_550.0, 2_350.0),
        SynthColumn::continuous("hillshade_9am", 27.0, 212.0),
        SynthColumn::continuous("hillshade_noon", 20.0, 223.0),
        SynthColumn::continuous("hillshade_3pm", 38.0, 143.0),
        SynthColumn::continuous("horiz_dist_fire", 1_320.0, 1_980.0),
        SynthColumn::categorical("wilderness_area", 4),
    ];
    // The original has 40 one-hot soil-type columns; the stand-in keeps the
    // same information as binary indicator columns (first 12 soil types carry
    // most of the mass in the original — the tail is folded into fewer
    // indicators to keep CPU training tractable; column *count* still
    // dominated by soil like the original).
    for i in 0..12 {
        columns.push(SynthColumn::binary(&format!("soil_type_{i}")));
    }
    SynthSpec {
        name: "covtype".into(),
        n_factors: 10,
        columns,
        target_name: "cover_type".into(),
        class_priors: vec![0.36, 0.47, 0.062, 0.015, 0.02, 0.035, 0.038],
        signal_decay: 0.35,
        signal_strength: 1.6,
        feature_noise: 1.0,
        model_seed: 0xc0f7,
    }
}

fn intrusion_spec() -> SynthSpec {
    let mut columns = vec![
        SynthColumn::skewed("duration", 30.0, 0.0),
        SynthColumn::categorical("protocol_type", 3),
        SynthColumn::categorical("service", 12),
        SynthColumn::categorical("flag", 11),
        SynthColumn::skewed("src_bytes", 900.0, 0.0),
        SynthColumn::skewed("dst_bytes", 600.0, 0.0),
        SynthColumn::binary("land"),
        SynthColumn::mixed("wrong_fragment", 0.0, 0.92, 1.2, 0.0),
        SynthColumn::mixed("urgent", 0.0, 0.97, 0.8, 0.0),
        SynthColumn::mixed("hot", 0.0, 0.85, 2.5, 0.0),
        SynthColumn::mixed("num_failed_logins", 0.0, 0.9, 1.0, 0.0),
        SynthColumn::binary("logged_in"),
        SynthColumn::mixed("num_compromised", 0.0, 0.9, 2.0, 0.0),
        SynthColumn::binary("root_shell"),
        SynthColumn::binary("su_attempted"),
        SynthColumn::mixed("num_root", 0.0, 0.9, 2.2, 0.0),
        SynthColumn::mixed("num_file_creations", 0.0, 0.88, 1.5, 0.0),
        SynthColumn::binary("is_guest_login"),
        SynthColumn::continuous("count", 110.0, 80.0),
        SynthColumn::continuous("srv_count", 95.0, 30.0),
        SynthColumn::continuous("serror_rate", 0.35, 0.18),
        SynthColumn::continuous("srv_serror_rate", 0.35, 0.18),
        SynthColumn::continuous("rerror_rate", 0.28, 0.12),
        SynthColumn::continuous("srv_rerror_rate", 0.28, 0.12),
        SynthColumn::continuous("same_srv_rate", 0.35, 0.75),
        SynthColumn::continuous("diff_srv_rate", 0.18, 0.06),
        SynthColumn::continuous("srv_diff_host_rate", 0.22, 0.10),
        SynthColumn::continuous("dst_host_count", 95.0, 180.0),
        SynthColumn::continuous("dst_host_srv_count", 100.0, 115.0),
        SynthColumn::continuous("dst_host_same_srv_rate", 0.4, 0.52),
        SynthColumn::continuous("dst_host_diff_srv_rate", 0.18, 0.08),
        SynthColumn::continuous("dst_host_same_src_port_rate", 0.3, 0.15),
        SynthColumn::continuous("dst_host_srv_diff_host_rate", 0.12, 0.03),
        SynthColumn::continuous("dst_host_serror_rate", 0.35, 0.18),
        SynthColumn::continuous("dst_host_srv_serror_rate", 0.35, 0.18),
        SynthColumn::continuous("dst_host_rerror_rate", 0.28, 0.12),
        SynthColumn::continuous("dst_host_srv_rerror_rate", 0.28, 0.12),
    ];
    columns.push(SynthColumn::binary("is_host_login"));
    columns.push(SynthColumn::mixed("num_shells", 0.0, 0.95, 0.8, 0.0));
    columns.push(SynthColumn::mixed("num_access_files", 0.0, 0.93, 1.0, 0.0));
    columns.push(SynthColumn::continuous("srv_rate_extra", 0.2, 0.5));
    SynthSpec {
        name: "intrusion".into(),
        n_factors: 12,
        columns,
        target_name: "attack_category".into(),
        class_priors: vec![0.20, 0.62, 0.14, 0.03, 0.01],
        signal_decay: 0.3,
        signal_strength: 1.3,
        feature_noise: 1.0,
        model_seed: 0x1d05,
    }
}

fn credit_spec() -> SynthSpec {
    let mut columns = vec![SynthColumn::continuous("time", 47_000.0, 94_000.0)];
    for i in 1..=28 {
        columns.push(SynthColumn::continuous(&format!("v{i}"), 1.0, 0.0));
    }
    columns.push(SynthColumn::skewed("amount", 90.0, 2.0));
    SynthSpec {
        name: "credit".into(),
        n_factors: 10,
        columns,
        target_name: "class".into(),
        class_priors: vec![0.983, 0.017],
        signal_decay: 0.35,
        signal_strength: 2.2,
        feature_noise: 1.0,
        model_seed: 0xc4ed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate() {
        for ds in Dataset::all() {
            let t = ds.generate(300, 1);
            assert_eq!(t.n_rows(), 300, "{ds}");
            assert!(t.schema().target().is_some(), "{ds} needs a target");
        }
    }

    #[test]
    fn column_counts_match_paper_structure() {
        assert_eq!(Dataset::Loan.generate(10, 0).n_cols(), 13);
        assert_eq!(Dataset::Adult.generate(10, 0).n_cols(), 15);
        assert_eq!(Dataset::Covtype.generate(10, 0).n_cols(), 24);
        assert_eq!(Dataset::Intrusion.generate(10, 0).n_cols(), 42);
        assert_eq!(Dataset::Credit.generate(10, 0).n_cols(), 31);
    }

    #[test]
    fn credit_is_extremely_imbalanced() {
        let t = Dataset::Credit.generate(20_000, 7);
        let target = t.schema().target().unwrap();
        let counts = t.category_counts(target);
        let frac = counts[1] as f64 / 20_000.0;
        assert!(frac < 0.03, "fraud fraction {frac} should stay rare");
        assert!(counts[1] > 0, "some fraud rows must exist");
    }

    #[test]
    fn covtype_target_has_seven_classes() {
        let t = Dataset::Covtype.generate(2_000, 3);
        assert_eq!(t.n_target_classes(), Some(7));
    }

    #[test]
    fn dataset_names_stable() {
        let names: Vec<&str> = Dataset::all().iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["loan", "adult", "covtype", "intrusion", "credit"]);
    }
}
