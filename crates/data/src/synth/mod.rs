//! Synthetic stand-ins for the paper's five benchmark datasets.
//!
//! The real Adult/Covertype/Intrusion/Credit/Loan tables are external
//! downloads; this module generates seeded synthetic tables with the same
//! *structural* properties — column counts and types, class imbalance,
//! mixed-type columns with point masses, and cross-column correlations — via
//! a class-conditioned latent-factor model:
//!
//! 1. a target class `y` is drawn from the dataset's class priors;
//! 2. a latent factor vector `z ~ N(μ_y, I)` is drawn, where the per-class
//!    means `μ_y` decay across factor indices (so early factors carry strong
//!    class signal and late factors almost none);
//! 3. every feature column mixes the factors through its own weight vector,
//!    giving features a spectrum of importance for predicting `y` and
//!    correlations with each other through the shared factors.
//!
//! The per-dataset *model* (weights, biases) is derived from a fixed internal
//! seed so a dataset is the same distribution across runs; the caller's seed
//! only controls row sampling.

mod datasets;

pub use datasets::Dataset;

use crate::schema::{ColumnKind, ColumnMeta, Schema};
use crate::table::{ColumnData, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a synthetic feature column is produced from the latent factors.
#[derive(Debug, Clone)]
pub enum SynthKind {
    /// Gaussian-ish continuous value `w·z + ε`, optionally exponentiated for
    /// right skew and affinely rescaled.
    Continuous {
        /// Apply `exp` to induce right skew (income-like columns).
        skew: bool,
        /// Final scale.
        scale: f64,
        /// Final offset.
        offset: f64,
    },
    /// Categorical with `n` classes sampled from factor-driven logits.
    Categorical {
        /// Number of categories.
        n: usize,
    },
    /// Continuous with a point mass: with probability driven by the factors
    /// the cell is exactly `special`, otherwise continuous.
    Mixed {
        /// The special value (e.g. `0.0` for `Mortgage`).
        special: f64,
        /// Base probability of emitting the special value.
        special_prob: f64,
        /// Final scale of the continuous part.
        scale: f64,
        /// Final offset of the continuous part.
        offset: f64,
    },
}

/// Specification of one synthetic column.
#[derive(Debug, Clone)]
pub struct SynthColumn {
    /// Column name.
    pub name: String,
    /// Generation recipe.
    pub kind: SynthKind,
}

impl SynthColumn {
    /// Continuous column without skew.
    pub fn continuous(name: &str, scale: f64, offset: f64) -> Self {
        Self { name: name.into(), kind: SynthKind::Continuous { skew: false, scale, offset } }
    }

    /// Right-skewed continuous column.
    pub fn skewed(name: &str, scale: f64, offset: f64) -> Self {
        Self { name: name.into(), kind: SynthKind::Continuous { skew: true, scale, offset } }
    }

    /// Categorical column with `n` classes.
    pub fn categorical(name: &str, n: usize) -> Self {
        Self { name: name.into(), kind: SynthKind::Categorical { n } }
    }

    /// Binary column.
    pub fn binary(name: &str) -> Self {
        Self::categorical(name, 2)
    }

    /// Mixed column with a point mass at `special`.
    pub fn mixed(name: &str, special: f64, special_prob: f64, scale: f64, offset: f64) -> Self {
        Self { name: name.into(), kind: SynthKind::Mixed { special, special_prob, scale, offset } }
    }
}

/// Full specification of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Dataset name (schema metadata only).
    pub name: String,
    /// Number of latent factors.
    pub n_factors: usize,
    /// Feature columns.
    pub columns: Vec<SynthColumn>,
    /// Target column name.
    pub target_name: String,
    /// Target class priors (must sum to ~1).
    pub class_priors: Vec<f64>,
    /// How quickly class signal decays across factors (larger = fewer
    /// informative factors ⇒ more skewed feature importance).
    pub signal_decay: f64,
    /// Magnitude of the class-conditional factor means. Small values make
    /// individual features weak predictors so that *combining* features
    /// (the paper's Fig. 3 premise) is what yields accuracy.
    pub signal_strength: f64,
    /// Per-feature idiosyncratic noise (std of the additive Gaussian).
    pub feature_noise: f64,
    /// Seed defining the dataset's fixed generative model.
    pub model_seed: u64,
}

/// Per-class logit weight matrix and bias vector of a categorical column.
type CatLogits = (Vec<Vec<f64>>, Vec<f64>);

struct Model {
    /// Per-class factor means `μ_y` (n_classes × n_factors).
    class_means: Vec<Vec<f64>>,
    /// Per-column factor weights.
    col_weights: Vec<Vec<f64>>,
    /// Per-categorical-column logit parameters.
    cat_logits: Vec<Option<CatLogits>>,
}

fn sample_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl SynthSpec {
    fn build_model(&self) -> Model {
        let mut rng = StdRng::seed_from_u64(self.model_seed);
        let k = self.n_factors;
        let class_means = (0..self.class_priors.len())
            .map(|_| {
                (0..k)
                    .map(|f| {
                        let strength = (-self.signal_decay * f as f64).exp();
                        sample_normal(&mut rng) * self.signal_strength * strength
                    })
                    .collect()
            })
            .collect();
        let mut col_weights = Vec::with_capacity(self.columns.len());
        let mut cat_logits = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            // Sparse-ish weights: each column listens to a few factors.
            let weights: Vec<f64> = (0..k)
                .map(|_| if rng.gen::<f64>() < 0.4 { sample_normal(&mut rng) } else { 0.0 })
                .collect();
            col_weights.push(weights);
            match col.kind {
                SynthKind::Categorical { n } => {
                    let w = (0..n)
                        .map(|_| (0..k).map(|_| sample_normal(&mut rng) * 0.8).collect())
                        .collect();
                    let b = (0..n).map(|_| sample_normal(&mut rng) * 0.5).collect();
                    cat_logits.push(Some((w, b)));
                }
                _ => cat_logits.push(None),
            }
        }
        Model { class_means, col_weights, cat_logits }
    }

    /// Generates `rows` rows with the given sampling seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no columns or empty class priors.
    pub fn generate(&self, rows: usize, seed: u64) -> Table {
        assert!(!self.columns.is_empty(), "spec has no columns");
        assert!(!self.class_priors.is_empty(), "spec has no class priors");
        let model = self.build_model();
        let mut rng = StdRng::seed_from_u64(seed);
        let k = self.n_factors;
        let n_classes = self.class_priors.len();

        // Per-row latent state.
        let mut labels: Vec<u32> = Vec::with_capacity(rows);
        let mut factors: Vec<Vec<f64>> = Vec::with_capacity(rows);
        for _ in 0..rows {
            let y = sample_from_priors(&self.class_priors, &mut rng);
            let mu = &model.class_means[y];
            let z: Vec<f64> = (0..k).map(|f| mu[f] + sample_normal(&mut rng)).collect();
            labels.push(y as u32);
            factors.push(z);
        }

        let mut columns: Vec<ColumnData> = Vec::with_capacity(self.columns.len() + 1);
        let mut metas: Vec<ColumnMeta> = Vec::with_capacity(self.columns.len() + 1);
        for (ci, col) in self.columns.iter().enumerate() {
            let w = &model.col_weights[ci];
            match &col.kind {
                SynthKind::Continuous { skew, scale, offset } => {
                    let vals = factors
                        .iter()
                        .map(|z| {
                            let raw = dot(w, z) + self.feature_noise * sample_normal(&mut rng);
                            let v = if *skew { raw.exp() } else { raw };
                            v * scale + offset
                        })
                        .collect();
                    columns.push(ColumnData::Float(vals));
                    metas.push(ColumnMeta::new(&col.name, ColumnKind::Continuous));
                }
                SynthKind::Categorical { n } => {
                    let (lw, lb) =
                        model.cat_logits[ci].as_ref().expect("categorical column has logits");
                    let vals = factors
                        .iter()
                        .map(|z| {
                            let logits: Vec<f64> =
                                (0..*n).map(|c| dot(&lw[c], z) + lb[c]).collect();
                            sample_softmax(&logits, &mut rng) as u32
                        })
                        .collect();
                    columns.push(ColumnData::Cat(vals));
                    let labels: Vec<String> =
                        (0..*n).map(|c| format!("{}_{c}", col.name)).collect();
                    metas.push(ColumnMeta::new(&col.name, ColumnKind::categorical(labels)));
                }
                SynthKind::Mixed { special, special_prob, scale, offset } => {
                    let vals = factors
                        .iter()
                        .map(|z| {
                            let gate = dot(w, z) * 0.3;
                            let p = special_prob + 0.2 * gate.tanh();
                            if rng.gen::<f64>() < p.clamp(0.02, 0.98) {
                                *special
                            } else {
                                let raw = dot(w, z) + self.feature_noise * sample_normal(&mut rng);
                                raw.exp() * scale + offset
                            }
                        })
                        .collect();
                    columns.push(ColumnData::Float(vals));
                    metas.push(ColumnMeta::new(
                        &col.name,
                        ColumnKind::Mixed { special_values: vec![*special] },
                    ));
                }
            }
        }

        // Target column last.
        let target_labels: Vec<String> =
            (0..n_classes).map(|c| format!("{}_{c}", self.target_name)).collect();
        metas.push(ColumnMeta::new(&self.target_name, ColumnKind::categorical(target_labels)));
        columns.push(ColumnData::Cat(labels));
        let target_idx = metas.len() - 1;
        Table::new(Schema::new(metas, Some(target_idx)), columns)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn sample_from_priors(priors: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = priors.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &p) in priors.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    priors.len() - 1
}

fn sample_softmax(logits: &[f64], rng: &mut StdRng) -> usize {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    sample_from_priors(&exps, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SynthSpec {
        SynthSpec {
            name: "tiny".into(),
            n_factors: 4,
            columns: vec![
                SynthColumn::continuous("a", 1.0, 0.0),
                SynthColumn::categorical("b", 3),
                SynthColumn::mixed("m", 0.0, 0.5, 1.0, 0.0),
            ],
            target_name: "y".into(),
            class_priors: vec![0.7, 0.3],
            signal_decay: 0.5,
            signal_strength: 2.0,
            feature_noise: 0.5,
            model_seed: 99,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let t = tiny_spec().generate(500, 1);
        assert_eq!(t.n_rows(), 500);
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.schema().target(), Some(3));
    }

    #[test]
    fn same_seed_same_table_different_seed_differs() {
        let spec = tiny_spec();
        assert_eq!(spec.generate(100, 5), spec.generate(100, 5));
        assert_ne!(spec.generate(100, 5), spec.generate(100, 6));
    }

    #[test]
    fn class_priors_respected() {
        let t = tiny_spec().generate(4000, 2);
        let counts = t.category_counts(3);
        let frac1 = counts[1] as f64 / 4000.0;
        assert!((frac1 - 0.3).abs() < 0.04, "class-1 fraction {frac1}");
    }

    #[test]
    fn mixed_column_has_point_mass() {
        let t = tiny_spec().generate(1000, 3);
        let zeros = t.column(2).as_float().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 250 && zeros < 750, "point mass count {zeros}");
    }

    #[test]
    fn features_are_label_correlated() {
        // The first continuous column should differ between classes on
        // average (factors are class-conditioned).
        let t = tiny_spec().generate(4000, 4);
        let labels = t.target_labels().unwrap();
        let vals = t.column(0).as_float();
        let (mut s0, mut n0, mut s1, mut n1) = (0.0, 0.0, 0.0, 0.0);
        for (v, &l) in vals.iter().zip(labels) {
            if l == 0 {
                s0 += v;
                n0 += 1.0;
            } else {
                s1 += v;
                n1 += 1.0;
            }
        }
        let gap = (s0 / n0 - s1 / n1).abs();
        assert!(gap > 0.05, "class-conditional mean gap too small: {gap}");
    }
}
