//! # gtv-data
//!
//! Tabular data model for the GTV reproduction: a column-oriented [`Table`]
//! with the row/column operations vertical federated learning needs (seeded
//! shared shuffling, vertical split/concat, stratified splits), simple CSV
//! I/O, and seeded synthetic stand-ins for the paper's five benchmark
//! datasets ([`Dataset`]).
//!
//! # Examples
//!
//! ```
//! use gtv_data::Dataset;
//!
//! let table = Dataset::Adult.generate(100, 42);
//! assert_eq!(table.n_rows(), 100);
//! // Vertically split evenly between two clients.
//! let n = table.n_cols();
//! let left: Vec<usize> = (0..n / 2).collect();
//! let right: Vec<usize> = (n / 2..n).collect();
//! let shards = table.vertical_split(&[left, right]);
//! assert_eq!(shards.len(), 2);
//! ```

mod csv;
mod schema;
mod synth;
mod table;

pub use csv::{from_csv_string, infer_schema, read_csv, to_csv_string, write_csv, ParseCsvError};
pub use schema::{ColumnKind, ColumnMeta, Schema};
pub use synth::{Dataset, SynthColumn, SynthKind, SynthSpec};
pub use table::{ColumnData, Table};
