//! Column-oriented table with the row/column operations vertical federated
//! learning needs: seeded shuffling, vertical split/concat, stratified
//! sampling.

use crate::schema::{ColumnKind, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The data of a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Real values (used by continuous and mixed columns).
    Float(Vec<f64>),
    /// Category indices into the schema's category list.
    Cat(Vec<u32>),
}

impl ColumnData {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Float(v) => v.len(),
            ColumnData::Cat(v) => v.len(),
        }
    }

    /// True if the column holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Float view.
    ///
    /// # Panics
    ///
    /// Panics if the column is categorical.
    pub fn as_float(&self) -> &[f64] {
        match self {
            ColumnData::Float(v) => v,
            ColumnData::Cat(_) => panic!("column is categorical, not float"),
        }
    }

    /// Category-index view.
    ///
    /// # Panics
    ///
    /// Panics if the column is continuous.
    pub fn as_cat(&self) -> &[u32] {
        match self {
            ColumnData::Cat(v) => v,
            ColumnData::Float(_) => panic!("column is float, not categorical"),
        }
    }

    fn select(&self, idx: &[usize]) -> ColumnData {
        match self {
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i]).collect()),
            ColumnData::Cat(v) => ColumnData::Cat(idx.iter().map(|&i| v[i]).collect()),
        }
    }
}

/// An immutable-schema, column-oriented table.
///
/// # Examples
///
/// ```
/// use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema, Table};
///
/// let schema = Schema::new(
///     vec![
///         ColumnMeta::new("age", ColumnKind::Continuous),
///         ColumnMeta::new("gender", ColumnKind::categorical(["M", "F"])),
///     ],
///     None,
/// );
/// let table = Table::new(
///     schema,
///     vec![
///         ColumnData::Float(vec![31.0, 45.0]),
///         ColumnData::Cat(vec![0, 1]),
///     ],
/// );
/// assert_eq!(table.n_rows(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    n_rows: usize,
}

impl Table {
    /// Creates a table from a schema and matching columns.
    ///
    /// # Panics
    ///
    /// Panics if the column count or lengths disagree, if a categorical
    /// column's data is not [`ColumnData::Cat`], if a continuous/mixed
    /// column's data is not [`ColumnData::Float`], or if any category index
    /// is out of vocabulary.
    pub fn new(schema: Schema, columns: Vec<ColumnData>) -> Self {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let n_rows = columns.first().map_or(0, ColumnData::len);
        for (meta, col) in schema.columns().iter().zip(&columns) {
            assert_eq!(col.len(), n_rows, "column '{}' has wrong length", meta.name);
            match (&meta.kind, col) {
                (ColumnKind::Categorical { categories }, ColumnData::Cat(vals)) => {
                    let k = categories.len() as u32;
                    assert!(
                        vals.iter().all(|&v| v < k),
                        "column '{}' has out-of-vocabulary category index",
                        meta.name
                    );
                }
                (ColumnKind::Continuous | ColumnKind::Mixed { .. }, ColumnData::Float(_)) => {}
                _ => panic!("column '{}' data does not match its kind", meta.name),
            }
        }
        Self { schema, columns, n_rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Data of column `i`.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// Data of the column with the given name.
    pub fn column_by_name(&self, name: &str) -> Option<&ColumnData> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Target labels (category indices), if the schema declares a target.
    pub fn target_labels(&self) -> Option<&[u32]> {
        self.schema.target().map(|t| self.columns[t].as_cat())
    }

    /// Number of target classes, if the schema declares a target.
    pub fn n_target_classes(&self) -> Option<usize> {
        self.schema.target().and_then(|t| self.schema.column(t).kind.n_categories())
    }

    /// New table with the given rows (indices may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        assert!(indices.iter().all(|&i| i < self.n_rows), "row index out of bounds");
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.select(indices)).collect(),
            n_rows: indices.len(),
        }
    }

    /// New table restricted to the given columns (in the given order).
    pub fn select_columns(&self, indices: &[usize]) -> Table {
        Table {
            schema: self.schema.project(indices),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            n_rows: self.n_rows,
        }
    }

    /// The permutation that a seeded shuffle would apply: all parties using
    /// the same seed derive the same permutation — this is the shared-seed
    /// `Shuffle` of the GTV protocol.
    pub fn shuffle_permutation(n_rows: usize, seed: u64) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n_rows).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        perm.shuffle(&mut rng);
        perm
    }

    /// Returns the table with rows permuted by the shared-seed shuffle.
    pub fn shuffled(&self, seed: u64) -> Table {
        let perm = Self::shuffle_permutation(self.n_rows, seed);
        self.select_rows(&perm)
    }

    /// Vertically splits the table into column groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not form a partition of the column set.
    pub fn vertical_split(&self, groups: &[Vec<usize>]) -> Vec<Table> {
        let mut seen = vec![false; self.n_cols()];
        for g in groups {
            for &i in g {
                assert!(i < self.n_cols(), "column index {i} out of range");
                assert!(!seen[i], "column index {i} appears in two groups");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "groups must cover every column");
        groups.iter().map(|g| self.select_columns(g)).collect()
    }

    /// Horizontally concatenates tables with identical row counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty, row counts differ, or more than one part
    /// declares a target.
    pub fn hconcat(parts: &[&Table]) -> Table {
        assert!(!parts.is_empty(), "hconcat requires at least one part");
        let n_rows = parts[0].n_rows;
        assert!(parts.iter().all(|p| p.n_rows == n_rows), "hconcat: row count mismatch");
        let schemas: Vec<&Schema> = parts.iter().map(|p| &p.schema).collect();
        let schema = Schema::concat(&schemas);
        let columns = parts.iter().flat_map(|p| p.columns.iter().cloned()).collect();
        Table { schema, columns, n_rows }
    }

    /// Splits into `(train, test)` with `test_frac` of rows in the test set,
    /// stratified by the target column when one exists.
    pub fn train_test_split(&self, test_frac: f64, seed: u64) -> (Table, Table) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut test_idx: Vec<usize> = Vec::new();
        let mut train_idx: Vec<usize> = Vec::new();
        if let Some(labels) = self.target_labels() {
            let mut by_class: HashMap<u32, Vec<usize>> = HashMap::new();
            for (i, &l) in labels.iter().enumerate() {
                by_class.entry(l).or_default().push(i);
            }
            let mut classes: Vec<u32> = by_class.keys().copied().collect();
            classes.sort_unstable();
            for c in classes {
                let mut idx = by_class.remove(&c).unwrap();
                idx.shuffle(&mut rng);
                let n_test = ((idx.len() as f64) * test_frac).round() as usize;
                test_idx.extend_from_slice(&idx[..n_test]);
                train_idx.extend_from_slice(&idx[n_test..]);
            }
        } else {
            let mut idx: Vec<usize> = (0..self.n_rows).collect();
            idx.shuffle(&mut rng);
            let n_test = ((self.n_rows as f64) * test_frac).round() as usize;
            test_idx.extend_from_slice(&idx[..n_test]);
            train_idx.extend_from_slice(&idx[n_test..]);
        }
        train_idx.sort_unstable();
        test_idx.sort_unstable();
        (self.select_rows(&train_idx), self.select_rows(&test_idx))
    }

    /// Randomly samples `n` rows, stratified by the target when one exists
    /// (the paper samples 50 K rows of Covertype/Credit/Intrusion this way).
    ///
    /// # Panics
    ///
    /// Panics if `n > n_rows`.
    pub fn stratified_sample(&self, n: usize, seed: u64) -> Table {
        assert!(n <= self.n_rows, "cannot sample {n} rows from {}", self.n_rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let frac = n as f64 / self.n_rows as f64;
        let mut chosen: Vec<usize> = Vec::with_capacity(n);
        if let Some(labels) = self.target_labels() {
            let mut by_class: HashMap<u32, Vec<usize>> = HashMap::new();
            for (i, &l) in labels.iter().enumerate() {
                by_class.entry(l).or_default().push(i);
            }
            let mut classes: Vec<u32> = by_class.keys().copied().collect();
            classes.sort_unstable();
            for c in classes {
                let mut idx = by_class.remove(&c).unwrap();
                idx.shuffle(&mut rng);
                let k = ((idx.len() as f64) * frac).round().max(1.0) as usize;
                chosen.extend_from_slice(&idx[..k.min(idx.len())]);
            }
        } else {
            let mut idx: Vec<usize> = (0..self.n_rows).collect();
            idx.shuffle(&mut rng);
            chosen.extend_from_slice(&idx[..n]);
        }
        // Trim or top up to exactly n.
        chosen.shuffle(&mut rng);
        while chosen.len() < n {
            chosen.push(rng.gen_range(0..self.n_rows));
        }
        chosen.truncate(n);
        chosen.sort_unstable();
        self.select_rows(&chosen)
    }

    /// Empirical distribution of a categorical column (counts per category).
    ///
    /// # Panics
    ///
    /// Panics if column `i` is not categorical.
    pub fn category_counts(&self, i: usize) -> Vec<usize> {
        let k = self
            .schema
            .column(i)
            .kind
            .n_categories()
            .unwrap_or_else(|| panic!("column {i} is not categorical"));
        let mut counts = vec![0usize; k];
        for &v in self.columns[i].as_cat() {
            counts[v as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;

    fn demo_table() -> Table {
        let schema = Schema::new(
            vec![
                ColumnMeta::new("x", ColumnKind::Continuous),
                ColumnMeta::new("g", ColumnKind::categorical(["a", "b"])),
                ColumnMeta::new("y", ColumnKind::categorical(["n", "p"])),
            ],
            Some(2),
        );
        Table::new(
            schema,
            vec![
                ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
                ColumnData::Cat(vec![0, 1, 0, 1, 0, 1]),
                ColumnData::Cat(vec![0, 0, 0, 0, 1, 1]),
            ],
        )
    }

    #[test]
    fn construction_validates() {
        let t = demo_table();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.category_counts(2), vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "out-of-vocabulary")]
    fn rejects_bad_category_index() {
        let schema = Schema::new(vec![ColumnMeta::new("g", ColumnKind::categorical(["a"]))], None);
        let _ = Table::new(schema, vec![ColumnData::Cat(vec![1])]);
    }

    #[test]
    fn shuffle_same_seed_same_perm() {
        let t = demo_table();
        let a = t.shuffled(42);
        let b = t.shuffled(42);
        assert_eq!(a, b);
        let c = t.shuffled(43);
        assert_ne!(a, c);
        // Shuffle is a permutation: same multiset of values.
        let mut orig = t.column(0).as_float().to_vec();
        let mut shuf = a.column(0).as_float().to_vec();
        orig.sort_by(f64::total_cmp);
        shuf.sort_by(f64::total_cmp);
        assert_eq!(orig, shuf);
    }

    #[test]
    fn shuffle_keeps_rows_aligned_across_vertical_parts() {
        // The GTV invariant: shuffling two vertical shards with the same seed
        // keeps each row aligned to the same individual.
        let t = demo_table();
        let parts = t.vertical_split(&[vec![0], vec![1, 2]]);
        let a = parts[0].shuffled(7);
        let b = parts[1].shuffled(7);
        let joined = Table::hconcat(&[&a, &b]);
        let direct = t.shuffled(7);
        assert_eq!(joined, direct);
    }

    #[test]
    fn vertical_split_and_concat_roundtrip() {
        let t = demo_table();
        let parts = t.vertical_split(&[vec![0, 2], vec![1]]);
        assert_eq!(parts[0].n_cols(), 2);
        assert_eq!(parts[0].schema().target(), Some(1));
        let rejoined = Table::hconcat(&[&parts[0], &parts[1]]);
        assert_eq!(rejoined.n_cols(), 3);
        assert_eq!(rejoined.column_by_name("g"), t.column_by_name("g"));
    }

    #[test]
    #[should_panic(expected = "cover every column")]
    fn vertical_split_requires_partition() {
        let t = demo_table();
        let _ = t.vertical_split(&[vec![0]]);
    }

    #[test]
    fn stratified_split_preserves_class_ratio() {
        let t = demo_table();
        let (train, test) = t.train_test_split(0.5, 1);
        assert_eq!(train.n_rows() + test.n_rows(), 6);
        // Both splits should contain at least one positive.
        assert!(train.target_labels().unwrap().contains(&1));
        assert!(test.target_labels().unwrap().contains(&1));
    }

    #[test]
    fn stratified_sample_exact_size() {
        let t = demo_table();
        let s = t.stratified_sample(4, 3);
        assert_eq!(s.n_rows(), 4);
    }
}
