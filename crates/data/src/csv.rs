//! Minimal CSV serialization for [`Table`] (no external dependency).
//!
//! Values never contain commas or quotes in this workspace's datasets, so the
//! dialect is deliberately simple: comma separator, `\n` rows, first row is
//! the header. Categorical cells are written as their labels and re-encoded
//! against the schema vocabulary on read.

use crate::schema::{ColumnKind, Schema};
use crate::table::{ColumnData, Table};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Serializes a table to CSV text.
pub fn to_csv_string(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    let header: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in 0..table.n_rows() {
        for (ci, meta) in schema.columns().iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            match (&meta.kind, table.column(ci)) {
                (ColumnKind::Categorical { categories }, ColumnData::Cat(v)) => {
                    out.push_str(&categories[v[r] as usize]);
                }
                (_, ColumnData::Float(v)) => {
                    let _ = write!(out, "{}", v[r]);
                }
                _ => unreachable!("table invariants guarantee matching kinds"),
            }
        }
        out.push('\n');
    }
    out
}

/// Writes a table to a CSV file.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_csv_string(table))
}

/// Error from parsing CSV text against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number of the offending row (0 for structural errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csv parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCsvError {}

/// Parses CSV text into a table using the given schema.
///
/// # Errors
///
/// Returns [`ParseCsvError`] if the header does not match the schema, a row
/// has the wrong arity, a numeric cell fails to parse, or a categorical cell
/// is not in the schema's vocabulary.
pub fn from_csv_string(text: &str, schema: &Schema) -> Result<Table, ParseCsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseCsvError { line: 0, message: "empty input".into() })?;
    let names: Vec<&str> = header.split(',').collect();
    let expected: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
    if names != expected {
        return Err(ParseCsvError {
            line: 1,
            message: format!("header {names:?} does not match schema {expected:?}"),
        });
    }

    let mut columns: Vec<ColumnData> = schema
        .columns()
        .iter()
        .map(|c| match c.kind {
            ColumnKind::Categorical { .. } => ColumnData::Cat(Vec::new()),
            _ => ColumnData::Float(Vec::new()),
        })
        .collect();

    for (li, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.len() {
            return Err(ParseCsvError {
                line: li + 2,
                message: format!("expected {} cells, found {}", schema.len(), cells.len()),
            });
        }
        for (ci, cell) in cells.iter().enumerate() {
            match (&schema.column(ci).kind, &mut columns[ci]) {
                (ColumnKind::Categorical { categories }, ColumnData::Cat(v)) => {
                    let idx =
                        categories.iter().position(|c| c == cell).ok_or_else(|| ParseCsvError {
                            line: li + 2,
                            message: format!(
                                "unknown category '{cell}' in column '{}'",
                                schema.column(ci).name
                            ),
                        })?;
                    v.push(idx as u32);
                }
                (_, ColumnData::Float(v)) => {
                    let val: f64 = cell.parse().map_err(|_| ParseCsvError {
                        line: li + 2,
                        message: format!(
                            "invalid number '{cell}' in column '{}'",
                            schema.column(ci).name
                        ),
                    })?;
                    v.push(val);
                }
                _ => unreachable!(),
            }
        }
    }
    Ok(Table::new(schema.clone(), columns))
}

/// Infers a schema from CSV text: a column whose every cell parses as a
/// number becomes continuous — or [`ColumnKind::Mixed`] when one numeric
/// value accounts for ≥ 25% of the cells (a point mass, e.g. `Mortgage = 0`)
/// — and any other column becomes categorical with the observed vocabulary
/// (in first-appearance order). `target`, if given, names the target column
/// and forces it categorical.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on an empty input, ragged rows, an unknown
/// `target` name, or a non-categorical target.
pub fn infer_schema(text: &str, target: Option<&str>) -> Result<Schema, ParseCsvError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(ParseCsvError { line: 0, message: "empty input".into() })?;
    let names: Vec<&str> = header.split(',').collect();
    let n = names.len();
    let mut numeric = vec![true; n];
    let mut vocab: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut numeric_counts: Vec<std::collections::HashMap<String, usize>> =
        vec![std::collections::HashMap::new(); n];
    let mut rows = 0usize;
    for (li, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        rows += 1;
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != n {
            return Err(ParseCsvError {
                line: li + 2,
                message: format!("expected {n} cells, found {}", cells.len()),
            });
        }
        for (ci, cell) in cells.iter().enumerate() {
            if cell.parse::<f64>().is_err() {
                numeric[ci] = false;
            }
            if numeric[ci] {
                *numeric_counts[ci].entry((*cell).to_string()).or_insert(0) += 1;
            }
            if !vocab[ci].iter().any(|v| v == cell) {
                vocab[ci].push((*cell).to_string());
            }
        }
    }
    if rows == 0 {
        return Err(ParseCsvError { line: 0, message: "no data rows".into() });
    }
    let target_idx = match target {
        Some(t) => Some(names.iter().position(|&name| name == t).ok_or_else(|| ParseCsvError {
            line: 1,
            message: format!("unknown target column '{t}'"),
        })?),
        None => None,
    };
    let columns = names
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            let force_categorical = target_idx == Some(ci);
            let kind = if numeric[ci] && !force_categorical {
                let heaviest = numeric_counts[ci].iter().max_by_key(|(_, &c)| c);
                match heaviest {
                    Some((v, &c)) if c >= 3 && c * 4 >= rows && vocab[ci].len() > 1 => {
                        ColumnKind::Mixed {
                            special_values: vec![v
                                .parse::<f64>()
                                .expect("numeric column cell parses")],
                        }
                    }
                    _ => ColumnKind::Continuous,
                }
            } else {
                ColumnKind::Categorical { categories: vocab[ci].clone() }
            };
            crate::schema::ColumnMeta::new(*name, kind)
        })
        .collect();
    Ok(Schema::new(columns, target_idx))
}

/// Reads a CSV file into a table using the given schema.
///
/// # Errors
///
/// Returns an I/O error (wrapped) or a parse error as
/// [`io::Error`]`(InvalidData)`.
pub fn read_csv(path: impl AsRef<Path>, schema: &Schema) -> io::Result<Table> {
    let text = std::fs::read_to_string(path)?;
    from_csv_string(&text, schema).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;

    fn demo() -> Table {
        let schema = Schema::new(
            vec![
                ColumnMeta::new("v", ColumnKind::Continuous),
                ColumnMeta::new("g", ColumnKind::categorical(["a", "b"])),
            ],
            None,
        );
        Table::new(schema, vec![ColumnData::Float(vec![1.5, -2.0]), ColumnData::Cat(vec![1, 0])])
    }

    #[test]
    fn roundtrip() {
        let t = demo();
        let text = to_csv_string(&t);
        assert!(text.starts_with("v,g\n1.5,b\n"));
        let back = from_csv_string(&text, t.schema()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn infer_schema_detects_kinds() {
        let text = "age,grade,mortgage,label\n30,a,0,no\n40,b,120.5,yes\n50,a,0,no\n60,c,0,yes\n";
        let schema = infer_schema(text, Some("label")).unwrap();
        assert!(schema.column(0).kind.is_continuous());
        assert_eq!(schema.column(1).kind.n_categories(), Some(3));
        assert!(schema.column(2).kind.is_mixed(), "0 appears in 3/4 rows");
        assert_eq!(schema.target(), Some(3));
        // Round-trip parse with the inferred schema.
        let table = from_csv_string(text, &schema).unwrap();
        assert_eq!(table.n_rows(), 4);
        assert_eq!(table.column(2).as_float()[1], 120.5);
    }

    #[test]
    fn infer_schema_rejects_unknown_target() {
        let err = infer_schema("a\n1\n", Some("zzz")).unwrap_err();
        assert!(err.message.contains("unknown target"));
    }

    #[test]
    fn infer_schema_numeric_target_becomes_categorical() {
        let schema = infer_schema("x,y\n1.5,0\n2.5,1\n3.5,0\n", Some("y")).unwrap();
        assert_eq!(schema.column(1).kind.n_categories(), Some(2));
    }

    #[test]
    fn rejects_unknown_category() {
        let t = demo();
        let err = from_csv_string("v,g\n1.0,zzz\n", t.schema()).unwrap_err();
        assert!(err.message.contains("unknown category"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_bad_header_and_arity() {
        let t = demo();
        assert!(from_csv_string("x,y\n", t.schema()).is_err());
        assert!(from_csv_string("v,g\n1.0\n", t.schema()).is_err());
    }
}
