//! The worker pool's determinism contract, checked bit-for-bit: matmul,
//! elementwise kernels, reductions and gradients (including the WGAN-GP
//! double-backward shape) must produce identical bits for `GTV_THREADS`
//! ∈ {1, 2, 8}. The production dispatch thresholds would keep these small
//! proptest shapes inline, so every run lowers them (same values in every
//! test — the override is process-global) to force the multi-threaded runs
//! across the pool for real.

use gtv_tensor::{dispatch, pool, BinaryOp, Graph, Tensor, UnaryOp};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

/// Like [`tensor_strategy`] but ~70% exact zeros, steering matmul onto the
/// zero-skipping sparse kernel.
fn sparse_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec((-10.0f32..10.0, 0u8..10), rows * cols).prop_map(move |v| {
        let data = v.into_iter().map(|(x, keep)| if keep < 3 { x } else { 0.0 }).collect();
        Tensor::from_vec(rows, cols, data)
    })
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Runs `compute` once per thread count and asserts every run returns the
/// same bits as the single-threaded reference. Dispatch thresholds are
/// lowered (never restored — this binary's tests all want the same values,
/// and they run concurrently) so these shapes reach the worker pool.
fn assert_bit_identical(compute: impl Fn() -> Vec<u32>) {
    dispatch::set_par_mins(1_024, 1_024, 8_192);
    let mut reference: Option<Vec<u32>> = None;
    for &threads in &THREAD_COUNTS {
        pool::set_threads(threads);
        let got = compute();
        match &reference {
            None => reference = Some(got),
            Some(expected) => {
                assert_eq!(expected, &got, "results diverged at {threads} threads");
            }
        }
    }
    pool::set_threads(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dense_matmul_is_bit_identical_across_thread_counts(
        a in tensor_strategy(48, 40),
        b in tensor_strategy(40, 36)
    ) {
        assert_bit_identical(|| bits(&a.matmul(&b)));
    }

    #[test]
    fn sparse_matmul_is_bit_identical_across_thread_counts(
        a in sparse_strategy(48, 40),
        b in tensor_strategy(40, 36)
    ) {
        assert_bit_identical(|| bits(&a.matmul(&b)));
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_across_thread_counts(
        a in tensor_strategy(96, 96),
        b in tensor_strategy(96, 96)
    ) {
        assert_bit_identical(|| {
            let mut out = bits(&a.apply(UnaryOp::Tanh));
            out.extend(bits(&a.apply(UnaryOp::LeakyRelu(0.2))));
            out.extend(bits(&a.zip_op(&b, BinaryOp::Mul)));
            out.extend(bits(&a.zip_op(&b, BinaryOp::Add)));
            out
        });
    }

    #[test]
    fn reductions_are_bit_identical_across_thread_counts(a in tensor_strategy(132, 130)) {
        assert_bit_identical(|| {
            let mut out = vec![a.sum_all().item().to_bits(), a.frob_norm().to_bits()];
            out.extend(bits(&a.sum_rows()));
            out.extend(bits(&a.sum_cols()));
            out
        });
    }

    #[test]
    fn gradients_are_bit_identical_across_thread_counts(
        x0 in tensor_strategy(64, 32),
        w0 in tensor_strategy(32, 16)
    ) {
        assert_bit_identical(|| {
            let g = Graph::new();
            let x = g.leaf(x0.clone());
            let w = g.leaf(w0.clone());
            let h = g.tanh(g.matmul(x, w));
            let y = g.mean_all(g.mul(h, h));
            let grads = g.grad(y, &[x, w]);
            let mut out = bits(&g.value(grads[0]));
            out.extend(bits(&g.value(grads[1])));
            out
        });
    }

    #[test]
    fn double_backward_is_bit_identical_across_thread_counts(
        x0 in tensor_strategy(64, 32),
        w0 in tensor_strategy(32, 16)
    ) {
        // The WGAN-GP shape: a norm of a first-order gradient,
        // differentiated again with respect to the weights.
        assert_bit_identical(|| {
            let g = Graph::new();
            let x = g.leaf(x0.clone());
            let w = g.leaf(w0.clone());
            let act = g.tanh(g.matmul(x, w));
            let s = g.sum_all(act);
            let gx = g.grad(s, &[x])[0];
            let norm = g.l2_norm_rows(gx, 1e-12);
            let shifted = g.add_scalar(norm, -1.0);
            let pen = g.mean_all(g.mul(shifted, shifted));
            let dw = g.grad(pen, &[w])[0];
            bits(&g.value(dw))
        });
    }
}
