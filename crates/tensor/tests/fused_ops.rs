//! Fused-kernel contract: `Graph::affine_act` and `Graph::row_norm_eps`
//! must be *bit-identical* to the unfused primitive chains they replace —
//! forward, backward, and through the WGAN-GP double-backward path — for
//! every tested `GTV_THREADS` value. Gradients are additionally checked
//! against central finite differences.

use gtv_tensor::{dispatch, pool, FusedAct, Graph, Tensor, Var};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Lowers the size-keyed dispatch thresholds so these proptest shapes
/// genuinely cross the worker pool at `threads > 1` (the production
/// defaults would keep them inline). Same values in every test; never
/// restored, since the override is process-global and tests run
/// concurrently.
fn force_pool_dispatch() {
    dispatch::set_par_mins(1_024, 1_024, 8_192);
}

const ACTS: [FusedAct; 4] =
    [FusedAct::Relu, FusedAct::Tanh, FusedAct::Sigmoid, FusedAct::LeakyRelu(0.2)];

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The unfused reference: `act(x @ w + b)` from primitives.
fn unfused_affine(g: &Graph, x: Var, w: Var, b: Var, act: FusedAct) -> Var {
    let s = g.add(g.matmul(x, w), b);
    match act {
        FusedAct::Relu => g.relu(s),
        FusedAct::Tanh => g.tanh(s),
        FusedAct::Sigmoid => g.sigmoid(s),
        FusedAct::LeakyRelu(alpha) => g.leaky_relu(s, alpha),
    }
}

/// The unfused reference: `sqrt(Σ_cols x² + eps)` from primitives.
fn unfused_row_norm(g: &Graph, x: Var, eps: f32) -> Var {
    let sq = g.square(x);
    let s = g.sum_cols(sq);
    let s = g.add_scalar(s, eps);
    g.sqrt(s)
}

#[derive(Clone, Copy)]
enum Mode {
    Fused,
    Unfused,
}

/// Forward + gradient + double-backward bits of an `affine_act` tower, in
/// the gradient-penalty shape: differentiate a row norm of a first-order
/// input gradient with respect to the weights.
fn affine_tower_bits(x0: &Tensor, w0: &Tensor, b0: &Tensor, act: FusedAct, mode: Mode) -> Vec<u32> {
    let g = Graph::new();
    let x = g.leaf(x0.clone());
    let w = g.leaf(w0.clone());
    let b = g.leaf(b0.clone());
    let h = match mode {
        Mode::Fused => g.affine_act(x, w, b, act),
        Mode::Unfused => unfused_affine(&g, x, w, b, act),
    };
    let mut out = bits(&g.value(h));

    let y = g.mean_all(g.mul(h, h));
    let grads = g.grad(y, &[x, w, b]);
    for &gr in &grads {
        out.extend(bits(&g.value(gr)));
    }

    // Double backward, WGAN-GP shaped: ∂/∂w of (‖∂y/∂x‖_rows − 1)².
    let gx = grads[0];
    let norm = match mode {
        Mode::Fused => g.row_norm_eps(gx, 1e-12),
        Mode::Unfused => unfused_row_norm(&g, gx, 1e-12),
    };
    let shifted = g.add_scalar(norm, -1.0);
    let pen = g.mean_all(g.mul(shifted, shifted));
    let dw = g.grad(pen, &[w])[0];
    out.extend(bits(&g.value(dw)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn fused_affine_matches_unfused_bit_for_bit(
        x0 in tensor_strategy(48, 40),
        w0 in tensor_strategy(40, 24),
        b0 in tensor_strategy(1, 24)
    ) {
        force_pool_dispatch();
        for act in ACTS {
            let mut reference: Option<Vec<u32>> = None;
            for &threads in &THREAD_COUNTS {
                pool::set_threads(threads);
                let fused = affine_tower_bits(&x0, &w0, &b0, act, Mode::Fused);
                let unfused = affine_tower_bits(&x0, &w0, &b0, act, Mode::Unfused);
                assert_eq!(
                    fused, unfused,
                    "fused {act:?} diverged from unfused at {threads} threads"
                );
                match &reference {
                    None => reference = Some(fused),
                    Some(expected) => assert_eq!(
                        expected, &fused,
                        "fused {act:?} not thread-count invariant at {threads} threads"
                    ),
                }
            }
            pool::set_threads(1);
        }
    }

    #[test]
    fn fused_row_norm_matches_unfused_bit_for_bit(x0 in tensor_strategy(130, 34)) {
        force_pool_dispatch();
        let mut reference: Option<Vec<u32>> = None;
        for &threads in &THREAD_COUNTS {
            pool::set_threads(threads);
            let run = |fused: bool| {
                let g = Graph::new();
                let x = g.leaf(x0.clone());
                let norm = if fused {
                    g.row_norm_eps(x, 1e-12)
                } else {
                    unfused_row_norm(&g, x, 1e-12)
                };
                let y = g.sum_all(norm);
                let dx = g.grad(y, &[x])[0];
                let mut out = bits(&g.value(norm));
                out.extend(bits(&g.value(dx)));
                out
            };
            let fused = run(true);
            let unfused = run(false);
            assert_eq!(fused, unfused, "row norm diverged at {threads} threads");
            match &reference {
                None => reference = Some(fused),
                Some(expected) => assert_eq!(expected, &fused, "not invariant at {threads}"),
            }
        }
        pool::set_threads(1);
    }
}

/// Central finite-difference check of a scalar-valued builder's gradient.
fn check_grad(build: impl Fn(&Graph, Var) -> Var, x0: Tensor, tol: f32) {
    let g = Graph::new();
    let x = g.leaf(x0.clone());
    let y = build(&g, x);
    assert_eq!(g.shape(y), (1, 1), "builder must produce a scalar");
    let dx = g.grad(y, &[x])[0];
    let analytic = g.value(dx);

    let eps = 1e-3f32;
    for i in 0..x0.len() {
        let eval = |delta: f32| {
            let mut moved = x0.clone();
            moved.as_mut_slice()[i] += delta;
            let gd = Graph::new();
            let v = gd.leaf(moved);
            let y = build(&gd, v);
            gd.value(y).item()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        assert!(
            (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn fused_affine_gradients_match_finite_differences() {
    let w0 = Tensor::from_fn(3, 2, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
    let b0 = Tensor::row(&[0.05, -0.3]);
    for act in ACTS {
        let (w0, b0) = (w0.clone(), b0.clone());
        check_grad(
            move |g, x| {
                let w = g.leaf(w0.clone());
                let b = g.leaf(b0.clone());
                let h = g.affine_act(x, w, b, act);
                g.mean_all(g.mul(h, h))
            },
            Tensor::from_fn(4, 3, |r, c| 0.17 * (r as f32) - 0.23 * (c as f32) + 0.4),
            2e-2,
        );
    }
}

#[test]
fn fused_row_norm_gradient_matches_finite_differences() {
    check_grad(
        |g, x| {
            let n = g.row_norm_eps(x, 1e-6);
            g.sum_all(n)
        },
        Tensor::from_fn(3, 4, |r, c| 0.3 * (r as f32 + 1.0) + 0.11 * (c as f32) - 0.7),
        1e-2,
    );
}

#[test]
fn fused_affine_rejects_bad_shapes_and_zero_leaky_slope() {
    let g = Graph::new();
    let x = g.leaf(Tensor::zeros(2, 3));
    let w = g.leaf(Tensor::zeros(3, 2));
    let b = g.leaf(Tensor::zeros(1, 2));
    let bad_bias = g.leaf(Tensor::zeros(2, 2));
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        g.affine_act(x, w, bad_bias, FusedAct::Relu)
    }))
    .is_err());
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        g.affine_act(x, w, b, FusedAct::LeakyRelu(0.0))
    }))
    .is_err());
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        g.affine_act(w, x, b, FusedAct::Relu)
    }))
    .is_err());
    let ok = g.affine_act(x, w, b, FusedAct::LeakyRelu(0.2));
    assert_eq!(g.shape(ok), (2, 2));
}
