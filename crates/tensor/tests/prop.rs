//! Property-based tests for tensor algebra and autograd invariants.

use gtv_tensor::{Graph, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn add_commutes(a in tensor_strategy(3, 4), b in tensor_strategy(3, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates_approx(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(2, 3),
        c in tensor_strategy(2, 3)
    ) {
        let left = a.add(&b).add(&c);
        let right = a.add(&b.add(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(3, 2),
        c in tensor_strategy(3, 2)
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-2);
    }

    #[test]
    fn transpose_swaps_matmul(a in tensor_strategy(2, 3), b in tensor_strategy(3, 4)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-3);
    }

    #[test]
    fn slice_concat_roundtrip(a in tensor_strategy(3, 5), split in 1usize..5) {
        let left = a.slice_cols(0, split);
        let right = a.slice_cols(split, 5 - split);
        let back = Tensor::concat_cols(&[&left, &right]);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn pad_then_slice_is_identity(a in tensor_strategy(2, 3), start in 0usize..4) {
        let padded = a.pad_cols(start, 3 + start + 2);
        prop_assert_eq!(padded.slice_cols(start, 3), a);
    }

    #[test]
    fn sum_all_equals_sum_of_row_sums(a in tensor_strategy(4, 3)) {
        let direct = a.sum_all().item();
        let via_rows = a.sum_rows().sum_all().item();
        prop_assert!((direct - via_rows).abs() < 1e-3);
    }

    #[test]
    fn grad_of_linear_fn_is_constant_coeff(a in tensor_strategy(1, 4)) {
        // y = Σ cᵢ·xᵢ  ⇒  ∇y = c, independent of x.
        let coeffs = Tensor::row(&[2.0, -1.0, 0.5, 3.0]);
        let g = Graph::new();
        let x = g.leaf(a);
        let c = g.leaf(coeffs.clone());
        let y = g.sum_all(g.mul(x, c));
        let dx = g.grad(y, &[x])[0];
        prop_assert!(g.value(dx).max_abs_diff(&coeffs) < 1e-5);
    }

    #[test]
    fn grad_sum_matches_ones(a in tensor_strategy(3, 3)) {
        let g = Graph::new();
        let x = g.leaf(a);
        let y = g.sum_all(x);
        let dx = g.grad(y, &[x])[0];
        prop_assert_eq!(g.value(dx), Tensor::ones(3, 3));
    }

    #[test]
    fn softmax_rows_are_distributions(a in tensor_strategy(3, 4)) {
        let g = Graph::new();
        let x = g.leaf(a);
        let s = g.value(g.softmax_rows(x));
        for r in 0..3 {
            let row = s.row_slice(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
