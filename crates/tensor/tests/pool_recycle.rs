//! The recycling pool's correctness contract: tensors built from recycled
//! storage are bit-identical to tensors built from fresh allocations, for
//! every tested `GTV_THREADS` value, even when the pool is pre-seeded with
//! NaN-filled garbage. Plus the step-scope mechanics of `Graph::reset`:
//! non-leaf storage is parked, leaf storage is pinned, and repeated
//! identical steps stop allocating after the first.

use gtv_tensor::{pool, pool_mem, Graph, Tensor};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Parks NaN-filled buffers of assorted capacities so any kernel that read
/// stale recycled bytes would poison its output and fail the comparison.
fn dirty_pool() {
    for len in [7usize, 64, 576, 1296, 1440, 1600, 1728, 1920, 2048] {
        Tensor::full(1, len, f32::NAN).recycle();
    }
}

/// A mixed workload covering matmul (dense path), elementwise, reductions,
/// layout ops and a gradient, plus a second identical graph step after a
/// `Graph::reset` so the second step genuinely runs on recycled storage.
fn workload(a: &Tensor, b: &Tensor) -> Vec<u32> {
    let mut out = bits(&a.matmul(b));
    out.extend(bits(&a.apply(gtv_tensor::UnaryOp::Tanh)));
    out.extend(bits(&a.add(&a.transpose().transpose())));
    out.extend(bits(&a.sum_rows()));
    out.extend(bits(&a.sum_cols()));
    out.extend(bits(&Tensor::concat_cols(&[a, a]).slice_cols(3, 7)));

    let step = || {
        let g = Graph::new();
        let x = g.leaf(a.clone());
        let w = g.leaf(b.clone());
        let h = g.tanh(g.matmul(x, w));
        let y = g.mean_all(g.mul(h, h));
        let grads = g.grad(y, &[x, w]);
        let mut step_bits = bits(&g.value(grads[0]));
        step_bits.extend(bits(&g.value(grads[1])));
        g.reset();
        step_bits
    };
    let first = step();
    let second = step();
    assert_eq!(first, second, "a reset graph must reproduce the step bit for bit");
    out.extend(first);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn recycled_storage_is_bit_identical_to_fresh(
        a in tensor_strategy(48, 40),
        b in tensor_strategy(40, 36)
    ) {
        // Reference: recycling off, single thread — every buffer is fresh.
        pool::set_threads(1);
        pool_mem::set_enabled(false);
        let reference = workload(&a, &b);

        pool_mem::set_enabled(true);
        for &threads in &THREAD_COUNTS {
            pool::set_threads(threads);
            dirty_pool();
            let got = workload(&a, &b);
            assert_eq!(reference, got, "recycled result diverged from fresh at {threads} threads");
        }
        pool::set_threads(1);
        pool_mem::clear();
    }
}

/// Shapes below every parallel-dispatch threshold run inline on the calling
/// thread no matter what another test sets the worker count to, which makes
/// the thread-local counters exact.
#[test]
fn graph_reset_parks_non_leaf_storage_and_pins_leaves() {
    pool_mem::set_enabled(true);
    pool_mem::clear();
    pool_mem::reset_stats();

    let g = Graph::new();
    let a = g.leaf(Tensor::full(64, 1, 2.0));
    let c = g.add(a, a);
    let d = g.mul(c, a);
    assert_eq!(g.len(), 3);
    let released = g.reset();
    assert_eq!(released, 3, "reset reports every node it released");
    assert_eq!(g.len(), 0, "the arena must be empty after reset");

    // Two non-leaf nodes of 64 f32s each were parked; the leaf's 64 were
    // dropped, not parked. 2 × 64 × 4 bytes = 512. (64 elements is exactly
    // the recycling floor — anything smaller would bypass the pool.)
    assert_eq!(pool_mem::stats().bytes_held, 512, "only non-leaf storage may be recycled");
    let _ = (c, d);
    pool_mem::clear();
}

#[test]
fn identical_steps_stop_allocating_after_the_first() {
    pool_mem::set_enabled(true);
    pool_mem::clear();
    pool_mem::reset_stats();

    // Shapes chosen so the hot intermediates (17×13 activations, 5×13
    // gradient) sit above the recycling floor; sub-floor scalars are
    // counted as `small`, not misses, and don't disturb the plateau.
    let x0 = Tensor::from_fn(17, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 2.0);
    let w0 = Tensor::from_fn(5, 13, |r, c| (r * 13 + c) as f32 * 0.05);
    let step = || {
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let w = g.leaf(w0.clone());
        let h = g.leaky_relu(g.matmul(x, w), 0.2);
        let y = g.mean_all(g.mul(h, h));
        let dw = g.grad(y, &[w])[0];
        let out = g.value(dw).as_slice().to_vec();
        g.reset();
        out
    };

    let first = step();
    let after_first = pool_mem::stats();
    assert!(after_first.misses > 0, "a cold pool must allocate");

    let mut last_misses = after_first.misses;
    for round in 0..5 {
        let again = step();
        assert_eq!(first, again, "step must be reproducible (round {round})");
        let now = pool_mem::stats().misses;
        assert_eq!(
            now, last_misses,
            "a warm pool must serve every request from recycled storage (round {round})"
        );
        last_misses = now;
    }
    pool_mem::clear();
}

#[test]
fn disabled_recycling_counts_every_allocation() {
    pool_mem::set_enabled(false);
    pool_mem::reset_stats();
    let t = Tensor::zeros(9, 9);
    let u = t.add(&t);
    let s = pool_mem::stats();
    assert_eq!(s.hits, 0, "a disabled pool can never hit");
    assert!(s.misses >= 2, "both allocations must be counted: {s:?}");
    assert!(s.bytes_requested >= 2 * 81 * 4, "{s:?}");
    drop(u);
    pool_mem::set_enabled(true);
    pool_mem::clear();
}
