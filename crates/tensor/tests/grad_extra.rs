//! Additional autograd coverage: less-common ops, higher-order chains and
//! graph-shape behaviours not covered by the inline unit tests.

use gtv_tensor::{Graph, Tensor};

#[test]
fn pow_scalar_gradient() {
    // y = Σ x^3 ⇒ dy/dx = 3x².
    let g = Graph::new();
    let x = g.leaf(Tensor::row(&[1.0, 2.0, 3.0]));
    let y = g.sum_all(g.pow_scalar(x, 3.0));
    let dx = g.grad(y, &[x])[0];
    assert!(g.value(dx).max_abs_diff(&Tensor::row(&[3.0, 12.0, 27.0])) < 1e-4);
}

#[test]
fn mean_rows_gradient_is_uniform() {
    let g = Graph::new();
    let x = g.leaf(Tensor::ones(4, 3));
    let y = g.sum_all(g.mean_rows(x));
    let dx = g.grad(y, &[x])[0];
    assert!(g.value(dx).max_abs_diff(&Tensor::full(4, 3, 0.25)) < 1e-6);
}

#[test]
fn column_vector_broadcast_gradient() {
    // x (3×2) * c (3×1): dc must sum over the broadcast columns.
    let g = Graph::new();
    let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]));
    let c = g.leaf(Tensor::col(&[1.0, 1.0, 1.0]));
    let y = g.sum_all(g.mul(x, c));
    let dc = g.grad(y, &[c])[0];
    assert_eq!(g.value(dc), Tensor::col(&[3.0, 7.0, 11.0]));
}

#[test]
fn third_order_derivative() {
    // y = x⁵: y' = 5x⁴, y'' = 20x³, y''' = 60x² — three grad calls chain.
    let g = Graph::new();
    let x = g.leaf(Tensor::scalar(2.0));
    let x2 = g.mul(x, x);
    let x4 = g.mul(x2, x2);
    let y = g.mul(x4, x);
    let d1 = g.grad(y, &[x])[0];
    let d2 = g.grad(d1, &[x])[0];
    let d3 = g.grad(d2, &[x])[0];
    assert_eq!(g.value(d1).item(), 80.0);
    assert_eq!(g.value(d2).item(), 160.0);
    assert_eq!(g.value(d3).item(), 240.0);
}

#[test]
fn higher_order_through_division() {
    // y = 1/x: y' = -1/x², y'' = 2/x³ at x = 2 → -0.25, 0.25.
    let g = Graph::new();
    let x = g.leaf(Tensor::scalar(2.0));
    let one = g.leaf(Tensor::scalar(1.0));
    let y = g.div(one, x);
    let d1 = g.grad(y, &[x])[0];
    let d2 = g.grad(d1, &[x])[0];
    assert!((g.value(d1).item() + 0.25).abs() < 1e-6);
    assert!((g.value(d2).item() - 0.25).abs() < 1e-6);
}

#[test]
fn relu_second_derivative_is_zero() {
    // d²/dx² of relu(x)² = 2 for x > 0 through the product rule, but the
    // relu mask itself contributes no curvature: d²/dx² relu(x) = 0 a.e.
    let g = Graph::new();
    let x = g.leaf(Tensor::scalar(3.0));
    let y = g.relu(x);
    let d1 = g.grad(y, &[x])[0];
    let d2 = g.grad(d1, &[x])[0];
    assert_eq!(g.value(d1).item(), 1.0);
    assert_eq!(g.value(d2).item(), 0.0);
}

#[test]
fn grad_of_l2_norm_rows_is_unit_direction() {
    let g = Graph::new();
    let x = g.leaf(Tensor::from_rows(&[&[3.0, 4.0]]));
    let n = g.l2_norm_rows(x, 0.0); // = 5
    assert_eq!(g.value(n).item(), 5.0);
    let dx = g.grad(n, &[x])[0];
    assert!(g.value(dx).max_abs_diff(&Tensor::row(&[0.6, 0.8])) < 1e-5);
}

#[test]
fn graph_len_tracks_node_creation() {
    let g = Graph::new();
    assert!(g.is_empty());
    let a = g.leaf(Tensor::scalar(1.0));
    let b = g.leaf(Tensor::scalar(2.0));
    let _ = g.add(a, b);
    assert_eq!(g.len(), 3);
    // grad construction appends nodes rather than mutating.
    let y = g.mul(a, b);
    let before = g.len();
    let _ = g.grad(y, &[a, b]);
    assert!(g.len() > before);
}

#[test]
fn select_then_scatter_roundtrip_values() {
    let g = Graph::new();
    let x = g.leaf(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]));
    let sel = g.select_rows(x, &[2, 1, 0]);
    let back = g.scatter_rows(sel, &[2, 1, 0], 3);
    assert_eq!(g.value(back), g.value(x));
}

#[test]
fn detached_gradient_penalty_path_has_no_generator_grads() {
    // Mirrors the trainer: fake data detached before D ⇒ zero grads for the
    // "generator" parameter.
    let g = Graph::new();
    let w_g = g.leaf(Tensor::scalar(1.5)); // generator param
    let w_d = g.leaf(Tensor::scalar(0.5)); // discriminator param
    let fake = g.mul(w_g, w_g);
    let fake_detached = g.detach(fake);
    let score = g.mul(fake_detached, w_d);
    let grads = g.grad(score, &[w_g, w_d]);
    assert_eq!(g.value(grads[0]).item(), 0.0);
    assert_eq!(g.value(grads[1]).item(), 2.25);
}
