//! Satellite regression for the size-keyed dispatch layer (DESIGN.md §8):
//! with many workers configured, work below the parallel thresholds must
//! run inline on the calling thread — the worker pool is never touched.
//! This pins the fix for the negative thread-scaling seen in BENCH_tensor
//! (e.g. `reduction_sum_1m` at 0.56× with 2 threads): fan-out cost on
//! sub-threshold shapes used to *lose* time to the dispatch itself.
//!
//! The observable is [`pool::dispatch_count`], which counts only real
//! multi-chunk worker fan-outs. One test function, deliberately: the
//! counter and the thresholds are process-global, and this file being its
//! own test binary guarantees the production thresholds are in force for
//! the first phase.

use gtv_tensor::{dispatch, pool, Tensor, UnaryOp};

#[test]
fn sub_threshold_work_never_reaches_the_worker_pool() {
    pool::set_threads(8);

    // Phase 1 — production thresholds. Typical training-step shapes for
    // this codebase (hundreds-of-rows minibatches) sit far below the
    // elementwise/reduction minimums (4Mi elements) and the matmul minimum
    // (256Ki MACs): all of it must stay inline even with 8 workers.
    let a = Tensor::from_fn(96, 96, |r, c| (r as f32) * 0.25 - (c as f32) * 0.5);
    let b = Tensor::from_fn(96, 96, |r, c| (c as f32) * 0.125 - (r as f32) * 0.75);
    let x = Tensor::from_fn(48, 40, |r, c| (r as f32) * 0.1 + (c as f32) * 0.01);
    let w = Tensor::from_fn(40, 36, |r, c| (r as f32) * 0.02 - (c as f32) * 0.05);
    let before = pool::dispatch_count();
    let _ = a.apply(UnaryOp::Tanh);
    let _ = a.apply(UnaryOp::Sigmoid);
    let _ = a.sum_all();
    let _ = a.sum_rows();
    let _ = a.sum_cols();
    let _ = x.matmul(&w); // 48·40·36 = 69_120 MACs < 256Ki.
    assert_eq!(
        pool::dispatch_count(),
        before,
        "sub-threshold elementwise/reduction work must run inline"
    );

    // Phase 2 — lowered thresholds: the very same shapes must now fan out,
    // proving the counter actually observes pool crossings (the phase-1
    // assertion is meaningless if dispatches are invisible).
    dispatch::set_par_mins(1_024, 1_024, 8_192);
    let before = pool::dispatch_count();
    let _ = a.apply(UnaryOp::Tanh);
    assert!(pool::dispatch_count() > before, "supra-threshold unary must cross the pool");
    let before = pool::dispatch_count();
    let _ = a.sum_all();
    assert!(pool::dispatch_count() > before, "supra-threshold reduction must cross the pool");
    let before = pool::dispatch_count();
    let _ = a.matmul(&b);
    assert!(pool::dispatch_count() > before, "supra-threshold matmul must cross the pool");

    dispatch::reset_par_mins();
    pool::set_threads(1);
}
