//! Accuracy and bit-identity contract of the SIMD math layer (DESIGN.md §8).
//!
//! * **ULP sweeps** pin the rational tanh / sigmoid approximations to libm
//!   within the documented bounds ([`simd::TANH_MAX_ULP`] /
//!   [`simd::SIGMOID_MAX_ULP`]) across a dense sweep of [-20, 20] plus the
//!   IEEE edge inventory: ±0.0, subnormals, NaN, ±∞ and the clamp knees.
//! * **Bit-identity proptests** check that every vectorized kernel matches
//!   its scalar form exactly — tails, lane boundaries and all — for
//!   `GTV_THREADS` ∈ {1, 2, 8}. The scalar forms are defined as lane 0 of
//!   the splatted 8-lane kernel, so any divergence here means the lane
//!   model itself is broken, not just an accuracy drift.

use gtv_tensor::{dispatch, pool, simd, Tensor, UnaryOp};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Distance in units-in-the-last-place between two finite f32 values,
/// walking through the signed-magnitude integer lattice so values that
/// straddle zero still get a finite, monotone distance.
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn lattice(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits) as i64
        } else {
            bits as i64
        }
    }
    (lattice(a) - lattice(b)).unsigned_abs()
}

/// The edge inventory every kernel must survive: signed zeros, the
/// smallest subnormals, boundary normals, the clamp knees and non-finites.
fn edge_cases() -> Vec<f32> {
    let mut v = vec![
        0.0,
        -0.0,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::from_bits(1),           // smallest positive subnormal
        f32::from_bits(0x8000_0001), // smallest negative subnormal
        f32::from_bits(0x007f_ffff), // largest subnormal
        1e-20,
        -1e-20,
        3.9e-4, // just inside the tanh tiny-input pass-through
        4.1e-4, // just outside it
        7.9,    // just inside the tanh clamp
        8.0,    // just outside it
        -88.0,  // near the exp underflow knee
        88.7,   // near the exp overflow knee
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MAX,
        f32::MIN,
    ];
    for s in [1.0f32, -1.0] {
        v.extend((0..64).map(|i| s * (i as f32) * 0.317));
    }
    v
}

#[test]
fn tanh_stays_within_its_ulp_bound_of_libm() {
    let mut worst = 0u64;
    // 4M-point dense sweep of the interesting range.
    for i in 0..=4_000_000u32 {
        let x = -20.0 + (i as f32) * 1e-5;
        let got = simd::tanh(x);
        let want = x.tanh();
        let d = ulp_distance(got, want);
        worst = worst.max(d);
        assert!(
            d <= u64::from(simd::TANH_MAX_ULP),
            "tanh({x:e}) = {got:e}, libm {want:e}: {d} ULP > bound {}",
            simd::TANH_MAX_ULP
        );
    }
    assert!(worst > 0, "a zero-ULP sweep means the comparison is broken");
}

#[test]
fn sigmoid_stays_within_its_ulp_bound_of_libm() {
    for i in 0..=4_000_000u32 {
        let x = -20.0 + (i as f32) * 1e-5;
        let got = simd::sigmoid(x);
        let want = 1.0 / (1.0 + (-x).exp());
        let d = ulp_distance(got, want);
        assert!(
            d <= u64::from(simd::SIGMOID_MAX_ULP),
            "sigmoid({x:e}) = {got:e}, libm {want:e}: {d} ULP > bound {}",
            simd::SIGMOID_MAX_ULP
        );
    }
}

#[test]
fn edge_cases_match_libm_semantics() {
    for x in edge_cases() {
        let t = simd::tanh(x);
        let s = simd::sigmoid(x);
        let e = simd::exp(x);
        if x.is_nan() {
            assert!(t.is_nan() && s.is_nan() && e.is_nan(), "NaN must propagate");
            continue;
        }
        if x == f32::INFINITY {
            assert_eq!(t, 1.0);
            assert_eq!(s, 1.0);
            assert_eq!(e, f32::INFINITY);
            continue;
        }
        if x == f32::NEG_INFINITY {
            assert_eq!(t, -1.0);
            assert_eq!(s, 0.0);
            assert_eq!(e, 0.0);
            continue;
        }
        // Finite inputs: bounded ranges, the right signs, and tiny inputs
        // pass through tanh exactly (including signed zero).
        assert!((-1.0..=1.0).contains(&t), "tanh({x:e}) = {t:e} out of range");
        assert!((0.0..=1.0).contains(&s), "sigmoid({x:e}) = {s:e} out of range");
        assert!(e >= 0.0, "exp({x:e}) = {e:e} negative");
        if x.abs() < 4e-4 {
            assert_eq!(t.to_bits(), x.to_bits(), "tiny tanh inputs pass through exactly");
        }
        if x.abs() <= 20.0 {
            assert!(ulp_distance(t, x.tanh()) <= u64::from(simd::TANH_MAX_ULP), "tanh({x:e})");
            assert!(
                ulp_distance(s, 1.0 / (1.0 + (-x).exp())) <= u64::from(simd::SIGMOID_MAX_ULP),
                "sigmoid({x:e})"
            );
        }
    }
}

/// Scalar references for each vectorized unary kernel, built from the
/// public scalar entry points (lane 0 of the splatted kernel).
fn scalar_reference(op: UnaryOp, x: f32) -> f32 {
    match op {
        UnaryOp::Tanh => simd::tanh(x),
        UnaryOp::Sigmoid => simd::sigmoid(x),
        UnaryOp::Exp => simd::exp(x),
        UnaryOp::Relu => x.max(0.0),
        UnaryOp::LeakyRelu(alpha) => {
            if x >= 0.0 {
                x
            } else {
                alpha * x
            }
        }
        _ => unreachable!("not exercised here"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every SIMD unary kernel is bit-identical to its scalar form across
    /// lane boundaries, ragged tails (the 101-wide rows guarantee every
    /// tail residue mod 8 appears) and thread counts.
    #[test]
    fn simd_unary_kernels_match_scalar_reference_bit_for_bit(
        data in proptest::collection::vec(-30.0f32..30.0, 7 * 101)
    ) {
        dispatch::set_par_mins(1_024, 1_024, 8_192);
        let t = Tensor::from_vec(7, 101, data.clone());
        for op in [UnaryOp::Tanh, UnaryOp::Sigmoid, UnaryOp::Exp, UnaryOp::Relu, UnaryOp::LeakyRelu(0.2)] {
            let want: Vec<u32> =
                data.iter().map(|&x| scalar_reference(op, x).to_bits()).collect();
            for &threads in &THREAD_COUNTS {
                pool::set_threads(threads);
                let got: Vec<u32> =
                    t.apply(op).as_slice().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &want, &got,
                    "{:?} diverged from its scalar form at {} threads", op, threads
                );
            }
        }
        pool::set_threads(1);
    }

    /// The SIMD reductions (fixed lane-combine order + sequential tail)
    /// are pure functions of the input slice: same bits at every thread
    /// count, and `dot(x, x) == sum_squares(x)` bitwise.
    #[test]
    fn simd_reductions_are_thread_invariant(
        data in proptest::collection::vec(-10.0f32..10.0, 5 * 103)
    ) {
        dispatch::set_par_mins(1_024, 1_024, 8_192);
        let t = Tensor::from_vec(5, 103, data.clone());
        prop_assert_eq!(
            simd::dot(&data, &data).to_bits(),
            simd::sum_squares(&data).to_bits(),
            "dot(x, x) and sum_squares(x) share one lane-combine order"
        );
        let mut reference: Option<(u32, u32)> = None;
        for &threads in &THREAD_COUNTS {
            pool::set_threads(threads);
            let got = (t.sum_all().item().to_bits(), t.frob_norm().to_bits());
            match &reference {
                None => reference = Some(got),
                Some(expected) => prop_assert_eq!(*expected, got, "at {} threads", threads),
            }
        }
        pool::set_threads(1);
    }
}

/// Vectorized tails: `simd::sum` over every length 0..=40 must equal the
/// same fixed-order reduction computed by hand (8-lane groups in order,
/// lane-combine `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, then a sequential
/// tail) — pinned so a future "optimization" can't silently reassociate.
#[test]
fn sum_lane_combine_order_is_pinned() {
    let data: Vec<f32> = (0..40).map(|i| ((i * 37 % 17) as f32) * 0.37 - 2.0).collect();
    for len in 0..=data.len() {
        let s = &data[..len];
        let mut lanes = [0.0f32; 8];
        let mut chunks = s.chunks_exact(8);
        for ch in &mut chunks {
            for (l, &v) in lanes.iter_mut().zip(ch) {
                *l += v;
            }
        }
        let mut want = ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]));
        for &v in chunks.remainder() {
            want += v;
        }
        assert_eq!(simd::sum(s).to_bits(), want.to_bits(), "len {len}");
    }
}
