//! Deterministic worker pool for the tensor hot loops.
//!
//! The pool is the **only** sanctioned source of data parallelism on the
//! training path (the L2 determinism lint rejects ad-hoc `thread::spawn`
//! elsewhere). Its contract, documented in DESIGN.md §8:
//!
//! * **Fixed partitioning** — chunk boundaries are a function of problem
//!   size only, never of the worker count. `set_threads` changes how many
//!   chunks run concurrently, not what any chunk computes.
//! * **Deterministic stitching** — chunk results are placed by chunk index,
//!   so the assembled output is independent of completion order.
//! * **Inline fallback** — with one thread (or a tiny problem) the very same
//!   chunked computation runs on the calling thread, which is what makes
//!   `GTV_THREADS=1` bit-identical to `GTV_THREADS=N`.
//!
//! Jobs must be leaf computations: a job must never submit further work to
//! the pool, otherwise it could wait on a slot occupied by itself.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on configurable workers; keeps a typo'd `GTV_THREADS` from
/// spawning thousands of threads.
const MAX_THREADS: usize = 256;

struct PoolState {
    threads: usize,
    job_tx: Option<Sender<Job>>,
}

struct Pool {
    state: Mutex<PoolState>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// Number of multi-chunk fan-outs actually handed to worker threads.
/// Incremented only when jobs cross the pool boundary — inline fallbacks
/// and single-chunk dispatches never touch it — so tests can assert that
/// sub-threshold work stayed on the calling thread.
static DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Total worker fan-outs since process start (monotonic). The determinism
/// contract makes this observable only as scheduling telemetry: *where*
/// chunks ran, never what they computed.
pub fn dispatch_count() -> u64 {
    DISPATCHES.load(Ordering::Relaxed)
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState { threads: default_threads(), job_tx: None }),
    })
}

/// Worker count used when `set_threads` has not been called: `GTV_THREADS`
/// if set and parseable, otherwise the machine's available parallelism.
fn default_threads() -> usize {
    let configured = std::env::var("GTV_THREADS").ok().and_then(|v| v.parse::<usize>().ok());
    let fallback =
        || std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    configured.unwrap_or_else(fallback).clamp(1, MAX_THREADS)
}

/// Sets the worker count. `1` disables the pool (all work runs inline on
/// the calling thread); results are bit-identical either way. Existing
/// workers wind down once their queue drains; new workers are spawned
/// lazily on the next parallel dispatch.
pub fn set_threads(n: usize) {
    let n = n.clamp(1, MAX_THREADS);
    let mut state = pool().state.lock();
    if state.threads != n {
        state.threads = n;
        // Dropping the sender disconnects the queue; idle workers observe
        // it and exit. In-flight jobs still complete (dispatchers hold a
        // sender clone for the duration of a dispatch).
        state.job_tx = None;
    }
}

/// Current worker count (the determinism contract makes this value
/// unobservable in computed results).
pub fn threads() -> usize {
    pool().state.lock().threads
}

/// Resolves a configuration-level thread request: `0` means "auto" — the
/// `GTV_THREADS` environment variable if set, otherwise the host's
/// available parallelism. Non-zero requests are clamped to the pool's
/// supported range.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested.clamp(1, MAX_THREADS)
    }
}

fn spawn_worker(index: usize, rx: Receiver<Job>) {
    let spawned = std::thread::Builder::new().name(format!("gtv-pool-{index}")).spawn(move || {
        while let Ok(job) = rx.recv() {
            job();
        }
    });
    // Thread exhaustion is not a correctness problem: dispatch falls back
    // to inline execution when sends fail, so a failed spawn only costs
    // parallelism.
    drop(spawned);
}

/// Returns a live job sender, spawning workers on first use. `None` means
/// single-threaded mode: the caller should run inline.
fn job_sender() -> Option<Sender<Job>> {
    let mut state = pool().state.lock();
    if state.threads <= 1 {
        return None;
    }
    if state.job_tx.is_none() {
        let (tx, rx) = unbounded::<Job>();
        for i in 0..state.threads {
            spawn_worker(i, rx.clone());
        }
        drop(rx);
        state.job_tx = Some(tx);
    }
    state.job_tx.clone()
}

/// Runs `task(chunk_index)` for every chunk in `0..n_chunks` and returns
/// the results ordered by chunk index.
///
/// The caller decides the chunking; this function only decides *where*
/// each chunk runs. With one worker (or one chunk) everything runs inline
/// on the calling thread in index order — same arithmetic, same results.
/// Panics inside a chunk propagate to the caller.
pub(crate) fn run_chunks<R, F>(n_chunks: usize, task: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    if n_chunks == 0 {
        return Vec::new();
    }
    let Some(job_tx) = job_sender() else {
        return (0..n_chunks).map(task).collect();
    };
    if n_chunks == 1 {
        return vec![task(0)];
    }
    DISPATCHES.fetch_add(1, Ordering::Relaxed);

    type ChunkResult<R> = (usize, std::thread::Result<R>);
    let task = Arc::new(task);
    let (res_tx, res_rx) = unbounded::<ChunkResult<R>>();
    for i in 0..n_chunks {
        let task = Arc::clone(&task);
        let res_tx = res_tx.clone();
        let job: Job = Box::new(move || {
            let out = std::panic::catch_unwind(AssertUnwindSafe(|| task(i)));
            // A send can only fail after the dispatcher has given up on
            // the dispatch, which it never does before collecting.
            drop(res_tx.send((i, out)));
        });
        if let Err(returned) = job_tx.send(job) {
            // The pool was resized mid-dispatch and every worker exited;
            // run the returned job inline so no chunk is lost.
            (returned.0)();
        }
    }
    drop(res_tx);

    let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    for _ in 0..n_chunks {
        match res_rx.recv() {
            Ok((i, Ok(value))) => slots[i] = Some(value),
            Ok((_, Err(panic))) => std::panic::resume_unwind(panic),
            // All result senders gone with chunks missing (a worker died
            // outside the catch): finish the stragglers inline below.
            Err(_) => break,
        }
    }
    slots.into_iter().enumerate().map(|(i, slot)| slot.unwrap_or_else(|| task(i))).collect()
}

/// Public ordered fan-out: runs `task(i)` for every `i in 0..n` on the
/// pool and returns the results **in index order**, independent of worker
/// count and completion order (the same contract the tensor kernels rely
/// on). This is the sanctioned entry point for non-kernel subsystems —
/// e.g. the VFL transport's parallel message encoding — whose work items
/// are already independent. With one worker everything runs inline on the
/// calling thread; panics inside a task propagate to the caller.
pub fn run_ordered<R, F>(n: usize, task: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(usize) -> R + Send + Sync + 'static,
{
    run_chunks(n, task)
}

#[cfg(test)]
mod tests {
    use super::*;

    // `set_threads` mutates process-global state; serialize the tests
    // that exercise it so they cannot interleave resizes.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn chunk_results_arrive_in_index_order() {
        let _guard = serial();
        set_threads(4);
        let out = run_chunks(16, |i| i * 10);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
        set_threads(1);
        let inline = run_chunks(16, |i| i * 10);
        assert_eq!(out, inline);
    }

    #[test]
    fn resize_is_idempotent_and_clamped() {
        let _guard = serial();
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(1);
    }

    #[test]
    fn worker_panic_propagates_to_the_dispatcher() {
        let _guard = serial();
        set_threads(2);
        let caught = std::panic::catch_unwind(|| {
            run_chunks(4, |i| {
                assert!(i != 2, "chunk 2 exploded");
                i
            })
        });
        assert!(caught.is_err(), "a panicking chunk must fail the dispatch");
        set_threads(1);
    }
}
