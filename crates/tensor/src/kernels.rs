//! Blocked compute kernels behind [`crate::Tensor`]'s hot loops.
//!
//! Every kernel follows the determinism contract from DESIGN.md §8:
//!
//! * chunk boundaries are derived from the problem size only — never from
//!   the worker count — and the single-threaded path executes the *same*
//!   chunked computation inline;
//! * reductions combine chunk partials in a fixed pairwise tree, so the
//!   rounding of a sum depends on the data's length, not on scheduling;
//! * kernel selection (dense vs. zero-skipping matmul) is data-dependent
//!   but thread-count independent.
//!
//! Together these make results bit-identical for any `GTV_THREADS` value.

use std::sync::Arc;

use crate::pool;
use crate::pool_mem;

/// Output rows per matmul chunk.
const ROW_BLOCK: usize = 16;
/// Elements per elementwise chunk.
const ELEM_BLOCK: usize = 8_192;
/// Elements per reduction leaf; also the row-block budget for row/column
/// sums (`rows_per_chunk = REDUCE_BLOCK / cols`).
const REDUCE_BLOCK: usize = 4_096;
/// Minimum multiply-accumulate count before a matmul is worth dispatching
/// to the pool.
const MATMUL_PAR_MIN: usize = 32_768;
/// Minimum element count before a reduction is worth dispatching.
const REDUCE_PAR_MIN: usize = 16_384;

/// Elementwise unary kernels. An enum (rather than a closure) so the op is
/// `Copy + Send` and can cross the worker-pool boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `e^x`
    Exp,
    /// `ln x`
    Ln,
    /// `√x`
    Sqrt,
    /// `tanh x`
    Tanh,
    /// `1 / (1 + e^-x)`
    Sigmoid,
    /// `max(x, 0)`
    Relu,
    /// `x` for `x ≥ 0`, else `αx`
    LeakyRelu(f32),
    /// `cx`
    MulScalar(f32),
    /// `x + c`
    AddScalar(f32),
    /// `x^p`
    PowScalar(f32),
    /// Subgradient mask of [`UnaryOp::Relu`]: `1` for `x > 0`, else `0`.
    ReluMask,
    /// Subgradient mask of [`UnaryOp::LeakyRelu`]: `1` for `x ≥ 0`, else `α`.
    LeakyReluMask(f32),
}

impl UnaryOp {
    /// Applies the op to one element.
    #[inline]
    pub fn eval(self, v: f32) -> f32 {
        match self {
            UnaryOp::Neg => -v,
            UnaryOp::Exp => v.exp(),
            UnaryOp::Ln => v.ln(),
            UnaryOp::Sqrt => v.sqrt(),
            UnaryOp::Tanh => v.tanh(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-v).exp()),
            UnaryOp::Relu => v.max(0.0),
            UnaryOp::LeakyRelu(alpha) => {
                if v >= 0.0 {
                    v
                } else {
                    alpha * v
                }
            }
            UnaryOp::MulScalar(c) => v * c,
            UnaryOp::AddScalar(c) => v + c,
            UnaryOp::PowScalar(p) => v.powf(p),
            UnaryOp::ReluMask => {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::LeakyReluMask(alpha) => {
                if v >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
        }
    }
}

/// Activation applied by the fused affine kernel ([`affine_act`]).
///
/// A separate enum (rather than reusing [`UnaryOp`]) so only activations —
/// not masks or scalar ops — can be fused behind a `matmul + bias`, and so
/// the backward pass can match on exactly these four cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedAct {
    /// `max(x, 0)`
    Relu,
    /// `tanh x`
    Tanh,
    /// `1 / (1 + e^-x)`
    Sigmoid,
    /// `x` for `x ≥ 0`, else `αx`. The graph layer requires `α > 0` so the
    /// backward mask can be recovered from the fused *output* sign.
    LeakyRelu(f32),
}

impl FusedAct {
    /// The elementwise kernel this activation fuses. The fused path
    /// evaluates the *same* [`UnaryOp::eval`] arithmetic, which is what
    /// makes fused and unfused results bit-identical.
    #[inline]
    pub(crate) fn unary(self) -> UnaryOp {
        match self {
            FusedAct::Relu => UnaryOp::Relu,
            FusedAct::Tanh => UnaryOp::Tanh,
            FusedAct::Sigmoid => UnaryOp::Sigmoid,
            FusedAct::LeakyRelu(alpha) => UnaryOp::LeakyRelu(alpha),
        }
    }
}

/// Elementwise binary kernels (same-shape fast path of `zip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

impl BinaryOp {
    /// Applies the op to one element pair.
    #[inline]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
        }
    }
}

/// Splits `0..len` into `ELEM_BLOCK`-sized ranges (last one ragged).
fn elem_chunks(len: usize) -> usize {
    len.div_ceil(ELEM_BLOCK)
}

/// Elementwise unary map. Chunked over the pool for large inputs; each
/// element's value never depends on its chunk, so any execution order is
/// bitwise identical.
pub(crate) fn unary(data: &[f32], op: UnaryOp) -> Vec<f32> {
    let len = data.len();
    if pool::threads() == 1 || len <= ELEM_BLOCK {
        let mut out = pool_mem::take(len);
        out.extend(data.iter().map(|&v| op.eval(v)));
        return out;
    }
    let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
    let chunks = pool::run_chunks(elem_chunks(len), move |i| {
        let lo = i * ELEM_BLOCK;
        let hi = (lo + ELEM_BLOCK).min(len);
        let mut out = pool_mem::take(hi - lo);
        out.extend(shared[lo..hi].iter().map(|&v| op.eval(v)));
        out
    });
    stitch(chunks, len)
}

/// Elementwise binary map over equal-length buffers.
pub(crate) fn binary(a: &[f32], b: &[f32], op: BinaryOp) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    if pool::threads() == 1 || len <= ELEM_BLOCK {
        let mut out = pool_mem::take(len);
        out.extend(a.iter().zip(b).map(|(&x, &y)| op.eval(x, y)));
        return out;
    }
    let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
    let b: Arc<Vec<f32>> = Arc::new(b.to_vec());
    let chunks = pool::run_chunks(elem_chunks(len), move |i| {
        let lo = i * ELEM_BLOCK;
        let hi = (lo + ELEM_BLOCK).min(len);
        let mut out = pool_mem::take(hi - lo);
        out.extend(a[lo..hi].iter().zip(&b[lo..hi]).map(|(&x, &y)| op.eval(x, y)));
        out
    });
    stitch(chunks, len)
}

/// Concatenates chunk outputs in index order; each drained chunk buffer is
/// parked back in the recycling pool.
fn stitch(chunks: Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut out = pool_mem::take(len);
    for chunk in chunks {
        out.extend_from_slice(&chunk);
        pool_mem::give(chunk);
    }
    out
}

/// Folds partials pairwise in a fixed-shape tree: `((p0+p1)+(p2+p3))+…`.
/// The shape depends only on `partials.len()`, which depends only on the
/// input length — never on scheduling.
fn tree_fold(mut partials: Vec<f32>) -> f32 {
    if partials.is_empty() {
        return 0.0;
    }
    while partials.len() > 1 {
        partials = partials
            .chunks(2)
            .map(|pair| if pair.len() == 2 { pair[0] + pair[1] } else { pair[0] })
            .collect();
    }
    partials[0]
}

/// Chunked deterministic reduction: sequential leaf sums over
/// `REDUCE_BLOCK`-element chunks, combined by [`tree_fold`]. `leaf` must be
/// a pure function of its slice.
fn reduce(data: &[f32], leaf: fn(&[f32]) -> f32) -> f32 {
    let len = data.len();
    if len == 0 {
        return 0.0;
    }
    let n_chunks = len.div_ceil(REDUCE_BLOCK);
    let bounds = move |i: usize| (i * REDUCE_BLOCK, ((i + 1) * REDUCE_BLOCK).min(len));
    let partials: Vec<f32> = if pool::threads() == 1 || len < REDUCE_PAR_MIN {
        (0..n_chunks)
            .map(|i| {
                let (lo, hi) = bounds(i);
                leaf(&data[lo..hi])
            })
            .collect()
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        pool::run_chunks(n_chunks, move |i| {
            let (lo, hi) = bounds(i);
            leaf(&shared[lo..hi])
        })
    };
    tree_fold(partials)
}

fn leaf_sum(chunk: &[f32]) -> f32 {
    chunk.iter().sum()
}

fn leaf_sum_squares(chunk: &[f32]) -> f32 {
    chunk.iter().map(|v| v * v).sum()
}

/// Deterministic sum of all elements.
pub(crate) fn sum(data: &[f32]) -> f32 {
    reduce(data, leaf_sum)
}

/// Deterministic sum of squares (Frobenius norm before the square root).
pub(crate) fn sum_squares(data: &[f32]) -> f32 {
    reduce(data, leaf_sum_squares)
}

/// Row blocks used by the row/column-sum reductions: enough rows per chunk
/// to cover roughly `REDUCE_BLOCK` elements.
fn rows_per_chunk(cols: usize) -> usize {
    (REDUCE_BLOCK / cols.max(1)).max(1)
}

/// Column sums of a row-major `rows×cols` buffer → `cols` values.
/// Rows are accumulated sequentially inside fixed row blocks; block
/// partial vectors combine in a fixed pairwise tree.
pub(crate) fn col_sums(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        return pool_mem::take_zeroed(cols);
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut acc = pool_mem::take_zeroed(cols);
        for r in lo..hi {
            for (a, v) in acc.iter_mut().zip(&data[r * cols..(r + 1) * cols]) {
                *a += v;
            }
        }
        acc
    };
    let mut partials: Vec<Vec<f32>> = if pool::threads() == 1 || data.len() < REDUCE_PAR_MIN {
        (0..n_chunks).map(|i| accumulate(i, data)).collect()
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        pool::run_chunks(n_chunks, move |i| accumulate(i, &shared))
    };
    while partials.len() > 1 {
        partials = partials
            .chunks_mut(2)
            .map(|pair| {
                let mut merged = std::mem::take(&mut pair[0]);
                if pair.len() == 2 {
                    for (a, b) in merged.iter_mut().zip(pair[1].iter()) {
                        *a += *b;
                    }
                    pool_mem::give(std::mem::take(&mut pair[1]));
                }
                merged
            })
            .collect();
    }
    partials.swap_remove(0)
}

/// Row sums of a row-major `rows×cols` buffer → `rows` values. Each row is
/// summed sequentially (rows are short on the training path); row blocks
/// run on the pool when the buffer is large.
pub(crate) fn row_sums(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        return pool_mem::take_zeroed(rows);
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut out = pool_mem::take(hi - lo);
        out.extend((lo..hi).map(|r| leaf_sum(&data[r * cols..(r + 1) * cols])));
        out
    };
    if pool::threads() == 1 || data.len() < REDUCE_PAR_MIN {
        let chunks: Vec<Vec<f32>> = (0..n_chunks).map(|i| accumulate(i, data)).collect();
        stitch(chunks, rows)
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        let chunks = pool::run_chunks(n_chunks, move |i| accumulate(i, &shared));
        stitch(chunks, rows)
    }
}

/// Dot product with eight independent accumulator lanes (auto-vectorizes)
/// combined in a fixed shape, so the result is a pure function of the
/// operands.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut xi = x.chunks_exact(8);
    let mut yi = y.chunks_exact(8);
    for (xc, yc) in (&mut xi).zip(&mut yi) {
        for l in 0..8 {
            acc[l] += xc[l] * yc[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in xi.remainder().iter().zip(yi.remainder()) {
        tail += xv * yv;
    }
    let head = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    head + tail
}

/// Packs the RHS into its transpose so the dot kernel streams both
/// operands contiguously.
fn pack_transpose(b: &[f32], k: usize, m: usize) -> Vec<f32> {
    let mut bt = pool_mem::take_zeroed(b.len());
    for p in 0..k {
        for j in 0..m {
            bt[j * k + p] = b[p * m + j];
        }
    }
    bt
}

/// Dense matmul kernel for output rows `r0..r1`: packed-transpose dot
/// products, no term skipped — full IEEE NaN/Inf propagation.
fn dense_rows(a: &[f32], bt: &[f32], k: usize, m: usize, r0: usize, r1: usize) -> Vec<f32> {
    let mut out = pool_mem::take((r1 - r0) * m);
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..m {
            out.push(dot(a_row, &bt[j * k..(j + 1) * k]));
        }
    }
    out
}

/// Zero-skipping axpy kernel for output rows `r0..r1`. Only valid when the
/// RHS is entirely finite: then every skipped term is an exact `±0.0` and
/// skipping cannot change the result (see [`matmul`]).
fn sparse_rows(a: &[f32], b: &[f32], k: usize, m: usize, r0: usize, r1: usize) -> Vec<f32> {
    let mut out = pool_mem::take_zeroed((r1 - r0) * m);
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[(i - r0) * m..(i - r0 + 1) * m];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in out_row.iter_mut().zip(&b[p * m..(p + 1) * m]) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Matrix product of row-major `n×k` and `k×m` buffers.
///
/// Kernel choice is data-dependent but thread-count independent: mostly-zero
/// LHS against a finite RHS (one-hot and mask matrices are everywhere on the
/// encode path) takes the zero-skipping kernel; everything else — including
/// any non-finite RHS, so `0·NaN`/`0·∞` still poison the output as IEEE
/// demands — takes the packed dense kernel. Work is split over fixed
/// `ROW_BLOCK`-row output chunks and stitched in chunk order.
pub(crate) fn matmul(n: usize, k: usize, m: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let rhs_finite = b.iter().all(|v| v.is_finite());
    let zeros = a.iter().filter(|&&v| v == 0.0).count();
    let sparse = rhs_finite && !a.is_empty() && 2 * zeros >= a.len();

    let n_chunks = n.div_ceil(ROW_BLOCK);
    let bounds = move |i: usize| (i * ROW_BLOCK, ((i + 1) * ROW_BLOCK).min(n));
    let parallel = pool::threads() > 1 && n_chunks > 1 && n * k * m >= MATMUL_PAR_MIN;

    let chunks: Vec<Vec<f32>> = if sparse {
        if parallel {
            let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
            let b: Arc<Vec<f32>> = Arc::new(b.to_vec());
            pool::run_chunks(n_chunks, move |i| {
                let (r0, r1) = bounds(i);
                sparse_rows(&a, &b, k, m, r0, r1)
            })
        } else {
            (0..n_chunks)
                .map(|i| {
                    let (r0, r1) = bounds(i);
                    sparse_rows(a, b, k, m, r0, r1)
                })
                .collect()
        }
    } else {
        let bt = pack_transpose(b, k, m);
        if parallel {
            let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
            let bt: Arc<Vec<f32>> = Arc::new(bt);
            pool::run_chunks(n_chunks, move |i| {
                let (r0, r1) = bounds(i);
                dense_rows(&a, &bt, k, m, r0, r1)
            })
        } else {
            let chunks = (0..n_chunks)
                .map(|i| {
                    let (r0, r1) = bounds(i);
                    dense_rows(a, &bt, k, m, r0, r1)
                })
                .collect();
            pool_mem::give(bt);
            chunks
        }
    };
    stitch(chunks, n * m)
}

/// Fused affine + activation: `act(x @ w + bias)` for a row-major `n×k`
/// LHS, `k×m` weights and a length-`m` bias row, in one pass over the
/// matmul output block.
///
/// Bit-identity with the unfused composition is by construction: the
/// matmul is the *same* kernel, and the bias add + activation evaluate
/// exactly the arithmetic the broadcasting `add` and elementwise
/// [`UnaryOp::eval`] would — `act.eval(xw[r·m + c] + bias[c])` per element,
/// which is order-independent and therefore thread-count independent.
pub(crate) fn affine_act(
    n: usize,
    k: usize,
    m: usize,
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    act: FusedAct,
) -> Vec<f32> {
    debug_assert_eq!(bias.len(), m);
    let mut out = matmul(n, k, m, x, w);
    let op = act.unary();
    for (i, v) in out.iter_mut().enumerate() {
        *v = op.eval(*v + bias[i % m]);
    }
    out
}

/// Fused row norm with floor: `sqrt(Σ_cols x² + eps)` per row of a
/// row-major `rows×cols` buffer, in one pass per row.
///
/// Matches the unfused `square → row sums → + eps → sqrt` chain bit for
/// bit: the unfused row sum runs [`leaf_sum`] sequentially over a whole
/// row of stored `v·v` products (rows are never split across chunks), and
/// [`leaf_sum_squares`] performs that identical left-to-right fold on the
/// fly. Row blocks run on the worker pool for large buffers with the same
/// chunking as [`row_sums`].
pub(crate) fn row_norm_eps(data: &[f32], rows: usize, cols: usize, eps: f32) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        // Empty rows sum to 0, so every norm is √eps — same as unfused.
        return pool_mem::take_filled(rows, eps.sqrt());
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut out = pool_mem::take(hi - lo);
        out.extend(
            (lo..hi).map(|r| (leaf_sum_squares(&data[r * cols..(r + 1) * cols]) + eps).sqrt()),
        );
        out
    };
    if pool::threads() == 1 || data.len() < REDUCE_PAR_MIN {
        let chunks: Vec<Vec<f32>> = (0..n_chunks).map(|i| accumulate(i, data)).collect();
        stitch(chunks, rows)
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        let chunks = pool::run_chunks(n_chunks, move |i| accumulate(i, &shared));
        stitch(chunks, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_on_integers() {
        let x: Vec<f32> = (1..=19).map(|v| v as f32).collect();
        let y: Vec<f32> = (1..=19).map(|v| (v * 2) as f32).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(dot(&x, &y), naive);
    }

    #[test]
    fn tree_fold_is_exact_on_integers() {
        let data: Vec<f32> = (0..10_000).map(|v| (v % 7) as f32).collect();
        let expected: f32 = data.iter().sum();
        assert_eq!(sum(&data), expected);
    }

    #[test]
    fn sparse_and_dense_kernels_agree_on_exact_inputs() {
        // One-hot LHS: integer arithmetic, both kernels must agree exactly.
        let (n, k, m) = (6, 5, 4);
        let a: Vec<f32> = (0..n * k).map(|i| if i % 5 == i / 5 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f32> = (0..k * m).map(|i| (i as f32) - 7.0).collect();
        let bt = pack_transpose(&b, k, m);
        assert_eq!(sparse_rows(&a, &b, k, m, 0, n), dense_rows(&a, &bt, k, m, 0, n));
    }
}
