//! Blocked compute kernels behind [`crate::Tensor`]'s hot loops.
//!
//! Every kernel follows the determinism contract from DESIGN.md §8:
//!
//! * chunk boundaries are derived from the problem size only — never from
//!   the worker count — and the single-threaded path executes the *same*
//!   chunked computation inline;
//! * reductions combine chunk partials in a fixed pairwise tree, so the
//!   rounding of a sum depends on the data's length, not on scheduling;
//! * kernel selection (dense vs. zero-skipping matmul) is data-dependent
//!   but thread-count independent;
//! * inline-vs-pool dispatch keys on the problem size alone, against the
//!   thresholds in [`crate::dispatch`], and both sides run the *same*
//!   chunked computation.
//!
//! Together these make results bit-identical for any `GTV_THREADS` value.
//!
//! The inner loops live in [`crate::simd`]: f32x8 lane kernels for the
//! transcendentals, elementwise maps, and fixed-shape reductions. This
//! module owns chunking, dispatch, and buffer plumbing only.

use std::sync::Arc;

use crate::dispatch;
use crate::pool;
use crate::pool_mem;
use crate::simd;

/// Output rows per matmul chunk.
const ROW_BLOCK: usize = 16;
/// Elements per elementwise chunk (a multiple of [`simd::LANES`], so chunk
/// cuts land on lane-group boundaries).
const ELEM_BLOCK: usize = 8_192;
/// Elements per reduction leaf; also the row-block budget for row/column
/// sums (`rows_per_chunk = REDUCE_BLOCK / cols`). A multiple of
/// [`simd::LANES`].
const REDUCE_BLOCK: usize = 4_096;

/// Elementwise unary kernels. An enum (rather than a closure) so the op is
/// `Copy + Send` and can cross the worker-pool boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `e^x`
    Exp,
    /// `ln x`
    Ln,
    /// `√x`
    Sqrt,
    /// `tanh x`
    Tanh,
    /// `1 / (1 + e^-x)`
    Sigmoid,
    /// `max(x, 0)`
    Relu,
    /// `x` for `x ≥ 0`, else `αx`
    LeakyRelu(f32),
    /// `cx`
    MulScalar(f32),
    /// `x + c`
    AddScalar(f32),
    /// `x^p`
    PowScalar(f32),
    /// Subgradient mask of [`UnaryOp::Relu`]: `1` for `x > 0`, else `0`.
    ReluMask,
    /// Subgradient mask of [`UnaryOp::LeakyRelu`]: `1` for `x ≥ 0`, else `α`.
    LeakyReluMask(f32),
    /// Derivative of tanh from its *output*: `1 - y²`.
    TanhGrad,
    /// Derivative of sigmoid from its *output*: `y·(1 - y)`.
    SigmoidGrad,
}

impl UnaryOp {
    /// Applies the op to one element. The transcendentals route through the
    /// [`crate::simd`] scalar forms (lane 0 of the eight-lane kernel on a
    /// splat), so scalar and vector evaluation agree bit for bit.
    #[inline]
    pub fn eval(self, v: f32) -> f32 {
        match self {
            UnaryOp::Neg => -v,
            UnaryOp::Exp => simd::exp(v),
            UnaryOp::Ln => v.ln(),
            UnaryOp::Sqrt => v.sqrt(),
            UnaryOp::Tanh => simd::tanh(v),
            UnaryOp::Sigmoid => simd::sigmoid(v),
            UnaryOp::Relu => v.max(0.0),
            UnaryOp::LeakyRelu(alpha) => {
                if v >= 0.0 {
                    v
                } else {
                    alpha * v
                }
            }
            UnaryOp::MulScalar(c) => v * c,
            UnaryOp::AddScalar(c) => v + c,
            UnaryOp::PowScalar(p) => v.powf(p),
            UnaryOp::ReluMask => {
                if v > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            UnaryOp::LeakyReluMask(alpha) => {
                if v >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            UnaryOp::TanhGrad => 1.0 - v * v,
            UnaryOp::SigmoidGrad => v * (1.0 - v),
        }
    }

    /// Applies the op across a slice, appending to `out`. Ops with a lane
    /// kernel run eight-wide through [`simd::map_slice`]; the rest fall back
    /// to a scalar loop over [`UnaryOp::eval`]. Either way element `i` of
    /// the result depends on `src[i]` alone, so the caller may cut `src`
    /// into chunks at any boundary without changing a single output bit.
    #[inline]
    pub(crate) fn apply_slice(self, src: &[f32], out: &mut Vec<f32>) {
        match self {
            UnaryOp::Tanh => simd::map_slice(src, out, simd::tanh8),
            UnaryOp::Sigmoid => simd::map_slice(src, out, simd::sigmoid8),
            UnaryOp::Exp => simd::map_slice(src, out, simd::exp8),
            UnaryOp::Relu => simd::map_slice(src, out, simd::relu8),
            UnaryOp::LeakyRelu(alpha) => simd::map_slice(src, out, |x| simd::leaky_relu8(x, alpha)),
            UnaryOp::TanhGrad => simd::map_slice(src, out, simd::tanh_grad8),
            UnaryOp::SigmoidGrad => simd::map_slice(src, out, simd::sigmoid_grad8),
            _ => out.extend(src.iter().map(|&v| self.eval(v))),
        }
    }
}

/// Activation applied by the fused affine kernel ([`affine_act`]).
///
/// A separate enum (rather than reusing [`UnaryOp`]) so only activations —
/// not masks or scalar ops — can be fused behind a `matmul + bias`, and so
/// the backward pass can match on exactly these four cases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FusedAct {
    /// `max(x, 0)`
    Relu,
    /// `tanh x`
    Tanh,
    /// `1 / (1 + e^-x)`
    Sigmoid,
    /// `x` for `x ≥ 0`, else `αx`. The graph layer requires `α > 0` so the
    /// backward mask can be recovered from the fused *output* sign.
    LeakyRelu(f32),
}

/// Elementwise binary kernels (same-shape fast path of `zip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
}

impl BinaryOp {
    /// Applies the op to one element pair.
    #[inline]
    pub fn eval(self, a: f32, b: f32) -> f32 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
        }
    }
}

/// Splits `0..len` into `ELEM_BLOCK`-sized ranges (last one ragged).
fn elem_chunks(len: usize) -> usize {
    len.div_ceil(ELEM_BLOCK)
}

/// Elementwise unary map. Sub-threshold inputs run inline (no pool handoff
/// — the parallel path's input snapshot and closure dispatch cost more than
/// small ops themselves); larger inputs are chunked over the pool. Each
/// element's value never depends on its chunk, so any execution order is
/// bitwise identical.
pub(crate) fn unary(data: &[f32], op: UnaryOp) -> Vec<f32> {
    let len = data.len();
    if pool::threads() == 1 || len < dispatch::elem_par_min() {
        let mut out = pool_mem::take(len);
        op.apply_slice(data, &mut out);
        return out;
    }
    let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
    let chunks = pool::run_chunks(elem_chunks(len), move |i| {
        let lo = i * ELEM_BLOCK;
        let hi = (lo + ELEM_BLOCK).min(len);
        let mut out = pool_mem::take(hi - lo);
        op.apply_slice(&shared[lo..hi], &mut out);
        out
    });
    stitch(chunks, len)
}

/// Applies a binary op across equal-length slices through the eight-lane
/// [`simd::zip_slice`] kernel. Lanewise pure, so chunk cuts are
/// unobservable — the same argument as [`UnaryOp::apply_slice`].
#[inline]
fn zip_op(a: &[f32], b: &[f32], out: &mut Vec<f32>, op: BinaryOp) {
    match op {
        BinaryOp::Add => simd::zip_slice(a, b, out, |x, y| x.add(y)),
        BinaryOp::Sub => simd::zip_slice(a, b, out, |x, y| x.sub(y)),
        BinaryOp::Mul => simd::zip_slice(a, b, out, |x, y| x.mul(y)),
        BinaryOp::Div => simd::zip_slice(a, b, out, |x, y| x.div(y)),
    }
}

/// Elementwise binary map over equal-length buffers; same dispatch rule as
/// [`unary`].
pub(crate) fn binary(a: &[f32], b: &[f32], op: BinaryOp) -> Vec<f32> {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    if pool::threads() == 1 || len < dispatch::elem_par_min() {
        let mut out = pool_mem::take(len);
        zip_op(a, b, &mut out, op);
        return out;
    }
    let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
    let b: Arc<Vec<f32>> = Arc::new(b.to_vec());
    let chunks = pool::run_chunks(elem_chunks(len), move |i| {
        let lo = i * ELEM_BLOCK;
        let hi = (lo + ELEM_BLOCK).min(len);
        let mut out = pool_mem::take(hi - lo);
        zip_op(&a[lo..hi], &b[lo..hi], &mut out, op);
        out
    });
    stitch(chunks, len)
}

/// Concatenates chunk outputs in index order; each drained chunk buffer is
/// parked back in the recycling pool.
fn stitch(chunks: Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut out = pool_mem::take(len);
    for chunk in chunks {
        out.extend_from_slice(&chunk);
        pool_mem::give(chunk);
    }
    out
}

/// Folds partials pairwise in a fixed-shape tree: `((p0+p1)+(p2+p3))+…`.
/// The shape depends only on `partials.len()`, which depends only on the
/// input length — never on scheduling.
fn tree_fold(mut partials: Vec<f32>) -> f32 {
    if partials.is_empty() {
        return 0.0;
    }
    while partials.len() > 1 {
        partials = partials
            .chunks(2)
            .map(|pair| if pair.len() == 2 { pair[0] + pair[1] } else { pair[0] })
            .collect();
    }
    partials[0]
}

/// Chunked deterministic reduction: sequential leaf sums over
/// `REDUCE_BLOCK`-element chunks, combined by [`tree_fold`]. `leaf` must be
/// a pure function of its slice.
fn reduce(data: &[f32], leaf: fn(&[f32]) -> f32) -> f32 {
    let len = data.len();
    if len == 0 {
        return 0.0;
    }
    let n_chunks = len.div_ceil(REDUCE_BLOCK);
    let bounds = move |i: usize| (i * REDUCE_BLOCK, ((i + 1) * REDUCE_BLOCK).min(len));
    let partials: Vec<f32> = if pool::threads() == 1 || len < dispatch::reduce_par_min() {
        (0..n_chunks)
            .map(|i| {
                let (lo, hi) = bounds(i);
                leaf(&data[lo..hi])
            })
            .collect()
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        pool::run_chunks(n_chunks, move |i| {
            let (lo, hi) = bounds(i);
            leaf(&shared[lo..hi])
        })
    };
    tree_fold(partials)
}

fn leaf_sum(chunk: &[f32]) -> f32 {
    simd::sum(chunk)
}

fn leaf_sum_squares(chunk: &[f32]) -> f32 {
    simd::sum_squares(chunk)
}

/// Deterministic sum of all elements.
pub(crate) fn sum(data: &[f32]) -> f32 {
    reduce(data, leaf_sum)
}

/// Deterministic sum of squares (Frobenius norm before the square root).
pub(crate) fn sum_squares(data: &[f32]) -> f32 {
    reduce(data, leaf_sum_squares)
}

/// Row blocks used by the row/column-sum reductions: enough rows per chunk
/// to cover roughly `REDUCE_BLOCK` elements.
fn rows_per_chunk(cols: usize) -> usize {
    (REDUCE_BLOCK / cols.max(1)).max(1)
}

/// Column sums of a row-major `rows×cols` buffer → `cols` values.
/// Rows are accumulated sequentially inside fixed row blocks; block
/// partial vectors combine in a fixed pairwise tree.
pub(crate) fn col_sums(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        return pool_mem::take_zeroed(cols);
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut acc = pool_mem::take_zeroed(cols);
        for r in lo..hi {
            for (a, v) in acc.iter_mut().zip(&data[r * cols..(r + 1) * cols]) {
                *a += v;
            }
        }
        acc
    };
    let mut partials: Vec<Vec<f32>> =
        if pool::threads() == 1 || data.len() < dispatch::reduce_par_min() {
            (0..n_chunks).map(|i| accumulate(i, data)).collect()
        } else {
            let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
            pool::run_chunks(n_chunks, move |i| accumulate(i, &shared))
        };
    while partials.len() > 1 {
        partials = partials
            .chunks_mut(2)
            .map(|pair| {
                let mut merged = std::mem::take(&mut pair[0]);
                if pair.len() == 2 {
                    for (a, b) in merged.iter_mut().zip(pair[1].iter()) {
                        *a += *b;
                    }
                    pool_mem::give(std::mem::take(&mut pair[1]));
                }
                merged
            })
            .collect();
    }
    partials.swap_remove(0)
}

/// Row sums of a row-major `rows×cols` buffer → `rows` values. Each row is
/// summed sequentially (rows are short on the training path); row blocks
/// run on the pool when the buffer is large.
pub(crate) fn row_sums(data: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        return pool_mem::take_zeroed(rows);
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut out = pool_mem::take(hi - lo);
        out.extend((lo..hi).map(|r| leaf_sum(&data[r * cols..(r + 1) * cols])));
        out
    };
    if pool::threads() == 1 || data.len() < dispatch::reduce_par_min() {
        let chunks: Vec<Vec<f32>> = (0..n_chunks).map(|i| accumulate(i, data)).collect();
        stitch(chunks, rows)
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        let chunks = pool::run_chunks(n_chunks, move |i| accumulate(i, &shared));
        stitch(chunks, rows)
    }
}

/// Packs the RHS into its transpose so the dot kernel streams both
/// operands contiguously.
fn pack_transpose(b: &[f32], k: usize, m: usize) -> Vec<f32> {
    let mut bt = pool_mem::take_zeroed(b.len());
    for p in 0..k {
        for j in 0..m {
            bt[j * k + p] = b[p * m + j];
        }
    }
    bt
}

/// Zero-skipping axpy kernel for output rows `r0..r1`. Only valid when the
/// RHS is entirely finite: then every skipped term is an exact `±0.0` and
/// skipping cannot change the result (see [`matmul`]).
///
/// Each row independently takes the zero-skipping kernel (`sparse[i]`) or the
/// packed-transpose dot kernel; `bt` holds the packed transpose whenever at
/// least one row in the whole product is dense (and may be empty otherwise).
#[allow(clippy::too_many_arguments)] // hot-loop kernel: slices + strides, a struct would obscure it
fn mixed_rows(
    a: &[f32],
    b: &[f32],
    bt: &[f32],
    sparse: &[bool],
    k: usize,
    m: usize,
    r0: usize,
    r1: usize,
) -> Vec<f32> {
    let mut out = pool_mem::take_zeroed((r1 - r0) * m);
    for i in r0..r1 {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[(i - r0) * m..(i - r0 + 1) * m];
        if sparse[i] {
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in out_row.iter_mut().zip(&b[p * m..(p + 1) * m]) {
                    *o += av * bv;
                }
            }
        } else {
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = simd::dot(a_row, &bt[j * k..(j + 1) * k]);
            }
        }
    }
    out
}

/// Matrix product of row-major `n×k` and `k×m` buffers.
///
/// Kernel choice is **per output row** and thread-count independent: a row
/// that is mostly zero against a finite RHS (one-hot and mask rows are
/// everywhere on the encode path) takes the zero-skipping kernel; everything
/// else — including every row of any product with a non-finite RHS, so
/// `0·NaN`/`0·∞` still poison the output as IEEE demands — takes the packed
/// dense kernel. Deciding per row rather than per matrix makes every output
/// row a pure function of that row and the RHS: the other rows sharing the
/// batch cannot flip its kernel (and with it the accumulation order), which
/// is what lets the serving engine coalesce and split request batches
/// without perturbing any row's bits (DESIGN.md §14). Work is split over
/// fixed `ROW_BLOCK`-row output chunks and stitched in chunk order.
pub(crate) fn matmul(n: usize, k: usize, m: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let rhs_finite = b.iter().all(|v| v.is_finite());
    let row_sparse: Vec<bool> = (0..n)
        .map(|i| {
            if !rhs_finite || k == 0 {
                return false;
            }
            let row = &a[i * k..(i + 1) * k];
            2 * row.iter().filter(|&&v| v == 0.0).count() >= k
        })
        .collect();
    let any_dense = row_sparse.iter().any(|&s| !s);
    let bt = if any_dense { pack_transpose(b, k, m) } else { pool_mem::take(0) };

    let n_chunks = n.div_ceil(ROW_BLOCK);
    let bounds = move |i: usize| (i * ROW_BLOCK, ((i + 1) * ROW_BLOCK).min(n));
    let parallel = pool::threads() > 1 && n_chunks > 1 && n * k * m >= dispatch::matmul_par_min();

    let chunks: Vec<Vec<f32>> = if parallel {
        let a: Arc<Vec<f32>> = Arc::new(a.to_vec());
        let b: Arc<Vec<f32>> = Arc::new(b.to_vec());
        let bt: Arc<Vec<f32>> = Arc::new(bt);
        let flags: Arc<Vec<bool>> = Arc::new(row_sparse);
        pool::run_chunks(n_chunks, move |i| {
            let (r0, r1) = bounds(i);
            mixed_rows(&a, &b, &bt, &flags, k, m, r0, r1)
        })
    } else {
        let chunks = (0..n_chunks)
            .map(|i| {
                let (r0, r1) = bounds(i);
                mixed_rows(a, b, &bt, &row_sparse, k, m, r0, r1)
            })
            .collect();
        pool_mem::give(bt);
        chunks
    };
    stitch(chunks, n * m)
}

/// Fused affine + activation: `act(x @ w + bias)` for a row-major `n×k`
/// LHS, `k×m` weights and a length-`m` bias row, in one pass over the
/// matmul output block.
///
/// Bit-identity with the unfused composition is by construction: the
/// matmul is the *same* kernel, and the per-row [`simd::bias_act_row`] pass
/// evaluates exactly the arithmetic the broadcasting `add` and elementwise
/// [`UnaryOp::apply_slice`] would — `act(xw[r·m + c] + bias[c])` per
/// element through the same lanewise-pure kernel, so neither the row-major
/// lane grouping nor the thread count is observable in the output bits.
pub(crate) fn affine_act(
    n: usize,
    k: usize,
    m: usize,
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    act: FusedAct,
) -> Vec<f32> {
    debug_assert_eq!(bias.len(), m);
    let mut out = matmul(n, k, m, x, w);
    if m > 0 {
        match act {
            FusedAct::Relu => bias_act_rows(&mut out, m, bias, simd::relu8),
            FusedAct::Tanh => bias_act_rows(&mut out, m, bias, simd::tanh8),
            FusedAct::Sigmoid => bias_act_rows(&mut out, m, bias, simd::sigmoid8),
            FusedAct::LeakyRelu(alpha) => {
                bias_act_rows(&mut out, m, bias, move |v| simd::leaky_relu8(v, alpha))
            }
        }
    }
    out
}

/// Runs the fused bias + activation lane kernel over every `m`-column row
/// of the matmul output (`m > 0`, checked by the caller).
#[inline]
fn bias_act_rows(
    out: &mut [f32],
    m: usize,
    bias: &[f32],
    f8: impl Fn(simd::F32x8) -> simd::F32x8 + Copy,
) {
    for row in out.chunks_exact_mut(m) {
        simd::bias_act_row(row, bias, f8);
    }
}

/// Fused row norm with floor: `sqrt(Σ_cols x² + eps)` per row of a
/// row-major `rows×cols` buffer, in one pass per row.
///
/// Matches the unfused `square → row sums → + eps → sqrt` chain bit for
/// bit: the unfused row sum runs [`leaf_sum`] sequentially over a whole
/// row of stored `v·v` products (rows are never split across chunks), and
/// [`leaf_sum_squares`] performs that identical left-to-right fold on the
/// fly. Row blocks run on the worker pool for large buffers with the same
/// chunking as [`row_sums`].
pub(crate) fn row_norm_eps(data: &[f32], rows: usize, cols: usize, eps: f32) -> Vec<f32> {
    if rows == 0 || cols == 0 {
        // Empty rows sum to 0, so every norm is √eps — same as unfused.
        return pool_mem::take_filled(rows, eps.sqrt());
    }
    let block = rows_per_chunk(cols);
    let n_chunks = rows.div_ceil(block);
    let accumulate = move |i: usize, data: &[f32]| {
        let lo = i * block;
        let hi = ((i + 1) * block).min(rows);
        let mut out = pool_mem::take(hi - lo);
        out.extend(
            (lo..hi).map(|r| (leaf_sum_squares(&data[r * cols..(r + 1) * cols]) + eps).sqrt()),
        );
        out
    };
    if pool::threads() == 1 || data.len() < dispatch::reduce_par_min() {
        let chunks: Vec<Vec<f32>> = (0..n_chunks).map(|i| accumulate(i, data)).collect();
        stitch(chunks, rows)
    } else {
        let shared: Arc<Vec<f32>> = Arc::new(data.to_vec());
        let chunks = pool::run_chunks(n_chunks, move |i| accumulate(i, &shared));
        stitch(chunks, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_on_integers() {
        let x: Vec<f32> = (1..=19).map(|v| v as f32).collect();
        let y: Vec<f32> = (1..=19).map(|v| (v * 2) as f32).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(simd::dot(&x, &y), naive);
    }

    #[test]
    fn tree_fold_is_exact_on_integers() {
        let data: Vec<f32> = (0..10_000).map(|v| (v % 7) as f32).collect();
        let expected: f32 = data.iter().sum();
        assert_eq!(sum(&data), expected);
    }

    #[test]
    fn sparse_and_dense_kernels_agree_on_exact_inputs() {
        // One-hot LHS: integer arithmetic, both kernels must agree exactly.
        let (n, k, m) = (6, 5, 4);
        let a: Vec<f32> = (0..n * k).map(|i| if i % 5 == i / 5 { 1.0 } else { 0.0 }).collect();
        let b: Vec<f32> = (0..k * m).map(|i| (i as f32) - 7.0).collect();
        let bt = pack_transpose(&b, k, m);
        let sparse = mixed_rows(&a, &b, &bt, &vec![true; n], k, m, 0, n);
        let dense = mixed_rows(&a, &b, &bt, &vec![false; n], k, m, 0, n);
        assert_eq!(sparse, dense);
    }

    #[test]
    fn matmul_rows_are_batch_invariant() {
        // Any row of a product must be bit-identical to the same row
        // computed solo, whatever mix of dense and sparse rows shares the
        // batch — the serving engine's coalescing contract.
        let k = 33;
        let m = 9;
        let b: Vec<f32> = (0..k * m).map(|i| ((i * 37 % 101) as f32) * 0.137 - 6.0).collect();
        // Row 0: dense-ish; row 1: mostly zero; row 2: exactly half zero.
        let rows: Vec<Vec<f32>> = vec![
            (0..k).map(|i| ((i * 13 % 17) as f32) * 0.31 - 2.0).collect(),
            (0..k).map(|i| if i == 4 { 1.5 } else { 0.0 }).collect(),
            (0..k).map(|i| if i % 2 == 0 { 0.0 } else { 0.7 }).collect(),
        ];
        let batched: Vec<f32> = matmul(3, k, m, &rows.concat(), &b);
        for (r, row) in rows.iter().enumerate() {
            let solo = matmul(1, k, m, row, &b);
            assert_eq!(&batched[r * m..(r + 1) * m], &solo[..], "row {r} depends on batch-mates");
        }
    }
}
