//! Eager, define-by-run autograd graph.
//!
//! A [`Graph`] is an arena of nodes. Every operation evaluates immediately
//! (the value is available as soon as the node is created) *and* records how
//! it was produced, so [`Graph::grad`] can later build the backward pass.
//! Crucially, the backward pass is itself expressed as new graph nodes, which
//! makes **higher-order differentiation** work: differentiating a gradient
//! (needed for the WGAN-GP gradient penalty) is just another `grad` call.
//!
//! # Examples
//!
//! ```
//! use gtv_tensor::{Graph, Tensor};
//!
//! let g = Graph::new();
//! let x = g.leaf(Tensor::scalar(3.0));
//! let y = g.mul(x, x); // y = x²
//! let dy = g.grad(y, &[x])[0]; // dy/dx = 2x
//! assert_eq!(g.value(dy).item(), 6.0);
//! let d2y = g.grad(dy, &[x])[0]; // d²y/dx² = 2
//! assert_eq!(g.value(d2y).item(), 2.0);
//! ```

use crate::kernels::{self, FusedAct, UnaryOp};
use crate::Tensor;
use std::cell::RefCell;

/// Handle to a node in a [`Graph`].
///
/// `Var` is a plain index; it is only meaningful together with the graph that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node. Used to build backward passes.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Input node: parameter, constant, or detached value. Pinned by
    /// [`Graph::reset`] — its storage is never recycled, because the value
    /// conceptually belongs to the caller (parameters, data batches).
    Leaf,
    /// Internal gradient-cut node (backward masks, gradient seeds,
    /// zero-gradient placeholders). Behaves exactly like [`Op::Leaf`] under
    /// differentiation but is graph-owned, so [`Graph::reset`] recycles it.
    Const,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    MatMul(Var, Var),
    Transpose(Var),
    SumAll(Var),
    SumRows(Var),
    SumCols(Var),
    /// Broadcast input up to this node's shape.
    Broadcast(Var),
    MulScalar(Var, f32),
    AddScalar(Var),
    PowScalar(Var, f32),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Tanh(Var),
    Sigmoid(Var),
    /// `1 - y²` — tanh's derivative as a function of tanh's *output*; a
    /// first-class op so the backward pass is one fused kernel instead of a
    /// `mul → neg → add_scalar` chain.
    TanhGrad(Var),
    /// `y·(1 - y)` — sigmoid's derivative from its output.
    SigmoidGrad(Var),
    /// `max(x, 0)`; gradient mask is treated as a constant (correct a.e.).
    Relu(Var),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    ConcatCols(Vec<Var>),
    /// Columns `start .. start+width` of the input (width = this node's cols).
    SliceCols(Var, usize),
    /// Input embedded at column `start` of a zero tensor with `total` cols.
    PadCols(Var, usize),
    /// Gather of the given input rows (rows may repeat).
    SelectRows(Var, std::rc::Rc<Vec<usize>>),
    /// Scatter-add of the input's rows into a zero tensor with `total_rows`
    /// rows at the given positions (adjoint of `SelectRows`).
    ScatterRows(Var, std::rc::Rc<Vec<usize>>),
    /// Fused `act(x @ w + b)` with `b` a `1×m` bias row.
    AffineAct(Var, Var, Var, FusedAct),
    /// Fused row-wise `sqrt(Σ_cols x² + eps)` (`n×m → n×1`).
    RowNormEps(Var),
}

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: Op,
}

/// Arena holding an eager computation graph.
///
/// Create one `Graph` per training step, bind parameters as leaves, build the
/// loss, call [`Graph::grad`], read gradients, drop the graph.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// When set, [`Graph::reset`] recycles leaf storage too — the inference
    /// fast path, where every leaf is a graph-owned copy with no caller
    /// alias. Off by default: training loops may hand out leaf values.
    recycle_leaves: std::cell::Cell<bool>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.len())
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes currently in the graph.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if no node has been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&self, value: Tensor, op: Op) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Creates an input node holding `value`. Gradients can flow *to* leaves
    /// but not through them. Leaf storage is pinned across [`Graph::reset`].
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Creates an internal gradient-cut node (same differentiation behavior
    /// as [`Graph::leaf`]) whose storage the graph owns and may recycle.
    pub(crate) fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Const)
    }

    /// Opts this graph into recycling [`Op::Leaf`] storage on
    /// [`Graph::reset`]. Sound whenever every leaf is a graph-owned copy
    /// ([`Graph::leaf`] takes its tensor by value and parameter bindings
    /// clone), which is always true on the inference path — steady-state
    /// serving relies on it to keep pool misses at zero. The default
    /// (off) preserves the training-loop convention of pinning leaves
    /// out of the allocator's fast path.
    pub fn set_recycle_leaves(&self, on: bool) {
        self.recycle_leaves.set(on);
    }

    /// Ends a training step: drains the arena, parking every non-pinned
    /// node's storage in the thread-local recycling pool
    /// ([`crate::pool_mem`]) so the next step's allocations are pool hits.
    /// [`Op::Leaf`] values (parameters, data batches, detached values —
    /// anything the *caller* created) are dropped without recycling by
    /// default, so a tensor the caller still holds a clone of is never fed
    /// back into the allocator's fast path; opt in to recycling them with
    /// [`Graph::set_recycle_leaves`]. Optimizer state lives outside the
    /// graph and is untouched. Returns the number of nodes released. All
    /// `Var` handles into this graph are invalidated.
    pub fn reset(&self) -> usize {
        let nodes = std::mem::take(&mut *self.nodes.borrow_mut());
        let count = nodes.len();
        let recycle_leaves = self.recycle_leaves.get();
        for node in nodes {
            match node.op {
                Op::Leaf if !recycle_leaves => drop(node.value),
                _ => node.value.recycle(),
            }
        }
        count
    }

    /// Creates a leaf holding a copy of `v`'s current value — the value flows
    /// forward but gradients are cut (PyTorch `detach`).
    pub fn detach(&self, v: Var) -> Var {
        let value = self.value(v);
        self.leaf(value)
    }

    /// Clones the value of a node.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Runs `f` with a borrow of the node's value (avoids a clone).
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.0].value)
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    fn unary(&self, x: Var, f: impl FnOnce(&Tensor) -> Tensor, op: Op) -> Var {
        let value = f(&self.nodes.borrow()[x.0].value);
        self.push(value, op)
    }

    fn binary(&self, a: Var, b: Var, f: impl FnOnce(&Tensor, &Tensor) -> Tensor, op: Op) -> Var {
        let value = {
            let nodes = self.nodes.borrow();
            f(&nodes[a.0].value, &nodes[b.0].value)
        };
        self.push(value, op)
    }

    /// Broadcasting addition.
    pub fn add(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.add(y), Op::Add(a, b))
    }

    /// Broadcasting subtraction.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.sub(y), Op::Sub(a, b))
    }

    /// Broadcasting elementwise product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.mul(y), Op::Mul(a, b))
    }

    /// Broadcasting elementwise division.
    pub fn div(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.div(y), Op::Div(a, b))
    }

    /// Elementwise negation.
    pub fn neg(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Neg), Op::Neg(x))
    }

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        self.binary(a, b, |x, y| x.matmul(y), Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&self, x: Var) -> Var {
        self.unary(x, |t| t.transpose(), Op::Transpose(x))
    }

    /// Sum of all elements (`1×1`).
    pub fn sum_all(&self, x: Var) -> Var {
        self.unary(x, |t| t.sum_all(), Op::SumAll(x))
    }

    /// Column sums (`n×m → 1×m`).
    pub fn sum_rows(&self, x: Var) -> Var {
        self.unary(x, |t| t.sum_rows(), Op::SumRows(x))
    }

    /// Row sums (`n×m → n×1`).
    pub fn sum_cols(&self, x: Var) -> Var {
        self.unary(x, |t| t.sum_cols(), Op::SumCols(x))
    }

    /// Mean of all elements (`1×1`).
    pub fn mean_all(&self, x: Var) -> Var {
        let n = {
            let nodes = self.nodes.borrow();
            nodes[x.0].value.len() as f32
        };
        let s = self.sum_all(x);
        self.mul_scalar(s, 1.0 / n)
    }

    /// Per-column means (`n×m → 1×m`).
    pub fn mean_rows(&self, x: Var) -> Var {
        let n = self.shape(x).0 as f32;
        let s = self.sum_rows(x);
        self.mul_scalar(s, 1.0 / n)
    }

    /// Broadcasts `x` up to `rows×cols`.
    ///
    /// # Panics
    ///
    /// Panics if the shape cannot be broadcast.
    pub fn broadcast_to(&self, x: Var, rows: usize, cols: usize) -> Var {
        if self.shape(x) == (rows, cols) {
            return x;
        }
        self.unary(x, |t| t.broadcast_to(rows, cols), Op::Broadcast(x))
    }

    /// Multiplies by a compile-time scalar constant.
    pub fn mul_scalar(&self, x: Var, c: f32) -> Var {
        self.unary(x, |t| t.mul_scalar(c), Op::MulScalar(x, c))
    }

    /// Adds a scalar constant.
    pub fn add_scalar(&self, x: Var, c: f32) -> Var {
        self.unary(x, |t| t.add_scalar(c), Op::AddScalar(x))
    }

    /// Elementwise power with constant exponent.
    pub fn pow_scalar(&self, x: Var, p: f32) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::PowScalar(p)), Op::PowScalar(x, p))
    }

    /// Elementwise square (`pow_scalar(x, 2)` specialisation).
    pub fn square(&self, x: Var) -> Var {
        self.mul(x, x)
    }

    /// Elementwise exponential.
    pub fn exp(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Exp), Op::Exp(x))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Ln), Op::Ln(x))
    }

    /// Elementwise square root.
    pub fn sqrt(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Sqrt), Op::Sqrt(x))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Tanh), Op::Tanh(x))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Sigmoid), Op::Sigmoid(x))
    }

    /// Elementwise `1 - y²`: the derivative of tanh expressed in tanh's
    /// *output* `y`. Bit-identical to the `neg(mul(y, y))` →
    /// `add_scalar(·, 1)` chain it replaces in the backward pass (IEEE
    /// `1 − v·v` and `(−v·v) + 1` round identically), but a single node
    /// over one fused lane kernel.
    pub fn tanh_grad(&self, y: Var) -> Var {
        self.unary(y, |t| t.apply(UnaryOp::TanhGrad), Op::TanhGrad(y))
    }

    /// Elementwise `y·(1 - y)`: the derivative of sigmoid expressed in its
    /// output `y`; bit-identical to the unfused
    /// `mul(y, add_scalar(neg(y), 1))` chain.
    pub fn sigmoid_grad(&self, y: Var) -> Var {
        self.unary(y, |t| t.apply(UnaryOp::SigmoidGrad), Op::SigmoidGrad(y))
    }

    /// Elementwise ReLU.
    pub fn relu(&self, x: Var) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::Relu), Op::Relu(x))
    }

    /// Elementwise leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, x: Var, alpha: f32) -> Var {
        self.unary(x, |t| t.apply(UnaryOp::LeakyRelu(alpha)), Op::LeakyRelu(x, alpha))
    }

    /// Horizontal concatenation.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(&self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let value = {
            let nodes = self.nodes.borrow();
            let tensors: Vec<&Tensor> = parts.iter().map(|v| &nodes[v.0].value).collect();
            Tensor::concat_cols(&tensors)
        };
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Columns `start .. start+width`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the input's columns.
    pub fn slice_cols(&self, x: Var, start: usize, width: usize) -> Var {
        self.unary(x, |t| t.slice_cols(start, width), Op::SliceCols(x, start))
    }

    /// Embeds `x` at column `start` of an otherwise-zero tensor with
    /// `total_cols` columns.
    pub fn pad_cols(&self, x: Var, start: usize, total_cols: usize) -> Var {
        self.unary(x, |t| t.pad_cols(start, total_cols), Op::PadCols(x, start))
    }

    /// Gathers the given rows of `x` (indices may repeat). Gradients
    /// scatter-add back to the source rows.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn select_rows(&self, x: Var, indices: &[usize]) -> Var {
        let idx = std::rc::Rc::new(indices.to_vec());
        self.unary(x, |t| t.select_rows(indices), Op::SelectRows(x, idx))
    }

    /// Scatter-adds the rows of `x` into a `total_rows`-row zero tensor at
    /// the given positions (duplicate positions accumulate). Adjoint of
    /// [`Graph::select_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `indices.len()` differs from `x`'s row count or a position
    /// is out of bounds.
    pub fn scatter_rows(&self, x: Var, indices: &[usize], total_rows: usize) -> Var {
        let idx = std::rc::Rc::new(indices.to_vec());
        self.unary(
            x,
            |t| {
                assert_eq!(t.rows(), indices.len(), "scatter_rows index count mismatch");
                let mut out = Tensor::zeros(total_rows, t.cols());
                for (r, &dst) in indices.iter().enumerate() {
                    assert!(dst < total_rows, "scatter position {dst} out of bounds");
                    let src = t.row_slice(r).to_vec();
                    for (c, v) in src.iter().enumerate() {
                        let cur = out.at(dst, c);
                        out.set(dst, c, cur + v);
                    }
                }
                out
            },
            Op::ScatterRows(x, idx),
        )
    }

    /// Row-wise softmax, computed stably by subtracting the (detached) row
    /// maximum. Differentiable (including twice) through its primitive
    /// decomposition.
    pub fn softmax_rows(&self, x: Var) -> Var {
        let (rows, _cols) = self.shape(x);
        let rowmax = self.with_value(x, |t| {
            let mut m = Tensor::zeros(rows, 1);
            for r in 0..rows {
                let mx = t.row_slice(r).iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                m.set(r, 0, mx);
            }
            m
        });
        let mx = self.constant(rowmax);
        let shifted = self.sub(x, mx);
        let e = self.exp(shifted);
        let denom = self.sum_cols(e);
        self.div(e, denom)
    }

    /// Row-wise L2 norm with numerical floor `eps`: `sqrt(Σ_cols x² + eps)`.
    /// Runs on the fused [`Graph::row_norm_eps`] kernel; bit-identical to
    /// the primitive `square → sum_cols → add_scalar → sqrt` chain.
    pub fn l2_norm_rows(&self, x: Var, eps: f32) -> Var {
        self.row_norm_eps(x, eps)
    }

    /// Fused affine + activation: `act(x @ w + b)` in one pass over the
    /// matmul output. Backward differentiates it exactly like the unfused
    /// `matmul → add → activation` chain (including twice, for WGAN-GP).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != w.rows()`, if `b` is not a `1×m` row, or if a
    /// leaky slope is not strictly positive (the backward pass recovers the
    /// mask from the fused output's sign, which needs `α > 0` — `α = 0` is
    /// plain [`FusedAct::Relu`]).
    pub fn affine_act(&self, x: Var, w: Var, b: Var, act: FusedAct) -> Var {
        if let FusedAct::LeakyRelu(alpha) = act {
            assert!(
                alpha > 0.0,
                "affine_act requires a strictly positive leaky slope, got {alpha}"
            );
        }
        let value = {
            let nodes = self.nodes.borrow();
            let (xv, wv, bv) = (&nodes[x.0].value, &nodes[w.0].value, &nodes[b.0].value);
            assert_eq!(
                xv.cols(),
                wv.rows(),
                "affine_act shape mismatch: {}x{} @ {}x{}",
                xv.rows(),
                xv.cols(),
                wv.rows(),
                wv.cols()
            );
            let (n, k, m) = (xv.rows(), xv.cols(), wv.cols());
            assert_eq!(bv.shape(), (1, m), "affine_act bias must be 1x{m}, got {:?}", bv.shape());
            let data =
                kernels::affine_act(n, k, m, xv.as_slice(), wv.as_slice(), bv.as_slice(), act);
            Tensor::from_vec(n, m, data)
        };
        self.push(value, Op::AffineAct(x, w, b, act))
    }

    /// Fused row-wise norm with floor: `sqrt(Σ_cols x² + eps)` (`n×m → n×1`)
    /// in one pass per row, used by the WGAN-GP gradient penalty.
    pub fn row_norm_eps(&self, x: Var, eps: f32) -> Var {
        self.unary(
            x,
            |t| {
                let data = kernels::row_norm_eps(t.as_slice(), t.rows(), t.cols(), eps);
                Tensor::from_vec(t.rows(), 1, data)
            },
            Op::RowNormEps(x),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_values_available_immediately() {
        let g = Graph::new();
        let a = g.leaf(Tensor::from_rows(&[&[1.0, 2.0]]));
        let b = g.leaf(Tensor::from_rows(&[&[3.0, 4.0]]));
        let c = g.add(a, b);
        assert_eq!(g.value(c), Tensor::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]));
        let s = g.softmax_rows(x);
        let sums = g.value(g.sum_cols(s));
        assert!((sums.at(0, 0) - 1.0).abs() < 1e-6);
        assert!((sums.at(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detach_cuts_gradients() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        let d = g.detach(x);
        let y = g.mul(x, d); // dy/dx should be d = 2, not 2x = 4
        let dx = g.grad(y, &[x])[0];
        assert_eq!(g.value(dx).item(), 2.0);
    }
}
