//! Portable f32x8 micro-kernels — the only sanctioned home for lane-level
//! vectorization (the xtask L2 determinism lint flags `[f32; 8]` lane code
//! anywhere else in the tree).
//!
//! Everything here is straight-line arithmetic over `[f32; 8]` lane arrays:
//! no `std::simd`, no intrinsics, no `unsafe`. LLVM's autovectorizer turns
//! each helper into packed SSE/AVX code while the source stays portable and
//! the workspace-wide `unsafe_code = "forbid"` holds.
//!
//! Determinism contract (DESIGN.md §8):
//!
//! * every lane operation is **lanewise pure** — lane `i` of a result
//!   depends only on lane `i` of the inputs — so how a buffer is cut into
//!   groups of eight is unobservable in the output bits;
//! * horizontal reductions ([`dot`], [`sum`], [`sum_squares`]) accumulate
//!   into eight fixed lanes combined in one fixed order,
//!   `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, plus a sequential tail, so
//!   the rounding tree is a pure function of the slice length;
//! * the scalar transcendentals ([`tanh`], [`sigmoid`], [`exp`]) are defined
//!   as lane 0 of the eight-lane kernel applied to a splat, which makes
//!   scalar tails bit-identical to vector lanes *by construction*;
//! * no helper uses a fused multiply-add: `mul_add`-shaped expressions are
//!   written as two separately rounded operations, so results do not depend
//!   on whether the target has FMA hardware.
//!
//! # Approximation accuracy
//!
//! [`tanh`] is the rational approximation popularized by Eigen/XLA: an odd
//! degree-13 numerator over an even degree-6 denominator in `x²`, input
//! clamped to ±[`TANH_CLAMP`], with a pass-through for `|x| <`
//! [`TANH_TINY`] (which keeps subnormals and ±0.0 exact). [`exp`] is a
//! classic Cody–Waite reduction (`x = n·ln2 + r`, `|r| ≤ ln2/2`) with a
//! degree-7 Taylor core and a split power-of-two rescale; inputs beyond
//! ±[`EXP_CLAMP_HI`]/[`EXP_CLAMP_LO`] saturate to `+∞` / `+0.0` (a
//! flush-to-zero of sub-minimal-normal results). [`sigmoid`] is
//! `1 / (1 + exp(-x))` on top of that — structurally the same formula the
//! scalar libm path used before. The observed worst-case error versus libm
//! over a dense sweep of [-20, 20] plus edge values is asserted by
//! `crates/tensor/tests/simd_math.rs` and documented in DESIGN.md §8:
//! ≤ [`TANH_MAX_ULP`] ULP for tanh and ≤ [`SIGMOID_MAX_ULP`] ULP for
//! sigmoid at f32.

/// Lane width of every kernel in this module.
pub const LANES: usize = 8;

/// Asserted upper bound (in f32 ULP) on `|tanh(x) − libm tanh(x)|` over the
/// sweep in `tests/simd_math.rs`.
pub const TANH_MAX_ULP: u32 = 8;

/// Asserted upper bound (in f32 ULP) on `|sigmoid(x) − 1/(1+expf(−x))|`
/// over the sweep in `tests/simd_math.rs`.
pub const SIGMOID_MAX_ULP: u32 = 8;

/// Eight f32 lanes. A plain array wrapper: safe Rust, fixed width, written
/// so LLVM autovectorizes every lanewise helper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct F32x8(pub(crate) [f32; LANES]);

impl F32x8 {
    #[inline(always)]
    pub(crate) fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Loads the first eight elements of `s` (`s.len() ≥ 8`).
    #[inline(always)]
    pub(crate) fn load(s: &[f32]) -> Self {
        let mut lanes = [0.0; LANES];
        lanes.copy_from_slice(&s[..LANES]);
        Self(lanes)
    }

    /// Stores the lanes into the first eight elements of `out`.
    #[inline(always)]
    pub(crate) fn store(self, out: &mut [f32]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    #[inline(always)]
    pub(crate) fn map(self, f: impl Fn(f32) -> f32) -> Self {
        Self(std::array::from_fn(|i| f(self.0[i])))
    }

    #[inline(always)]
    pub(crate) fn zip(self, o: Self, f: impl Fn(f32, f32) -> f32) -> Self {
        Self(std::array::from_fn(|i| f(self.0[i], o.0[i])))
    }

    #[inline(always)]
    pub(crate) fn add(self, o: Self) -> Self {
        self.zip(o, |a, b| a + b)
    }

    #[inline(always)]
    pub(crate) fn sub(self, o: Self) -> Self {
        self.zip(o, |a, b| a - b)
    }

    #[inline(always)]
    pub(crate) fn mul(self, o: Self) -> Self {
        self.zip(o, |a, b| a * b)
    }

    #[inline(always)]
    pub(crate) fn div(self, o: Self) -> Self {
        self.zip(o, |a, b| a / b)
    }

    /// `self·m + a` per lane as **two rounded ops** (never an FMA).
    #[inline(always)]
    fn mul_add_s(self, m: f32, a: f32) -> Self {
        self.map(|v| v * m + a)
    }

    /// `self·m` per lane.
    #[inline(always)]
    fn mul_s(self, m: f32) -> Self {
        self.map(|v| v * m)
    }

    /// Fixed-order horizontal sum: `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`.
    /// This is the one place lanes meet; the order never varies.
    #[inline(always)]
    fn hsum(self) -> f32 {
        let l = self.0;
        ((l[0] + l[4]) + (l[1] + l[5])) + ((l[2] + l[6]) + (l[3] + l[7]))
    }
}

// --- rational tanh -------------------------------------------------------

/// Clamp bound of the rational tanh core. `tanh(7.90531) = 1 − 2.6e-7`, so
/// saturating here leaves large arguments ~4 ULP below ±1.0 — inside the
/// documented [`TANH_MAX_ULP`] budget.
const TANH_CLAMP: f32 = 7.905_311;
/// Below this magnitude the approximation returns `x` itself (the true
/// series is `x − x³/3 + …`, and `x³/3` underflows the f32 grid), keeping
/// ±0.0 and subnormals exact.
const TANH_TINY: f32 = 4e-4;
// Odd numerator / even denominator coefficients of the Eigen/XLA rational
// approximation, highest degree first.
const TANH_ALPHA: [f32; 7] = [
    -2.760_768_4e-16,
    2.000_188e-13,
    -8.604_672e-11,
    5.122_297_3e-8,
    1.485_722_35e-5,
    6.372_619_5e-4,
    4.893_524_6e-3,
];
const TANH_BETA: [f32; 4] = [1.198_258_4e-6, 1.185_347_1e-4, 2.268_434_7e-3, 4.893_525e-3];

/// Eight-lane rational tanh. Lanewise pure; see the module docs for the
/// accuracy contract.
#[inline]
pub(crate) fn tanh8(x: F32x8) -> F32x8 {
    #[allow(clippy::manual_clamp)] // max/min squash NaN lanes to a finite value; clamp keeps NaN
    let xc = x.map(|v| v.max(-TANH_CLAMP).min(TANH_CLAMP));
    let x2 = xc.mul(xc);
    let mut p = F32x8::splat(TANH_ALPHA[0]);
    for &c in &TANH_ALPHA[1..] {
        p = p.mul(x2).map(|v| v + c);
    }
    let p = p.mul(xc);
    let mut q = F32x8::splat(TANH_BETA[0]);
    for &c in &TANH_BETA[1..] {
        q = q.mul(x2).map(|v| v + c);
    }
    let r = p.div(q);
    // Pass tiny inputs through unchanged and restore NaN (the clamp above
    // silently turns NaN lanes into ±TANH_CLAMP — Rust's min/max drop NaN).
    x.zip(r, |xi, ri| if xi.is_nan() || xi.abs() < TANH_TINY { xi } else { ri })
}

// --- Cody–Waite exp ------------------------------------------------------

/// Inputs above this overflow f32 (`ln(f32::MAX)`): the kernel returns `+∞`.
const EXP_CLAMP_HI: f32 = 88.722_84;
/// Inputs below this produce sub-minimal-normal results (`ln` of the
/// smallest normal f32): the kernel flushes them to `+0.0`.
const EXP_CLAMP_LO: f32 = -87.336_54;
/// `1.5·2²³` — adding and subtracting it rounds a float (|v| ≤ 2²²) to the
/// nearest integer without a branch or a libm `round` call.
const EXP_MAGIC: f32 = 12_582_912.0;
/// `ln 2` split into an 11-bit-exact high part and a low correction, so
/// `x − n·LN2_HI` is exact for `|n| ≤ 2⁸` (Cody–Waite range reduction).
const EXP_LN2_HI: f32 = 0.693_359_4;
const EXP_LN2_LO: f32 = -2.121_944_4e-4;
/// Taylor coefficients `1/k!` for `k = 7 … 2` (highest degree first); the
/// final `+ r + 1` steps are folded into the Horner loop's tail.
const EXP_POLY: [f32; 6] = [1.0 / 5040.0, 1.0 / 720.0, 1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5];

/// Eight-lane `e^x`: Cody–Waite reduction, degree-7 Taylor core, split
/// power-of-two rescale. Lanewise pure.
#[inline]
pub(crate) fn exp8(x: F32x8) -> F32x8 {
    #[allow(clippy::manual_clamp)] // max/min squash NaN lanes to a finite value; clamp keeps NaN
    let xc = x.map(|v| v.max(EXP_CLAMP_LO).min(EXP_CLAMP_HI));
    // n = round(x / ln 2) via the magic-number shift; n ∈ [-126, 128].
    let shifted = xc.mul_add_s(std::f32::consts::LOG2_E, EXP_MAGIC);
    let n = shifted.map(|v| v - EXP_MAGIC);
    // r = x − n·ln2 in two steps; |r| ≤ ln2/2 + 1 ULP.
    let r = xc.sub(n.mul_s(EXP_LN2_HI)).sub(n.mul_s(EXP_LN2_LO));
    let mut p = F32x8::splat(EXP_POLY[0]);
    for &c in &EXP_POLY[1..] {
        p = p.mul(r).map(|v| v + c);
    }
    // Degree-1 and degree-0 terms (both 1.0) finish the Horner chain.
    let p = p.mul(r).map(|v| v + 1.0);
    let p = p.mul(r).map(|v| v + 1.0);
    // Scale by 2^n in two halves so n = 128 (x near ln MAX) stays finite:
    // 2^n = 2^(n/2) · 2^(n−n/2), each half's biased exponent in [1, 254].
    let y = p.zip(n, |pi, nf| {
        let ni = nf as i32;
        let half = ni >> 1;
        let s1 = f32::from_bits(((half + 127) as u32) << 23);
        let s2 = f32::from_bits((((ni - half) + 127) as u32) << 23);
        (pi * s1) * s2
    });
    // Saturate against the *unclamped* input and restore NaN lanes. Three
    // independent single-compare passes, each a compare + select that LLVM
    // keeps vectorized (one fused multi-branch select does not).
    let y = x.zip(y, |xi, yi| if xi > EXP_CLAMP_HI { f32::INFINITY } else { yi });
    let y = x.zip(y, |xi, yi| if xi < EXP_CLAMP_LO { 0.0 } else { yi });
    x.zip(y, |xi, yi| if xi.is_nan() { xi } else { yi })
}

/// Eight-lane logistic sigmoid `1 / (1 + e^{−x})` — structurally the same
/// formula the scalar libm path used, with [`exp8`] supplying the
/// exponential. Lanewise pure.
#[inline]
pub(crate) fn sigmoid8(x: F32x8) -> F32x8 {
    exp8(x.map(|v| -v)).map(|e| 1.0 / (1.0 + e))
}

/// Eight-lane derivative-from-output of tanh: `1 − y²`. Bit-identical to
/// the unfused `neg(mul(y,y))` → `add_scalar(·, 1)` chain (IEEE `a − b` is
/// exactly `(−b) + a`). Lanewise pure.
#[inline]
pub(crate) fn tanh_grad8(y: F32x8) -> F32x8 {
    y.map(|v| 1.0 - v * v)
}

/// Eight-lane derivative-from-output of sigmoid: `y·(1 − y)`, bit-identical
/// to the unfused `mul(y, add_scalar(neg(y), 1))` chain. Lanewise pure.
#[inline]
pub(crate) fn sigmoid_grad8(y: F32x8) -> F32x8 {
    y.map(|v| v * (1.0 - v))
}

/// Eight-lane `max(x, 0)` (same NaN→0 semantics as `f32::max`).
#[inline]
pub(crate) fn relu8(x: F32x8) -> F32x8 {
    x.map(|v| v.max(0.0))
}

/// Eight-lane leaky ReLU: `x` for `x ≥ 0`, else `α·x`.
#[inline]
pub(crate) fn leaky_relu8(x: F32x8, alpha: f32) -> F32x8 {
    x.map(|v| if v >= 0.0 { v } else { alpha * v })
}

// --- scalar forms --------------------------------------------------------

/// Scalar tanh — lane 0 of [`tanh8`] on a splat, so tails and lanes agree
/// bit for bit.
#[inline]
pub fn tanh(x: f32) -> f32 {
    tanh8(F32x8::splat(x)).0[0]
}

/// Scalar sigmoid — lane 0 of [`sigmoid8`] on a splat.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    sigmoid8(F32x8::splat(x)).0[0]
}

/// Scalar exp — lane 0 of [`exp8`] on a splat.
#[inline]
pub fn exp(x: f32) -> f32 {
    exp8(F32x8::splat(x)).0[0]
}

// --- slice kernels -------------------------------------------------------

/// Applies the lane kernel `f8` across `src`, appending to `out`: full
/// eight-lane groups first, then the ≤7-element tail through the identical
/// splat/lane-0 path. Because `f8` is lanewise pure, element `i` of the
/// result is a function of `src[i]` alone — chunking is unobservable.
#[inline]
pub(crate) fn map_slice(src: &[f32], out: &mut Vec<f32>, f8: impl Fn(F32x8) -> F32x8) {
    let mut groups = src.chunks_exact(LANES);
    for g in &mut groups {
        out.extend_from_slice(&f8(F32x8::load(g)).0);
    }
    for &v in groups.remainder() {
        out.push(f8(F32x8::splat(v)).0[0]);
    }
}

/// Elementwise binary map over equal-length slices with the lane kernel
/// `f8`; same tail discipline as [`map_slice`].
#[inline]
pub(crate) fn zip_slice(
    a: &[f32],
    b: &[f32],
    out: &mut Vec<f32>,
    f8: impl Fn(F32x8, F32x8) -> F32x8,
) {
    debug_assert_eq!(a.len(), b.len());
    let mut ag = a.chunks_exact(LANES);
    let mut bg = b.chunks_exact(LANES);
    for (ac, bc) in (&mut ag).zip(&mut bg) {
        out.extend_from_slice(&f8(F32x8::load(ac), F32x8::load(bc)).0);
    }
    for (&x, &y) in ag.remainder().iter().zip(bg.remainder()) {
        out.push(f8(F32x8::splat(x), F32x8::splat(y)).0[0]);
    }
}

/// Fused bias + activation over one output row: `row[j] = f8(row[j] +
/// bias[j])` with eight-lane groups and the splat tail. The arithmetic per
/// element is exactly `act(v + b)` — identical to the unfused broadcast-add
/// followed by the elementwise activation.
#[inline]
pub(crate) fn bias_act_row(row: &mut [f32], bias: &[f32], f8: impl Fn(F32x8) -> F32x8) {
    debug_assert_eq!(row.len(), bias.len());
    let mut rg = row.chunks_exact_mut(LANES);
    let mut bg = bias.chunks_exact(LANES);
    for (rc, bc) in (&mut rg).zip(&mut bg) {
        f8(F32x8::load(rc).add(F32x8::load(bc))).store(rc);
    }
    for (r, &b) in rg.into_remainder().iter_mut().zip(bg.remainder()) {
        *r = f8(F32x8::splat(*r + b)).0[0];
    }
}

// --- fixed-shape reductions ----------------------------------------------

/// Sum with eight independent accumulator lanes combined in the fixed
/// [`F32x8::hsum`] order plus a sequential tail — the rounding tree depends
/// only on `xs.len()`.
#[inline]
pub fn sum(xs: &[f32]) -> f32 {
    let mut acc = F32x8::splat(0.0);
    let mut groups = xs.chunks_exact(LANES);
    for g in &mut groups {
        acc = acc.add(F32x8::load(g));
    }
    let mut s = acc.hsum();
    for &v in groups.remainder() {
        s += v;
    }
    s
}

/// Sum of squares with the same lane/combine/tail shape as [`sum`].
#[inline]
pub fn sum_squares(xs: &[f32]) -> f32 {
    let mut acc = F32x8::splat(0.0);
    let mut groups = xs.chunks_exact(LANES);
    for g in &mut groups {
        let v = F32x8::load(g);
        acc = acc.add(v.mul(v));
    }
    let mut s = acc.hsum();
    for &v in groups.remainder() {
        s += v * v;
    }
    s
}

/// Dot product with the same lane/combine/tail shape as [`sum`]; the result
/// is a pure function of the operands.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = F32x8::splat(0.0);
    let mut xg = x.chunks_exact(LANES);
    let mut yg = y.chunks_exact(LANES);
    for (xc, yc) in (&mut xg).zip(&mut yg) {
        acc = acc.add(F32x8::load(xc).mul(F32x8::load(yc)));
    }
    let mut s = acc.hsum();
    for (&a, &b) in xg.remainder().iter().zip(yg.remainder()) {
        s += a * b;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_forms_are_lane_zero_of_the_lane_kernels() {
        for &v in &[-3.0f32, -0.2, 0.0, 0.4, 2.5, 9.0] {
            assert_eq!(tanh(v).to_bits(), tanh8(F32x8::splat(v)).0[0].to_bits());
            assert_eq!(sigmoid(v).to_bits(), sigmoid8(F32x8::splat(v)).0[0].to_bits());
            assert_eq!(exp(v).to_bits(), exp8(F32x8::splat(v)).0[0].to_bits());
        }
    }

    #[test]
    fn lane_position_is_unobservable() {
        // The same value must produce the same bits in every lane slot.
        let xs = [-5.0f32, -1.0, -0.25, 0.0, 0.25, 1.0, 5.0, 20.0];
        let lanes = tanh8(F32x8(xs));
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(lanes.0[i].to_bits(), tanh(x).to_bits(), "lane {i}");
        }
    }

    #[test]
    fn sum_matches_integer_arithmetic() {
        let xs: Vec<f32> = (0..1000).map(|v| (v % 11) as f32).collect();
        let expected: f32 = xs.iter().sum();
        assert_eq!(sum(&xs), expected);
    }

    #[test]
    fn exp_edge_values() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp(f32::INFINITY), f32::INFINITY);
        assert!(exp(f32::NAN).is_nan());
        assert_eq!(exp(-200.0), 0.0);
        assert_eq!(exp(200.0), f32::INFINITY);
    }

    #[test]
    fn tanh_edge_values() {
        assert_eq!(tanh(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert!(tanh(f32::NAN).is_nan());
        assert!((tanh(f32::INFINITY) - 1.0).abs() < 1e-6);
        assert!((tanh(f32::NEG_INFINITY) + 1.0).abs() < 1e-6);
    }
}
