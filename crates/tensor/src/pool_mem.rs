//! Shape-keyed recycling pool for tensor storage.
//!
//! WGAN-GP training rebuilds the whole autograd graph every minibatch with
//! the *same* tensor shapes, step after step. This module turns that
//! repetition into reuse: instead of dropping a `Vec<f32>` when a tensor
//! dies, [`give`] parks the storage in a capacity-keyed free list, and the
//! next [`take`] of a compatible size pops it back out — no malloc, no page
//! faults, warm cache lines.
//!
//! Design points (DESIGN.md §9 has the full memory model):
//!
//! * **Thread-local.** Each thread owns its own free lists and counters, so
//!   the pool needs no locks and worker threads recycle their own chunk
//!   buffers. Buffers may migrate between threads (a worker-allocated chunk
//!   is stitched — and later [`give`]n back — on the dispatching thread);
//!   migration only moves capacity around, never correctness.
//! * **Capacity-keyed with bounded slack.** A request for `len` elements is
//!   served by the smallest parked buffer whose capacity lies in
//!   `len ..= 4·len`; anything larger would waste too much memory on a
//!   small tensor and is left for a bigger request.
//! * **Determinism is structural.** A recycled buffer is handed out *empty*
//!   (length zero) or fully overwritten ([`take_zeroed`] / [`take_filled`]),
//!   so no stale element can ever be observed: results are bit-identical to
//!   fresh allocation by construction, at any `GTV_THREADS` setting.
//! * **Always instrumented.** Bytes requested and hit/miss counts are
//!   tracked even when recycling is disabled via [`set_enabled`] — that is
//!   what lets `bench_step` and the regression tests compare allocation
//!   traffic with the pool on and off using the same counters.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Free buffers parked per capacity bucket before further [`give`]s to that
/// bucket are dropped. Generous on purpose: `Graph::reset` returns an entire
/// step's worth of same-shaped node storage at once.
const MAX_BUFS_PER_BUCKET: usize = 4096;

/// Upper bound on bytes parked in one thread's pool; beyond it, [`give`]
/// drops buffers instead of parking them.
const MAX_POOLED_BYTES: usize = 256 << 20;

/// A parked buffer may serve a request up to this factor smaller than its
/// capacity.
const MAX_SLACK_FACTOR: usize = 4;

/// Requests below this many elements bypass recycling entirely: [`take`]
/// allocates fresh and [`give`] drops the buffer. A 256-byte allocation is
/// cheaper than the free-list lookup it would replace — BENCH_step showed
/// `pool_recycling=true` *losing* steps/s to tiny-shape lookup overhead
/// (scalars, bias rows, per-row norms) before this floor existed. Counted
/// separately in [`PoolStats::small`], not as misses, so hit-rate numbers
/// describe only the traffic the pool actually manages.
const MIN_RECYCLE_LEN: usize = 64;

thread_local! {
    /// Capacity → stack of parked buffers. Buckets are removed when they
    /// empty, so every key in the map has at least one buffer.
    static POOL: RefCell<BTreeMap<usize, Vec<Vec<f32>>>> = const { RefCell::new(BTreeMap::new()) };
    static ENABLED: Cell<bool> = const { Cell::new(true) };
    static HITS: Cell<u64> = const { Cell::new(0) };
    static MISSES: Cell<u64> = const { Cell::new(0) };
    static BYTES_REQUESTED: Cell<u64> = const { Cell::new(0) };
    static BYTES_HELD: Cell<usize> = const { Cell::new(0) };
    static SMALL: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of this thread's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Requests served from a parked buffer.
    pub hits: u64,
    /// Requests that fell through to a fresh allocation (every request
    /// counts as a miss while recycling is disabled).
    pub misses: u64,
    /// Total bytes asked for across all requests (hit, miss, or small).
    pub bytes_requested: u64,
    /// Bytes currently parked in this thread's free lists.
    pub bytes_held: usize,
    /// Requests below the recycling floor, served by fresh allocation
    /// regardless of pool state (neither hits nor misses).
    pub small: u64,
}

/// Turns recycling on or off for the calling thread. Counters keep running
/// either way; disabling only forces every [`take`] to allocate fresh.
pub fn set_enabled(enabled: bool) {
    ENABLED.with(|e| e.set(enabled));
    if !enabled {
        clear();
    }
}

/// Whether recycling is enabled on the calling thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Reads this thread's counters.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.with(Cell::get),
        misses: MISSES.with(Cell::get),
        bytes_requested: BYTES_REQUESTED.with(Cell::get),
        bytes_held: BYTES_HELD.with(Cell::get),
        small: SMALL.with(Cell::get),
    }
}

/// Zeroes this thread's hit/miss/small/bytes-requested counters (parked
/// buffers and `bytes_held` are untouched).
pub fn reset_stats() {
    HITS.with(|c| c.set(0));
    MISSES.with(|c| c.set(0));
    BYTES_REQUESTED.with(|c| c.set(0));
    SMALL.with(|c| c.set(0));
}

/// Drops every parked buffer on the calling thread.
pub fn clear() {
    POOL.with(|p| p.borrow_mut().clear());
    BYTES_HELD.with(|b| b.set(0));
}

/// Pre-parks `count` buffers of capacity `len` so a serving hot loop's first
/// pass through a model already hits the pool instead of paying cold
/// allocations. Respects the same budgets as [`give`]: sub-floor lengths,
/// full buckets and the byte cap all turn pinning into a no-op for the
/// remaining buffers. Returns how many buffers were actually parked.
///
/// This is the registry-warmup half of the serving allocation story: load a
/// model, `reserve` its step shapes, and steady-state requests run at ~zero
/// fresh allocations (asserted by the `crates/serve` zero-alloc test).
pub fn reserve(len: usize, count: usize) -> usize {
    if len < MIN_RECYCLE_LEN || !enabled() {
        return 0;
    }
    let mut parked = 0;
    for _ in 0..count {
        let held = BYTES_HELD.with(Cell::get);
        if held + len * 4 > MAX_POOLED_BYTES {
            break;
        }
        let full = POOL.with(|p| {
            let mut pool = p.borrow_mut();
            let bucket = pool.entry(len).or_default();
            if bucket.len() >= MAX_BUFS_PER_BUCKET {
                return true;
            }
            bucket.push(Vec::with_capacity(len));
            false
        });
        if full {
            break;
        }
        BYTES_HELD.with(|b| b.set(b.get() + len * 4));
        parked += 1;
    }
    parked
}

fn try_take(len: usize) -> Option<Vec<f32>> {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let cap = pool.range(len..=len.saturating_mul(MAX_SLACK_FACTOR)).next().map(|(&c, _)| c)?;
        let bucket = pool.get_mut(&cap)?;
        let buf = bucket.pop()?;
        if bucket.is_empty() {
            pool.remove(&cap);
        }
        BYTES_HELD.with(|b| b.set(b.get().saturating_sub(cap * 4)));
        Some(buf)
    })
}

/// Hands out an *empty* buffer with capacity ≥ `len`: a parked one when
/// available and recycling is enabled, a fresh allocation otherwise.
/// Requests below [`MIN_RECYCLE_LEN`] always allocate fresh (see the
/// constant's docs) and count as `small` rather than misses.
pub(crate) fn take(len: usize) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    BYTES_REQUESTED.with(|b| b.set(b.get() + (len as u64) * 4));
    if len < MIN_RECYCLE_LEN {
        SMALL.with(|c| c.set(c.get() + 1));
        return Vec::with_capacity(len);
    }
    if enabled() {
        if let Some(buf) = try_take(len) {
            HITS.with(|c| c.set(c.get() + 1));
            return buf;
        }
    }
    MISSES.with(|c| c.set(c.get() + 1));
    Vec::with_capacity(len)
}

/// [`take`] followed by a zero fill to length `len`.
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    take_filled(len, 0.0)
}

/// [`take`] followed by a fill of `v` to length `len`.
pub(crate) fn take_filled(len: usize, v: f32) -> Vec<f32> {
    let mut buf = take(len);
    buf.resize(len, v);
    buf
}

/// Parks `buf`'s storage for reuse. No-op when recycling is disabled, the
/// buffer is below the [`MIN_RECYCLE_LEN`] floor, or the per-thread budgets
/// are exhausted (the buffer is then simply dropped).
pub(crate) fn give(mut buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap < MIN_RECYCLE_LEN || !enabled() {
        return;
    }
    if BYTES_HELD.with(Cell::get) + cap * 4 > MAX_POOLED_BYTES {
        return;
    }
    buf.clear();
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let bucket = pool.entry(cap).or_default();
        if bucket.len() < MAX_BUFS_PER_BUCKET {
            bucket.push(buf);
            BYTES_HELD.with(|b| b.set(b.get() + cap * 4));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pool and its counters are thread-local, so each test runs in its
    /// own sandbox only if tests on the same thread reset state first.
    fn fresh() {
        set_enabled(true);
        clear();
        reset_stats();
    }

    #[test]
    fn recycles_exact_capacity() {
        fresh();
        let buf = take(100);
        assert_eq!(buf.capacity(), 100);
        let ptr = buf.as_ptr();
        give(buf);
        assert_eq!(stats().bytes_held, 400);
        let again = take(100);
        assert_eq!(again.as_ptr(), ptr, "same storage must come back");
        assert!(again.is_empty(), "recycled buffers are handed out empty");
        assert_eq!(stats().hits, 1);
        assert_eq!(stats().misses, 1);
        fresh();
    }

    #[test]
    fn slack_is_bounded() {
        fresh();
        give({
            let mut v = take(400);
            v.resize(400, 1.0);
            v
        });
        // 400 ≤ 4·100 is within slack; 400 > 4·64 is not.
        assert!(take(64).capacity() < 400, "an oversized buffer must not serve a small request");
        let hit = take(100);
        assert!(hit.capacity() >= 400, "within-slack request should reuse the parked buffer");
        fresh();
    }

    #[test]
    fn disabled_pool_still_counts_misses() {
        fresh();
        set_enabled(false);
        give(vec![0.0f32; 64]);
        assert_eq!(stats().bytes_held, 0, "give is a no-op while disabled");
        let _ = take(64);
        let s = stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        assert_eq!(s.bytes_requested, 256);
        fresh();
    }

    #[test]
    fn small_requests_bypass_the_pool() {
        fresh();
        give(vec![0.0f32; MIN_RECYCLE_LEN - 1]);
        assert_eq!(stats().bytes_held, 0, "sub-floor buffers are dropped, not parked");
        give(vec![0.0f32; MIN_RECYCLE_LEN]);
        assert_eq!(stats().bytes_held, MIN_RECYCLE_LEN * 4, "at-floor buffers are parked");
        let tiny = take(MIN_RECYCLE_LEN - 1);
        assert!(tiny.capacity() < MIN_RECYCLE_LEN, "sub-floor requests allocate fresh");
        let s = stats();
        assert_eq!((s.hits, s.misses, s.small), (0, 0, 1), "{s:?}");
        assert_eq!(
            s.bytes_requested,
            (MIN_RECYCLE_LEN as u64 - 1) * 4,
            "bytes_requested still covers sub-floor traffic"
        );
        fresh();
    }

    #[test]
    fn reserve_pins_capacity_that_later_takes_hit() {
        fresh();
        assert_eq!(reserve(128, 3), 3);
        assert_eq!(stats().bytes_held, 3 * 128 * 4);
        for _ in 0..3 {
            let buf = take(128);
            assert!(buf.capacity() >= 128);
        }
        let s = stats();
        assert_eq!((s.hits, s.misses), (3, 0), "reserved buffers must serve as hits: {s:?}");
        fresh();
    }

    #[test]
    fn reserve_respects_floor_and_disabled_pool() {
        fresh();
        assert_eq!(reserve(MIN_RECYCLE_LEN - 1, 4), 0, "sub-floor reserve is a no-op");
        set_enabled(false);
        assert_eq!(reserve(256, 4), 0, "reserve is a no-op while recycling is off");
        fresh();
    }

    #[test]
    fn zeroed_and_filled_overwrite_recycled_contents() {
        fresh();
        let mut dirty = take(64);
        dirty.resize(64, f32::NAN);
        give(dirty);
        assert!(take_zeroed(64).iter().all(|&v| v == 0.0));
        fresh();
        let mut dirty = take(64);
        dirty.resize(64, f32::NAN);
        give(dirty);
        assert!(take_filled(64, 2.5).iter().all(|&v| v == 2.5));
        fresh();
    }
}
