//! Reverse-mode differentiation.
//!
//! [`Graph::grad`] walks the graph in reverse creation order (creation order
//! is a topological order because the graph is eager) and *constructs new
//! nodes* for every vector–Jacobian product. Because the backward pass is
//! ordinary graph construction, its outputs can be differentiated again —
//! this is what powers the WGAN-GP gradient penalty.

use crate::graph::{Graph, Op, Var};
use crate::kernels::{FusedAct, UnaryOp};
use crate::Tensor;

impl Graph {
    /// Reduces `v` down to `(rows, cols)` by summing over broadcast axes —
    /// the adjoint of broadcasting.
    fn reduce_to(&self, v: Var, rows: usize, cols: usize) -> Var {
        let (vr, vc) = self.shape(v);
        let mut out = v;
        if rows == 1 && vr > 1 {
            out = self.sum_rows(out);
        }
        if cols == 1 && vc > 1 {
            out = self.sum_cols(out);
        }
        debug_assert_eq!(self.shape(out), (rows, cols), "reduce_to produced wrong shape");
        out
    }

    /// Accumulates `contrib` into `adj[i]`.
    fn accumulate(&self, adj: &mut [Option<Var>], i: usize, contrib: Var) {
        adj[i] = Some(match adj[i] {
            Some(existing) => self.add(existing, contrib),
            None => contrib,
        });
    }

    /// Builds the gradients of `sum(y)` with respect to each var in `wrt`,
    /// as **new graph nodes** (so they can be differentiated again).
    ///
    /// If `y` is not a scalar the result is the gradient of the sum of its
    /// elements, which for row-independent networks yields per-row gradients.
    /// Vars unreachable from `y` get zero gradients of their own shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use gtv_tensor::{Graph, Tensor};
    /// let g = Graph::new();
    /// let x = g.leaf(Tensor::row(&[1.0, 2.0]));
    /// let y = g.sum_all(g.square(x));
    /// let dx = g.grad(y, &[x])[0];
    /// assert_eq!(g.value(dx), Tensor::row(&[2.0, 4.0]));
    /// ```
    pub fn grad(&self, y: Var, wrt: &[Var]) -> Vec<Var> {
        let y_shape = self.shape(y);
        let limit = y.0 + 1;
        let mut adj: Vec<Option<Var>> = vec![None; limit];
        let seed = self.constant(Tensor::ones(y_shape.0, y_shape.1));
        adj[y.0] = Some(seed);

        for i in (0..limit).rev() {
            let Some(g_out) = adj[i] else { continue };
            let op = self.nodes.borrow()[i].op.clone();
            let out_var = Var(i);
            match op {
                Op::Leaf | Op::Const => {}
                Op::Add(a, b) => {
                    let (ar, ac) = self.shape(a);
                    let (br, bc) = self.shape(b);
                    let ga = self.reduce_to(g_out, ar, ac);
                    self.accumulate(&mut adj, a.0, ga);
                    let gb = self.reduce_to(g_out, br, bc);
                    self.accumulate(&mut adj, b.0, gb);
                }
                Op::Sub(a, b) => {
                    let (ar, ac) = self.shape(a);
                    let (br, bc) = self.shape(b);
                    let ga = self.reduce_to(g_out, ar, ac);
                    self.accumulate(&mut adj, a.0, ga);
                    let neg = self.neg(g_out);
                    let gb = self.reduce_to(neg, br, bc);
                    self.accumulate(&mut adj, b.0, gb);
                }
                Op::Mul(a, b) => {
                    let (ar, ac) = self.shape(a);
                    let (br, bc) = self.shape(b);
                    let gb_full = self.mul(g_out, a);
                    let ga_full = self.mul(g_out, b);
                    let ga = self.reduce_to(ga_full, ar, ac);
                    self.accumulate(&mut adj, a.0, ga);
                    let gb = self.reduce_to(gb_full, br, bc);
                    self.accumulate(&mut adj, b.0, gb);
                }
                Op::Div(a, b) => {
                    let (ar, ac) = self.shape(a);
                    let (br, bc) = self.shape(b);
                    // d/da (a/b) = 1/b ; d/db (a/b) = -a/b²
                    let ga_full = self.div(g_out, b);
                    let ga = self.reduce_to(ga_full, ar, ac);
                    self.accumulate(&mut adj, a.0, ga);
                    let b2 = self.mul(b, b);
                    let t = self.div(a, b2);
                    let t = self.mul(g_out, t);
                    let t = self.neg(t);
                    let gb = self.reduce_to(t, br, bc);
                    self.accumulate(&mut adj, b.0, gb);
                }
                Op::Neg(x) => {
                    let gx = self.neg(g_out);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::MatMul(a, b) => {
                    let bt = self.transpose(b);
                    let ga = self.matmul(g_out, bt);
                    self.accumulate(&mut adj, a.0, ga);
                    let at = self.transpose(a);
                    let gb = self.matmul(at, g_out);
                    self.accumulate(&mut adj, b.0, gb);
                }
                Op::Transpose(x) => {
                    let gx = self.transpose(g_out);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::SumAll(x) => {
                    let (r, c) = self.shape(x);
                    let gx = self.broadcast_to(g_out, r, c);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::SumRows(x) | Op::SumCols(x) => {
                    let (r, c) = self.shape(x);
                    let gx = self.broadcast_to(g_out, r, c);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Broadcast(x) => {
                    let (r, c) = self.shape(x);
                    let gx = self.reduce_to(g_out, r, c);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::MulScalar(x, cst) => {
                    let gx = self.mul_scalar(g_out, cst);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::AddScalar(x) => {
                    self.accumulate(&mut adj, x.0, g_out);
                }
                Op::PowScalar(x, p) => {
                    // d/dx x^p = p·x^(p-1)
                    let xp = self.pow_scalar(x, p - 1.0);
                    let xp = self.mul_scalar(xp, p);
                    let gx = self.mul(g_out, xp);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Exp(x) => {
                    let gx = self.mul(g_out, out_var);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Ln(x) => {
                    let gx = self.div(g_out, x);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Sqrt(x) => {
                    // d/dx √x = 1/(2√x) = 1/(2·out)
                    let half = self.mul_scalar(g_out, 0.5);
                    let gx = self.div(half, out_var);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Tanh(x) => {
                    let one_minus = self.tanh_grad(out_var);
                    let gx = self.mul(g_out, one_minus);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::Sigmoid(x) => {
                    let t = self.sigmoid_grad(out_var);
                    let gx = self.mul(g_out, t);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::TanhGrad(y) => {
                    // u = 1 − y² ⇒ du/dy = −2y.
                    let t = self.mul_scalar(y, -2.0);
                    let gy = self.mul(g_out, t);
                    self.accumulate(&mut adj, y.0, gy);
                }
                Op::SigmoidGrad(y) => {
                    // u = y − y² ⇒ du/dy = 1 − 2y.
                    let t = self.mul_scalar(y, -2.0);
                    let t = self.add_scalar(t, 1.0);
                    let gy = self.mul(g_out, t);
                    self.accumulate(&mut adj, y.0, gy);
                }
                Op::Relu(x) => {
                    // Mask is a constant w.r.t. further differentiation
                    // (d²/dx² relu = 0 almost everywhere).
                    let mask = self.with_value(x, |t| t.apply(UnaryOp::ReluMask));
                    let mask = self.constant(mask);
                    let gx = self.mul(g_out, mask);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::LeakyRelu(x, alpha) => {
                    let mask = self.with_value(x, |t| t.apply(UnaryOp::LeakyReluMask(alpha)));
                    let mask = self.constant(mask);
                    let gx = self.mul(g_out, mask);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let (_, w) = self.shape(p);
                        let gp = self.slice_cols(g_out, offset, w);
                        self.accumulate(&mut adj, p.0, gp);
                        offset += w;
                    }
                }
                Op::SliceCols(x, start) => {
                    let (_, total) = self.shape(x);
                    let gx = self.pad_cols(g_out, start, total);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::PadCols(x, start) => {
                    let (_, w) = self.shape(x);
                    let gx = self.slice_cols(g_out, start, w);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::SelectRows(x, idx) => {
                    let (rows, _) = self.shape(x);
                    let gx = self.scatter_rows(g_out, &idx, rows);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::ScatterRows(x, idx) => {
                    let gx = self.select_rows(g_out, &idx);
                    self.accumulate(&mut adj, x.0, gx);
                }
                Op::AffineAct(x, w, b, act) => {
                    // Adjoint at the pre-activation `s = x@w + b`, recovered
                    // from the fused *output* alone: tanh/sigmoid gradients
                    // are functions of the output, and the relu/leaky masks
                    // share the output's sign (leaky needs α > 0, asserted
                    // at construction; −0.0 ≥ 0 keeps the edge case exact).
                    // These are the very formulas the unfused activation
                    // arms above emit, so fused and unfused backward — and
                    // double backward — are bit-identical.
                    let g_s = match act {
                        FusedAct::Tanh => {
                            let one_minus = self.tanh_grad(out_var);
                            self.mul(g_out, one_minus)
                        }
                        FusedAct::Sigmoid => {
                            let t = self.sigmoid_grad(out_var);
                            self.mul(g_out, t)
                        }
                        FusedAct::Relu => {
                            let mask = self.with_value(out_var, |t| t.apply(UnaryOp::ReluMask));
                            let mask = self.constant(mask);
                            self.mul(g_out, mask)
                        }
                        FusedAct::LeakyRelu(alpha) => {
                            let mask = self
                                .with_value(out_var, |t| t.apply(UnaryOp::LeakyReluMask(alpha)));
                            let mask = self.constant(mask);
                            self.mul(g_out, mask)
                        }
                    };
                    // Bias add, then matmul — exactly the unfused adjoints.
                    let (br, bc) = self.shape(b);
                    let gb = self.reduce_to(g_s, br, bc);
                    self.accumulate(&mut adj, b.0, gb);
                    let wt = self.transpose(w);
                    let gx = self.matmul(g_s, wt);
                    self.accumulate(&mut adj, x.0, gx);
                    let xt = self.transpose(x);
                    let gw = self.matmul(xt, g_s);
                    self.accumulate(&mut adj, w.0, gw);
                }
                Op::RowNormEps(x) => {
                    // Unfused chain: sq = x·x, s = Σ_cols sq, out = √(s+eps).
                    // Sqrt adjoint (g/2·out) passes through add_scalar
                    // unchanged, broadcasts back over the row, then the
                    // x·x product contributes twice — mirrored literally so
                    // node values match the unfused backward bit for bit.
                    let (r, c) = self.shape(x);
                    let half = self.mul_scalar(g_out, 0.5);
                    let g_norm = self.div(half, out_var);
                    let g_sq = self.broadcast_to(g_norm, r, c);
                    let p = self.mul(g_sq, x);
                    let q = self.mul(g_sq, x);
                    let gx = self.add(q, p);
                    self.accumulate(&mut adj, x.0, gx);
                }
            }
        }

        wrt.iter()
            .map(|v| match adj.get(v.0).copied().flatten() {
                Some(g) => g,
                None => {
                    let (r, c) = self.shape(*v);
                    self.constant(Tensor::zeros(r, c))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite-difference check of `grad` for a scalar-valued builder.
    fn check_grad(build: impl Fn(&Graph, Var) -> Var, x0: Tensor, tol: f32) {
        let g = Graph::new();
        let x = g.leaf(x0.clone());
        let y = build(&g, x);
        assert_eq!(g.shape(y), (1, 1), "builder must produce a scalar");
        let dx = g.grad(y, &[x])[0];
        let analytic = g.value(dx);

        let eps = 1e-3f32;
        for i in 0..x0.len() {
            let mut plus = x0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = x0.clone();
            minus.as_mut_slice()[i] -= eps;
            let gp = Graph::new();
            let vp = gp.leaf(plus);
            let yp = build(&gp, vp).0;
            let fp = gp.nodes.borrow()[yp].value.item();
            let gm = Graph::new();
            let vm = gm.leaf(minus);
            let ym = build(&gm, vm).0;
            let fm = gm.nodes.borrow()[ym].value.item();
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::rand_uniform(rows, cols, 0.2, 1.5, &mut rng)
    }

    #[test]
    fn grad_add_mul() {
        check_grad(
            |g, x| {
                let y = g.mul(x, x);
                let z = g.add(y, x);
                g.sum_all(z)
            },
            random_tensor(2, 3, 1),
            1e-2,
        );
    }

    #[test]
    fn grad_div() {
        check_grad(
            |g, x| {
                let c = g.leaf(Tensor::full(2, 3, 2.0));
                let y = g.div(c, x);
                g.sum_all(y)
            },
            random_tensor(2, 3, 2),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        check_grad(
            |g, x| {
                let w = g.leaf(Tensor::from_rows(&[&[0.5, -1.0], &[2.0, 0.3], &[1.0, 1.0]]));
                let y = g.matmul(x, w);
                let y = g.mul(y, y);
                g.sum_all(y)
            },
            random_tensor(2, 3, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_broadcast_bias() {
        check_grad(
            |g, x| {
                let b = g.leaf(Tensor::row(&[1.0, -2.0, 0.5]));
                let y = g.add(x, b);
                let y = g.mul(y, y);
                g.sum_all(y)
            },
            random_tensor(4, 3, 4),
            1e-2,
        );
    }

    #[test]
    fn grad_through_bias_itself() {
        // Gradient w.r.t. a broadcast row vector must sum over the batch.
        let g = Graph::new();
        let x = g.leaf(Tensor::ones(4, 3));
        let b = g.leaf(Tensor::row(&[0.0, 0.0, 0.0]));
        let y = g.add(x, b);
        let s = g.sum_all(y);
        let db = g.grad(s, &[b])[0];
        assert_eq!(g.value(db), Tensor::row(&[4.0, 4.0, 4.0]));
    }

    #[test]
    fn grad_activations() {
        for act in ["tanh", "sigmoid", "exp", "ln", "sqrt", "leaky"] {
            check_grad(
                move |g, x| {
                    let y = match act {
                        "tanh" => g.tanh(x),
                        "sigmoid" => g.sigmoid(x),
                        "exp" => g.exp(x),
                        "ln" => g.ln(x),
                        "sqrt" => g.sqrt(x),
                        _ => g.leaky_relu(x, 0.2),
                    };
                    g.sum_all(y)
                },
                random_tensor(3, 2, 5),
                2e-2,
            );
        }
    }

    #[test]
    fn grad_softmax() {
        check_grad(
            |g, x| {
                let s = g.softmax_rows(x);
                let w = g.leaf(Tensor::from_rows(&[&[1.0, -1.0, 2.0], &[0.5, 0.5, -0.5]]));
                let y = g.mul(s, w);
                g.sum_all(y)
            },
            random_tensor(2, 3, 6),
            2e-2,
        );
    }

    #[test]
    fn grad_concat_slice() {
        check_grad(
            |g, x| {
                let a = g.slice_cols(x, 0, 2);
                let b = g.slice_cols(x, 2, 1);
                let b3 = g.concat_cols(&[b, b, b]);
                let sum = g.add(a, g.slice_cols(b3, 0, 2));
                let y = g.mul(sum, sum);
                g.sum_all(y)
            },
            random_tensor(3, 3, 7),
            1e-2,
        );
    }

    #[test]
    fn grad_accumulates_over_multiple_uses() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0));
        let y = g.add(x, x); // y = 2x
        let z = g.mul(y, x); // z = 2x²; dz/dx = 4x = 12
        let dx = g.grad(z, &[x])[0];
        assert_eq!(g.value(dx).item(), 12.0);
    }

    #[test]
    fn second_order_polynomial() {
        // y = x⁴ ; y' = 4x³ ; y'' = 12x²
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        let x2 = g.mul(x, x);
        let y = g.mul(x2, x2);
        let dy = g.grad(y, &[x])[0];
        assert_eq!(g.value(dy).item(), 32.0);
        let d2y = g.grad(dy, &[x])[0];
        assert_eq!(g.value(d2y).item(), 48.0);
    }

    #[test]
    fn second_order_through_matmul_chain() {
        // Gradient-penalty shape: f(w) = (‖∇_x (x W)·v‖ - 1)², check df/dW
        // numerically via a double-backward construction.
        let mut rng = StdRng::seed_from_u64(11);
        let w0 = Tensor::randn(3, 2, &mut rng);
        let x0 = Tensor::randn(4, 3, &mut rng);

        let f = |w_t: &Tensor| -> f32 {
            let g = Graph::new();
            let w = g.leaf(w_t.clone());
            let x = g.leaf(x0.clone());
            let out = g.matmul(x, w); // (4,2)
            let act = g.tanh(out);
            let s = g.sum_all(act);
            let gx = g.grad(s, &[x])[0]; // (4,3) — depends on w
            let norm = g.l2_norm_rows(gx, 1e-12); // (4,1)
            let shifted = g.add_scalar(norm, -1.0);
            let pen = g.mul(shifted, shifted);
            let y = g.mean_all(pen);
            g.value(y).item()
        };

        // Analytic dGP/dW via double backward.
        let g = Graph::new();
        let w = g.leaf(w0.clone());
        let x = g.leaf(x0.clone());
        let out = g.matmul(x, w);
        let act = g.tanh(out);
        let s = g.sum_all(act);
        let gx = g.grad(s, &[x])[0];
        let norm = g.l2_norm_rows(gx, 1e-12);
        let shifted = g.add_scalar(norm, -1.0);
        let pen = g.mul(shifted, shifted);
        let y = g.mean_all(pen);
        let dw = g.grad(y, &[w])[0];
        let analytic = g.value(dw);

        let eps = 1e-2f32;
        for i in 0..w0.len() {
            let mut plus = w0.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = w0.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric = (f(&plus) - f(&minus)) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() <= 2e-2 * (1.0 + numeric.abs()),
                "double-backward mismatch at {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_select_rows_scatter_adds() {
        // y = sum(select_rows(x, [0, 0, 2])) ⇒ dx row 0 gets 2, row 2 gets 1.
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]));
        let s = g.select_rows(x, &[0, 0, 2]);
        let y = g.sum_all(s);
        let dx = g.grad(y, &[x])[0];
        assert_eq!(g.value(dx), Tensor::from_rows(&[&[2.0, 2.0], &[0.0, 0.0], &[1.0, 1.0]]));
    }

    #[test]
    fn grad_scatter_rows_selects() {
        let g = Graph::new();
        let x = g.leaf(Tensor::from_rows(&[&[1.0], &[2.0]]));
        let s = g.scatter_rows(x, &[2, 0], 4);
        assert_eq!(g.value(s), Tensor::from_rows(&[&[2.0], &[0.0], &[1.0], &[0.0]]));
        let w = g.leaf(Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
        let y = g.sum_all(g.mul(s, w));
        let dx = g.grad(y, &[x])[0];
        assert_eq!(g.value(dx), Tensor::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn unreachable_var_gets_zero_grad() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(1.0));
        let z = g.leaf(Tensor::row(&[1.0, 2.0]));
        let y = g.mul(x, x);
        let gz = g.grad(y, &[z])[0];
        assert_eq!(g.value(gz), Tensor::zeros(1, 2));
    }
}
