//! # gtv-tensor
//!
//! Dense 2-D `f32` tensor and an eager define-by-run autograd engine with
//! **higher-order gradients**, built for the GTV (tabular GAN via vertical
//! federated learning) reproduction.
//!
//! Two layers:
//!
//! * [`Tensor`] — plain numeric matrix with broadcasting, matmul, reductions
//!   and the slicing/concatenation primitives vertical federated learning
//!   needs.
//! * [`Graph`] / [`Var`] — an arena-based computation graph. Every op
//!   evaluates eagerly; [`Graph::grad`] *constructs the backward pass as new
//!   graph nodes*, so gradients are themselves differentiable. That property
//!   is what makes the WGAN-GP gradient penalty (a second-order construct)
//!   expressible without any special casing.
//!
//! Hot loops (matmul, elementwise kernels, reductions) run on a
//! deterministic worker pool ([`pool`]): chunk boundaries depend only on
//! problem size, so results are **bit-identical** for any `GTV_THREADS`
//! setting — see DESIGN.md §8 for the full contract. The inner loops are
//! portable 8-lane SIMD micro-kernels ([`simd`] — vectorized tanh /
//! sigmoid / exp with documented ULP bounds and bit-identical scalar
//! tails), and whether an op fans out to the pool at all is a pure
//! function of problem size ([`dispatch`]), so small ops stay inline on
//! the calling thread.
//!
//! Tensor storage comes from a shape-keyed recycling pool ([`pool_mem`]):
//! [`Graph::reset`] returns a finished step's node storage for reuse by the
//! next step, which removes almost all allocation from the training hot
//! loop — see DESIGN.md §9 for the memory model.
//!
//! # Examples
//!
//! ```
//! use gtv_tensor::{Graph, Tensor};
//!
//! // d²/dx² of x³ at x = 2 is 6x = 12.
//! let g = Graph::new();
//! let x = g.leaf(Tensor::scalar(2.0));
//! let x2 = g.mul(x, x);
//! let y = g.mul(x2, x);
//! let dy = g.grad(y, &[x])[0];
//! let d2y = g.grad(dy, &[x])[0];
//! assert_eq!(g.value(d2y).item(), 12.0);
//! ```

mod backward;
pub mod dispatch;
mod graph;
mod kernels;
pub mod pool;
pub mod pool_mem;
pub mod simd;
mod tensor;

pub use graph::{Graph, Var};
pub use kernels::{BinaryOp, FusedAct, UnaryOp};
pub use tensor::Tensor;
