//! Size-keyed kernel dispatch thresholds (DESIGN.md §8).
//!
//! Every kernel decides **inline vs. worker pool** by comparing its problem
//! size against one of the thresholds below. Two properties matter:
//!
//! * the comparison keys on the problem size *only* — never on the thread
//!   count, queue depth, or any other runtime state — so the decision is
//!   reproducible from the op's shape alone;
//! * the threshold picks *where* the chunks run, never how the buffer is
//!   cut: chunk boundaries come from the fixed block constants in
//!   `kernels.rs`, and the inline path executes the identical chunked
//!   computation. Results are therefore bit-identical whichever side of the
//!   threshold an op lands on — which is also why the test-only overrides
//!   below cannot break determinism.
//!
//! The defaults are deliberately high. The pool's parallel path must
//! snapshot its input into an `Arc` and move boxed closures through a
//! channel; measured on the BENCH_tensor host, that tax exceeds the entire
//! inline cost of a 1M-element elementwise op. Sub-threshold work therefore
//! runs inline even when `GTV_THREADS > 1` — this is what fixed the
//! `speedup_vs_1 < 1.0` rows for `elementwise_tanh_1m`/`reduction_sum_1m`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default minimum element count before an elementwise map is dispatched to
/// the worker pool (4 Mi elements).
pub const ELEM_PAR_MIN: usize = 1 << 22;
/// Default minimum element count before a reduction (sum, row/col sums,
/// row norms) is dispatched to the worker pool (4 Mi elements).
pub const REDUCE_PAR_MIN: usize = 1 << 22;
/// Default minimum multiply-accumulate count (`n·k·m`) before a matmul is
/// dispatched to the worker pool.
pub const MATMUL_PAR_MIN: usize = 1 << 18;

static ELEM: AtomicUsize = AtomicUsize::new(ELEM_PAR_MIN);
static REDUCE: AtomicUsize = AtomicUsize::new(REDUCE_PAR_MIN);
static MATMUL: AtomicUsize = AtomicUsize::new(MATMUL_PAR_MIN);

/// Elementwise maps with fewer elements than this run inline.
#[inline]
pub fn elem_par_min() -> usize {
    ELEM.load(Ordering::Relaxed)
}

/// Reductions over fewer elements than this run inline.
#[inline]
pub fn reduce_par_min() -> usize {
    REDUCE.load(Ordering::Relaxed)
}

/// Matmuls with fewer multiply-accumulates than this run inline.
#[inline]
pub fn matmul_par_min() -> usize {
    MATMUL.load(Ordering::Relaxed)
}

/// Test-only override of the dispatch thresholds, so determinism suites can
/// force small tensors across the worker pool. Safe with respect to the
/// §8 contract: thresholds select inline-vs-pool, never chunk boundaries.
#[doc(hidden)]
pub fn set_par_mins(elem: usize, reduce: usize, matmul: usize) {
    ELEM.store(elem, Ordering::Relaxed);
    REDUCE.store(reduce, Ordering::Relaxed);
    MATMUL.store(matmul, Ordering::Relaxed);
}

/// Restores the default thresholds after a [`set_par_mins`] override.
#[doc(hidden)]
pub fn reset_par_mins() {
    set_par_mins(ELEM_PAR_MIN, REDUCE_PAR_MIN, MATMUL_PAR_MIN);
}
