//! Dense, row-major, two-dimensional `f32` tensor.
//!
//! Everything in the GTV stack is batched 2-D data (`rows` = batch,
//! `cols` = features), so the tensor type is deliberately specialized to two
//! dimensions: scalars are `1×1`, row vectors `1×n`, column vectors `n×1`.
//! Broadcasting follows NumPy semantics restricted to those shapes.

use crate::kernels::{self, BinaryOp, UnaryOp};
use crate::pool_mem;
use rand::Rng;
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use gtv_tensor::Tensor;
///
/// let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})[", self.rows, self.cols)?;
        let n = self.data.len().min(8);
        for (i, v) in self.data[..n].iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > n {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Tensor {
    /// Creates a tensor from a raw row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = pool_mem::take(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// A `1×1` tensor holding `v`.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// A `1×n` row vector.
    pub fn row(v: &[f32]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// An `n×1` column vector.
    pub fn col(v: &[f32]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::from_vec(rows, cols, pool_mem::take_zeroed(rows * cols))
    }

    /// All-ones tensor of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self::from_vec(rows, cols, pool_mem::take_filled(rows * cols, v))
    }

    /// Identity matrix of size `n×n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a tensor by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = pool_mem::take(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Standard-normal samples in the given shape (Box–Muller).
    pub fn randn(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let n = rows * cols;
        let mut data = pool_mem::take(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos());
            if data.len() < n {
                data.push(r * theta.sin());
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let mut data = pool_mem::take(rows * cols);
        data.extend((0..rows * cols).map(|_| rng.gen_range(lo..hi)));
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor and parks its storage in the thread-local
    /// recycling pool ([`crate::pool_mem`]) for the next same-shaped
    /// allocation. Dropping a tensor normally is always correct; recycling
    /// is the fast path the training loop uses via `Graph::reset`.
    pub fn recycle(self) {
        pool_mem::give(self.data);
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1×1` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.shape(),
            (1, 1),
            "item() requires a 1x1 tensor, got {}x{}",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Applies `f` elementwise, returning a new tensor. Always runs on the
    /// calling thread; hot paths use [`Tensor::apply`] with a named kernel
    /// instead.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut data = pool_mem::take(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Self::from_vec(self.rows, self.cols, data)
    }

    /// Applies a named unary kernel elementwise, chunked over the worker
    /// pool for large tensors (bit-identical at any thread count).
    pub fn apply(&self, op: UnaryOp) -> Self {
        Self::from_vec(self.rows, self.cols, kernels::unary(&self.data, op))
    }

    /// Broadcasting combine with a named binary kernel. The same-shape fast
    /// path is chunked over the worker pool for large tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip_op(&self, other: &Self, op: BinaryOp) -> Self {
        if self.shape() == other.shape() {
            return Self::from_vec(
                self.rows,
                self.cols,
                kernels::binary(&self.data, &other.data, op),
            );
        }
        self.zip(other, |a, b| op.eval(a, b))
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    fn broadcast_index(&self, r: usize, c: usize) -> f32 {
        let rr = if self.rows == 1 { 0 } else { r };
        let cc = if self.cols == 1 { 0 } else { c };
        self.data[rr * self.cols + cc]
    }

    /// Output shape of broadcasting `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible (each dimension must
    /// be equal or one of them `1`).
    pub fn broadcast_shape(&self, other: &Self) -> (usize, usize) {
        let rows = match (self.rows, other.rows) {
            (a, b) if a == b => a,
            (1, b) => b,
            (a, 1) => a,
            (a, b) => panic!("cannot broadcast rows {a} with {b}"),
        };
        let cols = match (self.cols, other.cols) {
            (a, b) if a == b => a,
            (1, b) => b,
            (a, 1) => a,
            (a, b) => panic!("cannot broadcast cols {a} with {b}"),
        };
        (rows, cols)
    }

    /// Broadcasting elementwise combine.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        let (rows, cols) = self.broadcast_shape(other);
        // Fast path: identical shapes.
        if self.shape() == other.shape() {
            let mut data = pool_mem::take(rows * cols);
            data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
            return Self::from_vec(rows, cols, data);
        }
        let mut data = pool_mem::take(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(self.broadcast_index(r, c), other.broadcast_index(r, c)));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Broadcasting addition.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_op(other, BinaryOp::Add)
    }

    /// Broadcasting subtraction.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_op(other, BinaryOp::Sub)
    }

    /// Broadcasting elementwise multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_op(other, BinaryOp::Mul)
    }

    /// Broadcasting elementwise division.
    pub fn div(&self, other: &Self) -> Self {
        self.zip_op(other, BinaryOp::Div)
    }

    /// Adds `v` to every element.
    pub fn add_scalar(&self, v: f32) -> Self {
        self.apply(UnaryOp::AddScalar(v))
    }

    /// Multiplies every element by `v`.
    pub fn mul_scalar(&self, v: f32) -> Self {
        self.apply(UnaryOp::MulScalar(v))
    }

    /// Matrix product `self @ other`.
    ///
    /// Runs on the blocked kernels in [`crate::kernels`]: the zero-skipping
    /// fast path is only taken when the RHS is entirely finite, so IEEE
    /// non-finite propagation (`0·NaN = NaN`, `0·∞ = NaN`) is preserved and
    /// a diverged training run surfaces as NaNs instead of being masked as
    /// zeros. Results are bit-identical at any `GTV_THREADS` setting.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        Self::from_vec(n, m, kernels::matmul(n, k, m, &self.data, &other.data))
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut data = pool_mem::take_zeroed(self.data.len());
        for r in 0..self.rows {
            for c in 0..self.cols {
                data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Self::from_vec(self.cols, self.rows, data)
    }

    /// Sum of all elements as a `1×1` tensor (fixed-shape tree reduction,
    /// bit-identical at any thread count).
    pub fn sum_all(&self) -> Self {
        Self::scalar(kernels::sum(&self.data))
    }

    /// Column sums: `(n×m) → (1×m)`.
    pub fn sum_rows(&self) -> Self {
        Self::from_vec(1, self.cols, kernels::col_sums(&self.data, self.rows, self.cols))
    }

    /// Row sums: `(n×m) → (n×1)`.
    pub fn sum_cols(&self) -> Self {
        Self::from_vec(self.rows, 1, kernels::row_sums(&self.data, self.rows, self.cols))
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            kernels::sum(&self.data) / self.data.len() as f32
        }
    }

    /// Broadcasts to the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the current shape cannot be expanded (each dimension must
    /// already match or be `1`).
    pub fn broadcast_to(&self, rows: usize, cols: usize) -> Self {
        assert!(
            (self.rows == rows || self.rows == 1) && (self.cols == cols || self.cols == 1),
            "cannot broadcast {}x{} to {rows}x{cols}",
            self.rows,
            self.cols
        );
        if self.shape() == (rows, cols) {
            return self.clone();
        }
        Self::from_fn(rows, cols, |r, c| self.broadcast_index(r, c))
    }

    /// Horizontal concatenation of tensors with equal row counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut data = pool_mem::take(rows * cols);
        for r in 0..rows {
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols: row count mismatch");
                data.extend_from_slice(p.row_slice(r));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Vertical concatenation of tensors with equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Self]) -> Self {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = pool_mem::take(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column count mismatch");
            data.extend_from_slice(&p.data);
        }
        Self::from_vec(rows, cols, data)
    }

    /// Copies columns `start..start + width` into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn slice_cols(&self, start: usize, width: usize) -> Self {
        assert!(
            start + width <= self.cols,
            "slice_cols {start}..{} out of {} cols",
            start + width,
            self.cols
        );
        let mut data = pool_mem::take(self.rows * width);
        for r in 0..self.rows {
            let base = r * self.cols + start;
            data.extend_from_slice(&self.data[base..base + width]);
        }
        Self::from_vec(self.rows, width, data)
    }

    /// Embeds `self` into an all-zeros `rows×total_cols` tensor starting at
    /// column `start` (adjoint of [`Tensor::slice_cols`]).
    ///
    /// # Panics
    ///
    /// Panics if the slice does not fit.
    pub fn pad_cols(&self, start: usize, total_cols: usize) -> Self {
        assert!(start + self.cols <= total_cols, "pad_cols: slice does not fit");
        let mut out = Self::zeros(self.rows, total_cols);
        for r in 0..self.rows {
            let dst = r * total_cols + start;
            out.data[dst..dst + self.cols].copy_from_slice(self.row_slice(r));
        }
        out
    }

    /// Gathers the given rows into a new tensor (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = pool_mem::take(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
            data.extend_from_slice(self.row_slice(i));
        }
        Self::from_vec(indices.len(), self.cols, data)
    }

    /// Index of the maximum entry in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row_slice(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm (fixed-shape tree reduction of the squares).
    pub fn frob_norm(&self) -> f32 {
        kernels::sum_squares(&self.data).sqrt()
    }

    /// Maximum absolute element difference between two equal-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construct_and_index() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row_slice(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(4, 4, &mut rng);
        assert!(a.matmul(&Tensor::eye(4)).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_past_zero_entries() {
        // Regression: the old `a == 0.0` skip dropped 0·NaN and 0·∞ terms,
        // masking a diverged run as zeros. IEEE says both are NaN.
        let a = Tensor::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let b = Tensor::from_rows(&[&[f32::NAN, f32::INFINITY], &[2.0, 3.0]]);
        let c = a.matmul(&b);
        assert!(c.at(0, 0).is_nan(), "0·NaN + 1·2 must be NaN: {c:?}");
        assert!(c.at(0, 1).is_nan(), "0·∞ + 1·3 must be NaN: {c:?}");
        assert!(c.at(1, 0).is_nan(), "0·NaN + 0·2 must be NaN: {c:?}");
        assert!(c.at(1, 1).is_nan(), "0·∞ + 0·3 must be NaN: {c:?}");
    }

    #[test]
    fn matmul_propagates_nan_from_a_sparse_lhs() {
        // A mostly-zero LHS takes the zero-skipping kernel — a NaN in the
        // LHS itself must still poison its row (NaN == 0.0 is false).
        let a = Tensor::from_rows(&[&[0.0, f32::NAN, 0.0, 0.0], &[0.0, 0.0, 1.0, 0.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let c = a.matmul(&b);
        assert!(c.at(0, 0).is_nan(), "NaN row must stay NaN: {c:?}");
        assert_eq!(c.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(3, 5, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn broadcasting_row_and_col() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = Tensor::row(&[10.0, 20.0]);
        let c = Tensor::col(&[100.0, 200.0]);
        assert_eq!(a.add(&r), Tensor::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(a.add(&c), Tensor::from_rows(&[&[101.0, 102.0], &[203.0, 204.0]]));
        let s = Tensor::scalar(1.0);
        assert_eq!(a.add(&s), a.add_scalar(1.0));
    }

    #[test]
    #[should_panic(expected = "cannot broadcast rows")]
    fn broadcasting_rejects_incompatible() {
        let a = Tensor::zeros(2, 2);
        let b = Tensor::zeros(3, 2);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_all().item(), 10.0);
        assert_eq!(a.sum_rows(), Tensor::row(&[4.0, 6.0]));
        assert_eq!(a.sum_cols(), Tensor::col(&[3.0, 7.0]));
        assert_eq!(a.mean_all(), 2.5);
    }

    #[test]
    fn concat_slice_pad_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0], &[6.0]]);
        let cat = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 1), b);
        let padded = b.pad_cols(2, 3);
        assert_eq!(padded.at(0, 2), 5.0);
        assert_eq!(padded.at(0, 0), 0.0);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let cat = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.row_slice(2), &[5.0, 6.0]);
    }

    #[test]
    fn select_rows_gathers_and_repeats() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s, Tensor::from_rows(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_rows(&[&[0.1, 0.9, 0.5], &[2.0, 1.0, 2.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(200, 50, &mut rng);
        let mean = t.mean_all();
        let var = t.map(|v| (v - mean) * (v - mean)).mean_all();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn broadcast_to_expands() {
        let r = Tensor::row(&[1.0, 2.0]);
        let e = r.broadcast_to(3, 2);
        assert_eq!(e.shape(), (3, 2));
        assert_eq!(e.row_slice(2), &[1.0, 2.0]);
    }
}
