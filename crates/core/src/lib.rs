//! # gtv
//!
//! Reproduction of **"GTV: Generating Tabular Data via Vertical Federated
//! Learning"** (DSN 2025): training a conditional tabular GAN whose
//! generator and discriminator are split between a trusted-third-party
//! server and clients that each own a disjoint subset of *columns* for the
//! same individuals.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`NetPartition`] — the `D_{n4}^{n3} G_{n2}^{n1}` block partitions of
//!   Fig. 7;
//! * [`SplitGenerator`] / [`SplitDiscriminator`] — `G^t`/`G_i^b`,
//!   `D^t`/`D^s`/`D_i^b`;
//! * [`GtvTrainer`] — Algorithm 1 with WGAN-GP, CTGAN conditional vectors,
//!   *training-with-shuffling*, secure publication, and a byte-metered
//!   message trace;
//! * [`CentralizedTrainer`] — the paper's centralized baseline;
//! * [`ServerObserver`] — the Fig. 5/6 server reconstruction analysis.
//!
//! # Examples
//!
//! ```no_run
//! use gtv::{GtvConfig, GtvTrainer};
//! use gtv_data::Dataset;
//!
//! // Two organizations hold different columns of the same customers.
//! let table = Dataset::Adult.generate(1_000, 0);
//! let n = table.n_cols();
//! let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
//!
//! let mut trainer = GtvTrainer::new(shards, GtvConfig::default());
//! trainer.train().expect("transport is healthy");
//! let synthetic = trainer.synthesize(1_000, 42).expect("transport is healthy");
//! assert_eq!(synthetic.n_cols(), n);
//! ```

mod baseline;
mod config;
mod discriminator;
mod generator;
mod privacy;
mod synth;
mod trainer;

pub use baseline::CentralizedTrainer;
pub use config::{GtvConfig, IndexSharing, NetPartition};
pub use discriminator::SplitDiscriminator;
pub use generator::SplitGenerator;
pub use privacy::{
    column_truths, ClientIndexObserver, ColumnTruth, ReconstructionReport, ServerObserver,
};
pub use synth::{CondSpec, SynthError, SynthSpec, Synthesizer, MAX_ROWS_PER_REQUEST};
pub use trainer::{GtvTrainer, StepAllocStats, TrainHistory};
// The transport seam and protocol error surface, re-exported so downstream
// users of the trainer can build distributed deployments and match on
// protocol errors without depending on gtv-vfl directly.
pub use gtv_vfl::{
    Endpoint, InProcTransport, PartitionError, PartyNode, SocketTransport, Transport,
    TransportError,
};
