//! The centralized tabular-GAN baseline (§4.1).
//!
//! The paper's baseline is a CTGAN/CTAB-GAN hybrid: one-hot, mode-specific
//! and mixed-type encodings, CTGAN conditional vectors, a ResNet-style
//! generator (two residual blocks plus FC) and a two-FN-block
//! discriminator, trained with WGAN-GP. Structurally that is exactly GTV
//! with a single client holding every column — so the baseline wraps
//! [`GtvTrainer`] in that degenerate configuration, guaranteeing the
//! comparison isolates the *federation*, not incidental implementation
//! differences.

use crate::config::{GtvConfig, NetPartition};
use crate::trainer::{GtvTrainer, TrainHistory};
use gtv_data::Table;
use gtv_vfl::{NetStats, TransportError};

/// Centralized baseline trainer.
#[derive(Debug)]
pub struct CentralizedTrainer {
    inner: GtvTrainer,
}

impl CentralizedTrainer {
    /// Creates a centralized trainer over the full table.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn new(table: Table, mut config: GtvConfig) -> Self {
        // All blocks on the single party; the partition choice is irrelevant
        // to the math when there is one client, but `d2g0` keeps every
        // block at full width.
        config.partition = NetPartition::d2g0();
        Self { inner: GtvTrainer::new(vec![table], config) }
    }

    /// Runs the full configured training.
    ///
    /// # Errors
    ///
    /// Returns the first [`TransportError`] hit by the protocol simulation.
    pub fn train(&mut self) -> Result<(), TransportError> {
        self.inner.train()
    }

    /// Runs one round.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CentralizedTrainer::train`].
    pub fn train_round(&mut self) -> Result<(), TransportError> {
        self.inner.train_round()
    }

    /// Generates `n` synthetic rows.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if publishing a share fails.
    pub fn synthesize(&self, n: usize, seed: u64) -> Result<Table, TransportError> {
        self.inner.synthesize(n, seed)
    }

    /// Per-step loss history.
    pub fn history(&self) -> &TrainHistory {
        self.inner.history()
    }

    /// Per-step allocation snapshots (empty unless
    /// [`GtvConfig::alloc_stats`] is on).
    pub fn alloc_stats(&self) -> &[crate::StepAllocStats] {
        self.inner.alloc_stats()
    }

    /// Traffic counters of the degenerate single-client simulation,
    /// including the per-round windows opened by each training round —
    /// the baseline column of the communication-overhead comparison.
    pub fn network_stats(&self) -> NetStats {
        self.inner.network_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::Dataset;

    #[test]
    fn baseline_trains_and_synthesizes() {
        let table = Dataset::Loan.generate(100, 0);
        let mut trainer = CentralizedTrainer::new(table, GtvConfig::smoke());
        trainer.train_round().unwrap();
        let synth = trainer.synthesize(30, 0).unwrap();
        assert_eq!(synth.n_rows(), 30);
        assert_eq!(synth.n_cols(), 13);
        assert_eq!(trainer.history().g_loss.len(), 1);
    }
}
