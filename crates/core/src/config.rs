//! Configuration of GTV training runs.

use gtv_nn::AdamConfig;

/// How the generator's RN blocks and the discriminator's FN blocks are
/// partitioned between the server (top model) and each client (bottom
/// model) — the paper's `D_{n4}^{n3} G_{n2}^{n1}` notation (Fig. 7), where
/// superscripts count server blocks and subscripts per-client blocks.
///
/// The total block count per network is fixed (2, like the centralized
/// CTGAN baseline); the 9 combinations evaluated in §4.3.1 are the cross
/// product of `{2+0, 1+1, 0+2}` for both networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NetPartition {
    /// FN blocks in the server's `D^t` (`n3`).
    pub d_top: usize,
    /// FN blocks in each client's `D_i^b` (`n4`).
    pub d_bottom: usize,
    /// RN blocks in the server's `G^t` (`n1`).
    pub g_top: usize,
    /// RN blocks in each client's `G_i^b` (`n2`).
    pub g_bottom: usize,
}

impl NetPartition {
    /// Total blocks per network in the centralized baseline.
    pub const TOTAL_BLOCKS: usize = 2;

    /// Creates a partition.
    ///
    /// # Panics
    ///
    /// Panics unless `d_top + d_bottom == 2` and `g_top + g_bottom == 2`.
    pub fn new(d_top: usize, d_bottom: usize, g_top: usize, g_bottom: usize) -> Self {
        assert_eq!(d_top + d_bottom, Self::TOTAL_BLOCKS, "discriminator must have 2 blocks total");
        assert_eq!(g_top + g_bottom, Self::TOTAL_BLOCKS, "generator must have 2 blocks total");
        Self { d_top, d_bottom, g_top, g_bottom }
    }

    /// `D_0^2 G_0^2`: everything on the server (best ML utility in the
    /// paper together with [`NetPartition::d2g0`]).
    pub fn d2g2() -> Self {
        Self::new(2, 0, 2, 0)
    }

    /// `D_0^2 G_2^0`: discriminator on the server, generator on the clients
    /// (the paper's recommended configuration for even partitions).
    pub fn d2g0() -> Self {
        Self::new(2, 0, 0, 2)
    }

    /// All nine partitions of Fig. 7/8, in the paper's order.
    pub fn all_nine() -> Vec<NetPartition> {
        let splits = [(2, 0), (1, 1), (0, 2)];
        let mut out = Vec::with_capacity(9);
        for (d_top, d_bottom) in splits {
            for (g_top, g_bottom) in splits {
                out.push(Self::new(d_top, d_bottom, g_top, g_bottom));
            }
        }
        out
    }

    /// The paper's label, e.g. `D_0^2 G_2^0`.
    pub fn label(&self) -> String {
        format!("D_{}^{} G_{}^{}", self.d_bottom, self.d_top, self.g_bottom, self.g_top)
    }
}

impl std::fmt::Display for NetPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Who learns the selected data indices `idx_p` each round (§3.1.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexSharing {
    /// GTV's design: `idx_p` goes only to the server, which selects the
    /// matching rows from the clients' uploaded logits.
    #[default]
    Server,
    /// The alternative the paper analyses and rejects: `idx_p` is shared
    /// peer-to-peer with the other clients (cheaper — clients upload only
    /// the selected rows — but curious clients can mine the index stream
    /// for membership in minority categories; see
    /// [`GtvTrainer::client_index_observers`](crate::GtvTrainer::client_index_observers)).
    PeerToPeer,
}

/// Hyper-parameters of a GTV (or centralized-baseline) training run.
#[derive(Debug, Clone, PartialEq)]
pub struct GtvConfig {
    /// Network partition between server and clients.
    pub partition: NetPartition,
    /// Training rounds `R`.
    pub rounds: usize,
    /// Discriminator epochs per round `e` (WGAN-GP trains `D` more often).
    pub d_steps: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Σ of block output widths across parties (256 default, 768 enlarged).
    pub block_width: usize,
    /// Random-noise dimension fed to the generator.
    pub embedding_dim: usize,
    /// Max GMM modes for mode-specific normalization.
    pub max_modes: usize,
    /// WGAN-GP gradient-penalty coefficient λ.
    pub gp_lambda: f32,
    /// Gumbel-softmax temperature for one-hot output heads.
    pub gumbel_tau: f32,
    /// Optimizer settings (shared by generator and discriminator sides).
    pub adam: AdamConfig,
    /// Master seed (weights, noise, CV sampling, shuffle negotiation).
    pub seed: u64,
    /// How `idx_p` is disseminated (server-only vs the rejected
    /// peer-to-peer alternative).
    pub index_sharing: IndexSharing,
    /// Std-dev of Gaussian noise injected into every intermediate logit a
    /// client uploads (the §3.3 DP-style protection; `0` disables it). The
    /// paper chooses not to pay this accuracy cost — the knob exists to
    /// reproduce that trade-off.
    pub dp_noise_sigma: f32,
    /// Per-client multipliers on the proportional block widths (the paper's
    /// future-work idea of enlarging the network of a client with few
    /// features). Empty = all `1.0`. Must match the client count otherwise.
    pub client_width_multipliers: Vec<f32>,
    /// When `true`, non-selected clients pass their *entire* table through
    /// `D_i^b` each step and the server selects the `idx_p` rows from the
    /// uploaded logits (the paper's privacy-preserving real path). When
    /// `false`, row selection happens before the bottom pass —
    /// mathematically equivalent training, far cheaper, but the real-path
    /// message sizes are no longer the faithful ones. Enable for
    /// communication measurements.
    pub faithful_real_path: bool,
    /// Worker threads for the tensor hot loops. `0` (the default) resolves
    /// from the `GTV_THREADS` environment variable, falling back to the
    /// host's available parallelism. Results are bit-identical for every
    /// setting — the pool's chunking depends only on problem size (see
    /// DESIGN.md §8) — so this is purely a throughput knob.
    pub threads: usize,
    /// When `true` (the default), tensor storage freed by the end-of-step
    /// [`Graph::reset`](gtv_tensor::Graph::reset) is recycled through the
    /// shape-keyed buffer pool (DESIGN.md §9) instead of returned to the
    /// allocator. Recycled buffers are bit-identical to fresh ones; this is
    /// purely a throughput/allocator-pressure knob.
    pub pool_recycling: bool,
    /// When `true`, the trainer records a [`StepAllocStats`](crate::StepAllocStats)
    /// snapshot (live graph nodes, pool hits/misses, bytes requested) at the
    /// end of every training step, retrievable via
    /// [`GtvTrainer::alloc_stats`](crate::GtvTrainer::alloc_stats). Off by
    /// default — counters are always maintained, this only controls the
    /// per-step history.
    pub alloc_stats: bool,
    /// When `true` (the default), each protocol phase fans out *all*
    /// per-client messages before collecting any reply (payload encoding
    /// runs on the deterministic worker pool), and replies are collected in
    /// fixed party order. When `false`, every message waits for its reply
    /// before the next party is contacted (lockstep). Both schedules visit
    /// parties in the same order with the same data, so trained weights and
    /// synthetic output are bit-identical either way (DESIGN.md §10); this
    /// is purely a latency knob.
    pub pipelined_rounds: bool,
    /// When `true`, matrix payloads use [`WireCodec::Adaptive`](gtv_vfl::WireCodec):
    /// a matrix is sent as explicit `(index, value)` pairs whenever that is
    /// strictly smaller than the dense body (one-hot conditional vectors and
    /// ReLU-sparse gradients compress heavily). Decoding is bit-exact, so
    /// this only changes metered bytes, never trained values. Off by default
    /// so metered traffic matches the paper's dense accounting.
    pub sparse_wire: bool,
}

impl Default for GtvConfig {
    fn default() -> Self {
        Self {
            partition: NetPartition::d2g0(),
            rounds: 60,
            d_steps: 2,
            batch: 64,
            block_width: 256,
            embedding_dim: 64,
            max_modes: 5,
            gp_lambda: 10.0,
            gumbel_tau: 0.2,
            adam: AdamConfig::default(),
            seed: 0,
            index_sharing: IndexSharing::default(),
            dp_noise_sigma: 0.0,
            client_width_multipliers: Vec::new(),
            faithful_real_path: false,
            threads: 0,
            pool_recycling: true,
            alloc_stats: false,
            pipelined_rounds: true,
            sparse_wire: false,
        }
    }
}

impl GtvConfig {
    /// A small configuration for tests and examples (few rounds, narrow
    /// blocks).
    pub fn smoke() -> Self {
        Self {
            rounds: 4,
            d_steps: 1,
            batch: 32,
            block_width: 64,
            embedding_dim: 16,
            ..Self::default()
        }
    }

    /// Per-client block widths: `block_width` split proportionally to the
    /// ratio vector, then scaled by [`GtvConfig::client_width_multipliers`].
    ///
    /// # Panics
    ///
    /// Panics if multipliers are given but their count differs from the
    /// client count, or a multiplier is not positive.
    pub fn per_client_block_widths(&self, ratios: &[f64]) -> Vec<usize> {
        let mut widths = gtv_vfl::split_widths(self.block_width, ratios);
        if !self.client_width_multipliers.is_empty() {
            assert_eq!(
                self.client_width_multipliers.len(),
                ratios.len(),
                "need one width multiplier per client"
            );
            for (w, &m) in widths.iter_mut().zip(&self.client_width_multipliers) {
                assert!(m > 0.0, "width multipliers must be positive");
                *w = ((*w as f32) * m).round().max(1.0) as usize;
            }
        }
        widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_are_distinct_and_valid() {
        let nine = NetPartition::all_nine();
        assert_eq!(nine.len(), 9);
        for p in &nine {
            assert_eq!(p.d_top + p.d_bottom, 2);
            assert_eq!(p.g_top + p.g_bottom, 2);
        }
        let labels: std::collections::HashSet<String> = nine.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(NetPartition::d2g0().label(), "D_0^2 G_2^0");
        assert_eq!(NetPartition::d2g2().label(), "D_0^2 G_0^2");
    }

    #[test]
    #[should_panic(expected = "2 blocks total")]
    fn rejects_wrong_block_sum() {
        let _ = NetPartition::new(2, 1, 0, 2);
    }
}
