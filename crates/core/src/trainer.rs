//! The GTV training orchestration (Algorithm 1).
//!
//! Every training step builds one autograd graph spanning the simulated
//! parties, while every tensor that crosses a party boundary is also routed
//! through the byte-metered [`Network`] as a wire message — so the training
//! math is exactly the WGAN-GP objective of the paper *and* the message
//! trace (what each party can observe) is the protocol's. The server-side
//! [`ServerObserver`] accumulates precisely the `(CV, idx_p)` pairs a
//! semi-honest server sees, powering the Fig. 5/6 reconstruction analysis.

use crate::config::{GtvConfig, IndexSharing};
use crate::discriminator::SplitDiscriminator;
use crate::generator::SplitGenerator;
use crate::privacy::{column_truths, ClientIndexObserver, ColumnTruth, ServerObserver};
use gtv_cond::{ClientCondSampler, CondChoice, CondLayout};
use gtv_data::Table;
use gtv_encoders::TableTransformer;
use gtv_nn::{Adam, Ctx};
use gtv_tensor::{Graph, Tensor, Var};
use gtv_vfl::{
    negotiate_seed, MatrixPayload, Message, NetStats, Network, PartyId, SharedShuffler, Transport,
    TransportError, WireCodec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-step loss history.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Discriminator (critic) loss per `D` step.
    pub d_loss: Vec<f32>,
    /// Generator loss per `G` step.
    pub g_loss: Vec<f32>,
}

/// End-of-step allocation snapshot, recorded when
/// [`GtvConfig::alloc_stats`] is on. Pool counters are *cumulative* for the
/// calling thread; per-step deltas are differences between consecutive
/// entries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepAllocStats {
    /// Autograd nodes alive at the end of the step, released by
    /// [`Graph::reset`]. A growing value across identical steps is a leak.
    pub live_nodes: usize,
    /// Cumulative buffer-pool hits (requests served from recycled storage).
    pub pool_hits: u64,
    /// Cumulative buffer-pool misses (requests that hit the allocator).
    pub pool_misses: u64,
    /// Cumulative bytes requested from the pool.
    pub bytes_requested: u64,
}

struct ClientState {
    table: Table,
    transformer: TableTransformer,
    encoded: Tensor,
    sampler: Option<ClientCondSampler>,
    rng: StdRng,
}

struct CondRound {
    p: usize,
    choices: Vec<CondChoice>,
    indices: Vec<usize>,
    cv: Tensor,
}

/// The GTV trainer: a trusted-third-party server, `N` clients holding
/// vertically-partitioned columns, and the split GAN of the paper.
///
/// # Examples
///
/// ```no_run
/// use gtv::{GtvConfig, GtvTrainer};
/// use gtv_data::Dataset;
///
/// let table = Dataset::Loan.generate(500, 0);
/// let n = table.n_cols();
/// let shards = table.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
/// let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
/// trainer.train().expect("transport is healthy");
/// let synthetic = trainer.synthesize(200, 1).expect("transport is healthy");
/// assert_eq!(synthetic.n_rows(), 200);
/// ```
///
/// The trainer is generic over its [`Transport`] backend:
/// [`GtvTrainer::new`] runs everything in-process over [`Network`], while
/// [`GtvTrainer::with_transport`] accepts any backend — e.g. a
/// [`gtv_vfl::SocketTransport`] whose client parties are separate OS
/// processes. The protocol choreography (and therefore the byte trace) is
/// identical either way.
pub struct GtvTrainer<T: Transport = Network> {
    config: GtvConfig,
    clients: Vec<ClientState>,
    initial_tables: Vec<Table>,
    generator: SplitGenerator,
    discriminator: SplitDiscriminator,
    g_opt: Adam,
    d_opt: Adam,
    network: T,
    shuffler: SharedShuffler,
    layout: CondLayout,
    ratios: Vec<f64>,
    observer: ServerObserver,
    client_observers: Vec<ClientIndexObserver>,
    /// Maps current row positions to initial row ids (tracks the shared
    /// shuffle, which every client knows).
    current_to_initial: Vec<usize>,
    shuffling_enabled: bool,
    history: TrainHistory,
    alloc_history: Vec<StepAllocStats>,
    n_rows: usize,
    round: u64,
    step: u64,
    rng: StdRng,
}

impl<T: Transport> std::fmt::Debug for GtvTrainer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GtvTrainer({} clients, partition {}, round {}/{})",
            self.clients.len(),
            self.config.partition,
            self.round,
            self.config.rounds
        )
    }
}

fn payload_of(t: &Tensor) -> MatrixPayload {
    MatrixPayload::new(t.rows() as u32, t.cols() as u32, t.as_slice().to_vec())
}

impl GtvTrainer {
    /// Creates an in-process trainer from the clients' (row-aligned) local
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, row counts differ, or any table is
    /// empty.
    pub fn new(tables: Vec<Table>, config: GtvConfig) -> Self {
        let network = Network::new(tables.len());
        Self::with_transport(tables, config, network)
            // gtv-lint: allow(panic) -- fresh in-process network, all inboxes open, no faults armed yet
            .expect("seed negotiation on a fresh network")
    }
}

impl<T: Transport> GtvTrainer<T> {
    /// Creates a trainer over an arbitrary [`Transport`] backend — the
    /// distributed entry point. With a [`gtv_vfl::SocketTransport`], the
    /// client parties' inboxes live in other OS processes and every
    /// protocol message genuinely crosses the socket.
    ///
    /// # Errors
    ///
    /// Returns the first [`TransportError`] from the construction-time
    /// shuffle-seed negotiation (e.g. a party that is unreachable or
    /// disconnects during the exchange).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is empty, row counts differ, or any table is
    /// empty.
    pub fn with_transport(
        tables: Vec<Table>,
        config: GtvConfig,
        network: T,
    ) -> Result<Self, TransportError> {
        assert!(!tables.is_empty(), "need at least one client table");
        // Size the tensor worker pool before any hot-loop work; results are
        // bit-identical for every thread count (DESIGN.md §8), and so is
        // buffer recycling (DESIGN.md §9).
        gtv_tensor::pool::set_threads(gtv_tensor::pool::resolve_threads(config.threads));
        gtv_tensor::pool_mem::set_enabled(config.pool_recycling);
        let n_rows = tables[0].n_rows();
        assert!(n_rows > 0, "client tables must be non-empty");
        assert!(
            tables.iter().all(|t| t.n_rows() == n_rows),
            "client tables must be row-aligned (same row count)"
        );
        let n_clients = tables.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Clients encode their local columns (Algorithm 1, step 1).
        let mut clients = Vec::with_capacity(n_clients);
        for (i, table) in tables.iter().enumerate() {
            let transformer =
                TableTransformer::fit(table, config.max_modes, config.seed.wrapping_add(i as u64));
            let encoded = transformer.encode(table, config.seed.wrapping_add(1000 + i as u64));
            let sampler = ClientCondSampler::from_table(table);
            clients.push(ClientState {
                table: table.clone(),
                transformer,
                encoded,
                sampler,
                rng: StdRng::seed_from_u64(config.seed.wrapping_add(2000 + i as u64)),
            });
        }

        let layout = CondLayout::new(
            clients
                .iter()
                .map(|c| c.sampler.as_ref().map_or(0, ClientCondSampler::width))
                .collect(),
        );
        let total_cols: usize = tables.iter().map(Table::n_cols).sum();
        let ratios: Vec<f64> =
            tables.iter().map(|t| t.n_cols() as f64 / total_cols as f64).collect();

        let client_widths: Vec<usize> = clients.iter().map(|c| c.transformer.width()).collect();
        let client_spans: Vec<Vec<gtv_encoders::Span>> =
            clients.iter().map(|c| c.transformer.spans()).collect();

        let g_input = config.embedding_dim + layout.total_width();
        let generator =
            SplitGenerator::new(&config, g_input, &ratios, &client_widths, client_spans, &mut rng);
        let discriminator = SplitDiscriminator::new(
            &config,
            &client_widths,
            &ratios,
            layout.total_width(),
            &mut rng,
        );

        let g_opt = Adam::new(gtv_nn::Module::params(&generator), config.adam);
        let d_opt = Adam::new(gtv_nn::Module::params(&discriminator), config.adam);

        if config.sparse_wire {
            network.set_codec(WireCodec::Adaptive);
        }
        // Clients negotiate the shared shuffle seed peer-to-peer; the server
        // never observes it (§3.1.5).
        let seeds = negotiate_seed(&network, n_clients, config.seed.wrapping_add(7))?;
        let shuffler = SharedShuffler::new(seeds[0]);

        let observer = ServerObserver::new(n_rows, layout.total_width());
        let client_observers = (0..n_clients).map(|_| ClientIndexObserver::new(n_rows)).collect();
        Ok(Self {
            config,
            initial_tables: tables,
            clients,
            generator,
            discriminator,
            g_opt,
            d_opt,
            network,
            shuffler,
            layout,
            ratios,
            observer,
            client_observers,
            current_to_initial: (0..n_rows).collect(),
            shuffling_enabled: true,
            history: TrainHistory::default(),
            alloc_history: Vec::new(),
            n_rows,
            round: 0,
            step: 0,
            rng,
        })
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// The run configuration.
    pub fn config(&self) -> &GtvConfig {
        &self.config
    }

    /// The metered transport (inspect traffic with [`Transport::stats`]).
    pub fn network(&self) -> &T {
        &self.network
    }

    /// Traffic counters so far.
    pub fn network_stats(&self) -> NetStats {
        self.network.stats()
    }

    /// The server's accumulated `(CV, idx)` observations.
    pub fn observer(&self) -> &ServerObserver {
        &self.observer
    }

    /// What each curious client accumulated from the peer-to-peer index
    /// stream (§3.1.6; empty counts under the default server-side sharing).
    pub fn client_index_observers(&self) -> &[ClientIndexObserver] {
        &self.client_observers
    }

    /// Per-step loss history.
    pub fn history(&self) -> &TrainHistory {
        &self.history
    }

    /// Per-step allocation snapshots (empty unless
    /// [`GtvConfig::alloc_stats`] is on).
    pub fn alloc_stats(&self) -> &[StepAllocStats] {
        &self.alloc_history
    }

    /// End-of-step bookkeeping: optionally snapshot the allocation counters,
    /// then return the step's graph storage to the recycling pool
    /// (DESIGN.md §9). Leaf tensors — parameters and data bound into the
    /// graph — are pinned and survive the reset untouched.
    fn finish_step(&mut self, g: &Graph) {
        if self.config.alloc_stats {
            let s = gtv_tensor::pool_mem::stats();
            self.alloc_history.push(StepAllocStats {
                live_nodes: g.len(),
                pool_hits: s.hits,
                pool_misses: s.misses,
                bytes_requested: s.bytes_requested,
            });
        }
        g.reset();
    }

    /// The global conditional-vector layout.
    pub fn cond_layout(&self) -> &CondLayout {
        &self.layout
    }

    /// Ground truth (in initial row order) for the reconstruction analysis.
    pub fn column_truths(&self) -> Vec<ColumnTruth> {
        column_truths(&self.initial_tables, &self.layout)
    }

    /// Enables/disables *training-with-shuffling* (enabled by default;
    /// disabling reproduces the Fig. 5 vulnerability).
    pub fn set_shuffling(&mut self, enabled: bool) {
        self.shuffling_enabled = enabled;
    }

    /// Sends one message and pops it at the recipient, checking the popped
    /// variant matches what was sent — a stray message in the inbox surfaces
    /// as [`TransportError::ProtocolViolation`] instead of being consumed as
    /// an ack.
    fn route(&self, from: PartyId, to: PartyId, msg: Message) -> Result<Message, TransportError> {
        let expected = msg.kind();
        self.network.send(from, to, msg)?;
        Ok(self.network.recv_expect(to, expected)?.1)
    }

    /// One server→clients fan-out phase (DESIGN.md §10). Pipelined: every
    /// message is sent first (payloads encode concurrently on the tensor
    /// worker pool), then each recipient pops its delivery in message order.
    /// Lockstep: each message waits for its delivery before the next send.
    /// Both schedules move the same bytes over the same links in the same
    /// per-party order, so they are observation- and training-identical.
    fn dispatch(&self, msgs: Vec<(PartyId, PartyId, Message)>) -> Result<(), TransportError> {
        if self.config.pipelined_rounds {
            let expects: Vec<(PartyId, &'static str)> =
                msgs.iter().map(|&(_, to, ref m)| (to, m.kind())).collect();
            self.network.send_all(msgs)?;
            for (to, expected) in expects {
                let _ = self.network.recv_expect(to, expected)?;
            }
        } else {
            for (from, to, msg) in msgs {
                let expected = msg.kind();
                self.network.send(from, to, msg)?;
                let _ = self.network.recv_expect(to, expected)?;
            }
        }
        Ok(())
    }

    /// One clients→server fan-in phase (DESIGN.md §10). Pipelined: every
    /// upload is sent first, then the receiver gathers the replies in fixed
    /// sender order regardless of arrival order. Lockstep: each upload is
    /// consumed before the next client sends. Same observation-identity
    /// argument as [`GtvTrainer::dispatch`].
    fn fan_in(
        &self,
        msgs: Vec<(PartyId, PartyId, Message)>,
        expected: &'static str,
    ) -> Result<Vec<Message>, TransportError> {
        if self.config.pipelined_rounds {
            let senders: Vec<PartyId> = msgs.iter().map(|&(from, _, _)| from).collect();
            let at = msgs.first().map_or(PartyId::Server, |&(_, to, _)| to);
            self.network.send_all(msgs)?;
            self.network.gather(at, &senders, expected)
        } else {
            let mut out = Vec::with_capacity(msgs.len());
            for (from, to, msg) in msgs {
                self.network.send(from, to, msg)?;
                out.push(self.network.recv_expect(to, expected)?.1);
            }
            Ok(out)
        }
    }

    /// Server-side selection of the CV-constructing client `p ~ P_r` among
    /// clients that own categorical columns.
    fn select_p(&mut self) -> Option<usize> {
        let eligible: Vec<usize> =
            (0..self.clients.len()).filter(|&i| self.clients[i].sampler.is_some()).collect();
        if eligible.is_empty() {
            return None;
        }
        let total: f64 = eligible.iter().map(|&i| self.ratios[i]).sum();
        let mut u = self.rng.gen::<f64>() * total;
        for &i in &eligible {
            u -= self.ratios[i];
            if u <= 0.0 {
                return Some(i);
            }
        }
        eligible.last().copied()
    }

    /// Steps 4/18 of Algorithm 1: CV construction by the selected client,
    /// upload of `(CV_p, idx_p)` to the server.
    fn sample_condition(&mut self) -> Result<Option<CondRound>, TransportError> {
        let Some(p) = self.select_p() else {
            return Ok(None);
        };
        // Server notifies every client of the round and the selected
        // constructor (one fan-out phase).
        let round_start: Vec<(PartyId, PartyId, Message)> = (0..self.clients.len())
            .map(|i| {
                (
                    PartyId::Server,
                    PartyId::Client(i),
                    Message::RoundStart { round: self.step, selected: p as u32 },
                )
            })
            .collect();
        self.dispatch(round_start)?;
        let batch = self.config.batch;
        let client = &mut self.clients[p];
        let sampler = client
            .sampler
            .as_ref()
            // gtv-lint: allow(panic) -- select_p only returns clients whose sampler is Some
            .expect("selected client has a sampler");
        let cond = sampler.sample_batch(batch, &mut client.rng);
        let cv =
            sampler.materialize(&cond.choices, self.layout.offset(p), self.layout.total_width());
        let indices_u32: Vec<u32> = cond.row_indices.iter().map(|&i| i as u32).collect();
        match self.config.index_sharing {
            IndexSharing::Server => {
                // idx_p is shared only between client p and the server
                // (§3.1.4).
                let delivered = self.route(
                    PartyId::Client(p),
                    PartyId::Server,
                    Message::CondUpload { cv: payload_of(&cv), indices: indices_u32 },
                )?;
                let (cv_recv, indices) = match delivered {
                    Message::CondUpload { cv, indices } => (cv, indices),
                    got => {
                        return Err(TransportError::UnexpectedMessage {
                            from: PartyId::Client(p),
                            context: "conditional-vector upload",
                            got,
                        })
                    }
                };
                // The server records what it just observed (the attack
                // surface of Fig. 5).
                let cv =
                    Tensor::from_vec(cv_recv.rows as usize, cv_recv.cols as usize, cv_recv.data);
                let bits: Vec<usize> = (0..cv.rows())
                    .map(|r| {
                        cv.row_slice(r)
                            .iter()
                            .position(|&v| v == 1.0)
                            // gtv-lint: allow(panic) -- materialize() writes exactly one 1.0 per row, and f32 values round-trip bit-exactly through the wire
                            .expect("conditional vector row must have a hot bit")
                    })
                    .collect();
                self.observer.record(&indices, &bits);
                Ok(Some(CondRound {
                    p,
                    choices: cond.choices,
                    indices: indices.iter().map(|&i| i as usize).collect(),
                    cv,
                }))
            }
            IndexSharing::PeerToPeer => {
                // The rejected alternative (§3.1.6): the CV still goes to
                // the server (it feeds D^s), but the indices go peer-to-peer
                // so clients can select rows locally.
                let _ = self.route(
                    PartyId::Client(p),
                    PartyId::Server,
                    Message::CondUpload { cv: payload_of(&cv), indices: Vec::new() },
                )?;
                for j in 0..self.clients.len() {
                    if j == p {
                        continue;
                    }
                    let delivered = self.route(
                        PartyId::Client(p),
                        PartyId::Client(j),
                        Message::IndexShare { indices: indices_u32.clone() },
                    )?;
                    let indices = match delivered {
                        Message::IndexShare { indices } => indices,
                        got => {
                            return Err(TransportError::UnexpectedMessage {
                                from: PartyId::Client(p),
                                context: "peer-to-peer index sharing",
                                got,
                            })
                        }
                    };
                    // A curious client maps the indices back to individuals
                    // (it knows every shared shuffle) and mines frequencies.
                    let initial: Vec<usize> =
                        indices.iter().map(|&i| self.current_to_initial[i as usize]).collect();
                    self.client_observers[j].record(&initial);
                }
                Ok(Some(CondRound { p, choices: cond.choices, indices: cond.row_indices, cv }))
            }
        }
    }

    /// Synthetic forward pass shared by both phases: noise + CV through
    /// `G^t`, `Split`, per-client `G_i^b` and `D_i^b`. Returns
    /// `(slices, head_logits, activations, synth_d_logits)`.
    #[allow(clippy::type_complexity)] // the 4-tuple mirrors Algorithm 1's named intermediates; a struct would be used once
    fn synthetic_path(
        &mut self,
        g: &Graph,
        ctx: &Ctx<'_>,
        cv: Option<&Tensor>,
        batch: usize,
        detach_for_d: bool,
    ) -> Result<(Vec<Var>, Vec<Var>, Vec<Var>, Vec<Var>), TransportError> {
        let z = Tensor::randn(batch, self.config.embedding_dim, &mut self.rng);
        let g_in = match cv {
            Some(cv) => Tensor::concat_cols(&[&z, cv]),
            None => z,
        };
        let g_in = g.leaf(g_in);
        let slices = self.generator.top_forward(ctx, g_in);
        // Phase 1: the server fans out every client's `G^t` slice before any
        // client replies (DESIGN.md §10).
        let gen_slices: Vec<(PartyId, PartyId, Message)> = (0..self.clients.len())
            .map(|i| {
                (
                    PartyId::Server,
                    PartyId::Client(i),
                    Message::GenSlice(payload_of(&g.value(slices[i]))),
                )
            })
            .collect();
        self.dispatch(gen_slices)?;
        // Phase 2: clients run `G_i^b` and `D_i^b` in fixed party order and
        // upload their logits; the server consumes the uploads in that same
        // order.
        let mut head_logits = Vec::with_capacity(self.clients.len());
        let mut activations = Vec::with_capacity(self.clients.len());
        let mut d_logits = Vec::with_capacity(self.clients.len());
        let mut uploads: Vec<(PartyId, PartyId, Message)> = Vec::with_capacity(self.clients.len());
        #[allow(clippy::needless_range_loop)] // i is the client/protocol id
        for i in 0..self.clients.len() {
            let (logits, act) = self.generator.client_forward(ctx, i, slices[i]);
            let act_for_d = if detach_for_d { g.detach(act) } else { act };
            let dl = self.discriminator.client_forward(ctx, i, act_for_d);
            let dl = self.apply_dp_noise(g, dl);
            uploads.push((
                PartyId::Client(i),
                PartyId::Server,
                Message::SynthLogits(payload_of(&g.value(dl))),
            ));
            head_logits.push(logits);
            activations.push(act_for_d);
            d_logits.push(dl);
        }
        let _ = self.fan_in(uploads, "SynthLogits")?;
        Ok((slices, head_logits, activations, d_logits))
    }

    /// §3.3 protection knob: Gaussian noise on an uploaded logit matrix.
    fn apply_dp_noise(&mut self, g: &Graph, logits: Var) -> Var {
        let sigma = self.config.dp_noise_sigma;
        if sigma <= 0.0 {
            return logits;
        }
        let (rows, cols) = g.shape(logits);
        let noise = Tensor::randn(rows, cols, &mut self.rng).mul_scalar(sigma);
        g.add(logits, g.leaf(noise))
    }

    /// One discriminator step (Algorithm 1 steps 3–16).
    fn d_step(&mut self) -> Result<(), TransportError> {
        let g = Graph::new();
        let ctx = Ctx::train(&g, self.config.seed.wrapping_add(self.step * 3 + 1));
        self.step += 1;
        let batch = self.config.batch;
        let cond = self.sample_condition()?;
        let cv_t = cond.as_ref().map(|c| c.cv.clone());

        let (_, _, fake_acts, synth_logits) =
            self.synthetic_path(&g, &ctx, cv_t.as_ref(), batch, true)?;
        let cv_fake = cv_t.as_ref().map(|t| g.leaf(t.clone()));
        let y_fake = self.discriminator.server_forward(&ctx, &synth_logits, cv_fake);

        // Real path: all clients contribute rows idx_p (steps 9–14).
        let indices: Vec<usize> = match &cond {
            Some(c) => c.indices.clone(),
            None => (0..batch).map(|_| self.rng.gen_range(0..self.n_rows)).collect(),
        };
        let mut real_rows: Vec<Tensor> = Vec::with_capacity(self.clients.len());
        let mut real_logits: Vec<Var> = Vec::with_capacity(self.clients.len());
        let mut uploads: Vec<(PartyId, PartyId, Message)> = Vec::with_capacity(self.clients.len());
        for i in 0..self.clients.len() {
            let selected_rows = self.clients[i].encoded.select_rows(&indices);
            let is_p = cond.as_ref().is_none_or(|c| c.p == i);
            // In the peer-to-peer variant clients know idx_p and always
            // select locally; the full-table upload is the privacy price of
            // the server-side design only.
            let full_upload = self.config.faithful_real_path
                && !is_p
                && self.config.index_sharing == IndexSharing::Server;
            if full_upload {
                // The client passes its *entire* table through D_i^b and the
                // server selects the idx_p rows from the uploaded logits.
                let full = g.leaf(self.clients[i].encoded.clone());
                let logits_full = self.discriminator.client_forward(&ctx, i, full);
                let logits_full = self.apply_dp_noise(&g, logits_full);
                uploads.push((
                    PartyId::Client(i),
                    PartyId::Server,
                    Message::RealLogits(payload_of(&g.value(logits_full))),
                ));
                real_logits.push(g.select_rows(logits_full, &indices));
            } else {
                let leaf = g.leaf(selected_rows.clone());
                let logits = self.discriminator.client_forward(&ctx, i, leaf);
                let logits = self.apply_dp_noise(&g, logits);
                uploads.push((
                    PartyId::Client(i),
                    PartyId::Server,
                    Message::RealLogits(payload_of(&g.value(logits))),
                ));
                real_logits.push(logits);
            }
            real_rows.push(selected_rows);
        }
        let _ = self.fan_in(uploads, "RealLogits")?;
        let cv_real = cv_t.as_ref().map(|t| g.leaf(t.clone()));
        let y_real = self.discriminator.server_forward(&ctx, &real_logits, cv_real);

        // WGAN-GP gradient penalty on interpolates (per client slice + CV).
        let eps = Tensor::rand_uniform(batch, 1, 0.0, 1.0, &mut self.rng);
        let mut hat_vars: Vec<Var> = Vec::with_capacity(self.clients.len());
        let mut hat_logits: Vec<Var> = Vec::with_capacity(self.clients.len());
        for i in 0..self.clients.len() {
            let fake_v = g.value(fake_acts[i]);
            let one_minus = eps.map(|v| 1.0 - v);
            let hat = real_rows[i].mul(&eps).add(&fake_v.mul(&one_minus));
            let hat_var = g.leaf(hat);
            hat_vars.push(hat_var);
            hat_logits.push(self.discriminator.client_forward(&ctx, i, hat_var));
        }
        let cv_hat = cv_t.as_ref().map(|t| g.leaf(t.clone()));
        let y_hat = self.discriminator.server_forward(&ctx, &hat_logits, cv_hat);
        let mut gp_wrt = hat_vars.clone();
        if let Some(cvh) = cv_hat {
            gp_wrt.push(cvh);
        }
        let grads = g.grad(g.sum_all(y_hat), &gp_wrt);
        let gcat = g.concat_cols(&grads);
        let norm = g.l2_norm_rows(gcat, 1e-12);
        let penalty = g.mean_all(g.square(g.add_scalar(norm, -1.0)));

        let d_loss = {
            let mf = g.mean_all(y_fake);
            let mr = g.mean_all(y_real);
            let wass = g.sub(mf, mr);
            g.add(wass, g.mul_scalar(penalty, self.config.gp_lambda))
        };

        self.d_opt.zero_grad();
        self.g_opt.zero_grad();
        // One backward pass: parameter grads + the gradient messages that
        // cross the server→client boundary.
        let mut extras = synth_logits.clone();
        extras.extend(real_logits.iter().copied());
        let boundary_grads = ctx.binder().backprop_with_extras(&g, d_loss, &extras);
        let grad_msgs: Vec<(PartyId, PartyId, Message)> = boundary_grads
            .iter()
            .enumerate()
            .map(|(i, gv)| {
                (
                    PartyId::Server,
                    PartyId::Client(i % self.clients.len()),
                    Message::GradLogits(payload_of(&g.value(*gv))),
                )
            })
            .collect();
        self.dispatch(grad_msgs)?;
        self.d_opt.step();
        self.history.d_loss.push(g.value(d_loss).item());
        self.finish_step(&g);
        Ok(())
    }

    /// One generator step (Algorithm 1 steps 18–22).
    fn g_step(&mut self) -> Result<(), TransportError> {
        let g = Graph::new();
        let ctx = Ctx::train(&g, self.config.seed.wrapping_add(self.step * 3 + 2));
        self.step += 1;
        let batch = self.config.batch;
        let cond = self.sample_condition()?;
        let cv_t = cond.as_ref().map(|c| c.cv.clone());

        let (slices, head_logits, _, synth_logits) =
            self.synthetic_path(&g, &ctx, cv_t.as_ref(), batch, false)?;
        let cv_var = cv_t.as_ref().map(|t| g.leaf(t.clone()));
        let y_fake = self.discriminator.server_forward(&ctx, &synth_logits, cv_var);
        let mut g_loss = g.neg(g.mean_all(y_fake));

        // CTGAN generator conditional loss: cross-entropy between the
        // conditioned one-hot span and the sampled category, on client p.
        if let Some(c) = &cond {
            let info = self.clients[c.p].transformer.categorical_info().to_vec();
            for col in &info {
                let mut mask = Tensor::zeros(batch, col.n_categories);
                let mut any = false;
                for (r, ch) in c.choices.iter().enumerate() {
                    if ch.column == col.column {
                        mask.set(r, ch.category, 1.0);
                        any = true;
                    }
                }
                if !any {
                    continue;
                }
                let span = g.slice_cols(head_logits[c.p], col.onehot_start, col.n_categories);
                let sm = g.softmax_rows(span);
                let lp = g.ln(g.add_scalar(sm, 1e-9));
                let ce = g.neg(g.sum_all(g.mul(g.leaf(mask), lp)));
                g_loss = g.add(g_loss, g.mul_scalar(ce, 1.0 / batch as f32));
            }
        }

        self.g_opt.zero_grad();
        self.d_opt.zero_grad();
        let boundary_grads = ctx.binder().backprop_with_extras(&g, g_loss, &slices);
        let grad_msgs: Vec<(PartyId, PartyId, Message)> = boundary_grads
            .iter()
            .enumerate()
            .map(|(i, gv)| {
                (
                    PartyId::Server,
                    PartyId::Client(i),
                    Message::GradGenSlice(payload_of(&g.value(*gv))),
                )
            })
            .collect();
        self.dispatch(grad_msgs)?;
        self.g_opt.step();
        self.history.g_loss.push(g.value(g_loss).item());
        self.finish_step(&g);
        Ok(())
    }

    /// Step 23: every client shuffles its local data with the shared,
    /// server-hidden seed.
    fn end_of_round_shuffle(&mut self) {
        if !self.shuffling_enabled {
            return;
        }
        let perm = self.shuffler.permutation(self.n_rows, self.round);
        for client in &mut self.clients {
            client.table = client.table.select_rows(&perm);
            client.encoded = client.encoded.select_rows(&perm);
            client.sampler = ClientCondSampler::from_table(&client.table);
        }
        // Every client can track the composed permutation (it applies it);
        // the server cannot.
        self.current_to_initial = perm.iter().map(|&i| self.current_to_initial[i]).collect();
    }

    /// Runs one full round: `e` discriminator steps, one generator step and
    /// the end-of-round shuffle.
    ///
    /// # Errors
    ///
    /// Returns the first [`TransportError`] hit by any protocol exchange
    /// (e.g. a dropped message under fault injection).
    pub fn train_round(&mut self) -> Result<(), TransportError> {
        self.network.begin_round(self.round);
        for _ in 0..self.config.d_steps {
            self.d_step()?;
        }
        self.g_step()?;
        self.end_of_round_shuffle();
        self.round += 1;
        Ok(())
    }

    /// Runs `config.rounds` rounds.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GtvTrainer::train_round`].
    pub fn train(&mut self) -> Result<(), TransportError> {
        for _ in 0..self.config.rounds {
            self.train_round()?;
        }
        Ok(())
    }

    /// Secure synthetic-data publication (§3.1.7): generates `n` rows,
    /// decodes each client's share locally, applies the shared publication
    /// shuffle and publishes the shares. Returns one table per client (all
    /// row-aligned).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if publishing a share to the public
    /// board fails.
    pub fn synthesize_shares(&self, n: usize, seed: u64) -> Result<Vec<Table>, TransportError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = self.config.batch.max(1);
        let mut per_client: Vec<Vec<Tensor>> = vec![Vec::new(); self.clients.len()];
        let mut produced = 0;
        while produced < n {
            let take = batch.min(n - produced);
            let cv = self.generation_cv(take, &mut rng);
            let z = Tensor::randn(take, self.config.embedding_dim, &mut rng);
            let g_in = match &cv {
                Some(cv) => Tensor::concat_cols(&[&z, cv]),
                None => z,
            };
            let g = Graph::new();
            let ctx = Ctx::eval(&g, seed.wrapping_add(produced as u64));
            let g_in = g.leaf(g_in);
            let slices = self.generator.top_forward(&ctx, g_in);
            for i in 0..self.clients.len() {
                let (_, act) = self.generator.client_forward(&ctx, i, slices[i]);
                per_client[i].push(g.value(act));
            }
            // Each generation batch is its own step scope: recycle its
            // graph storage before building the next batch's graph.
            g.reset();
            produced += take;
        }
        // Publication shuffle: shared among clients, unknown to the server.
        let perm = self.shuffler.permutation(n, u64::MAX ^ seed);
        let mut shares = Vec::with_capacity(self.clients.len());
        let mut publications: Vec<(PartyId, PartyId, Message)> =
            Vec::with_capacity(self.clients.len());
        for (i, chunks) in per_client.iter().enumerate() {
            let refs: Vec<&Tensor> = chunks.iter().collect();
            let matrix = Tensor::concat_rows(&refs).select_rows(&perm);
            let share = self.clients[i].transformer.decode(&matrix);
            publications.push((
                PartyId::Client(i),
                PartyId::Public,
                Message::SyntheticShare(payload_of(&matrix)),
            ));
            shares.push(share);
        }
        self.dispatch(publications)?;
        Ok(shares)
    }

    /// Convenience: the horizontal concatenation of all published shares.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GtvTrainer::synthesize_shares`].
    pub fn synthesize(&self, n: usize, seed: u64) -> Result<Table, TransportError> {
        let shares = self.synthesize_shares(n, seed)?;
        let refs: Vec<&Table> = shares.iter().collect();
        Ok(Table::hconcat(&refs))
    }

    /// Exports every network weight (incl. batch-norm running statistics)
    /// as a named dictionary. Restoring requires a trainer built with the
    /// same tables, partition and config seed (the data-derived encoders are
    /// re-fit deterministically at construction).
    pub fn save_weights(&self) -> gtv_nn::StateDict {
        use gtv_nn::Stateful;
        let mut dict = gtv_nn::StateDict::new();
        self.generator.save_state(&mut dict);
        self.discriminator.save_state(&mut dict);
        dict
    }

    /// Extracts a transport-free [`crate::Synthesizer`] snapshot of the
    /// current generator: the serving unit the model registry caches. The
    /// generator weights are copied (via a state dict round-trip), so the
    /// trainer can keep training afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SynthError::Weights`] only if the rebuild disagrees
    /// with the saved state — impossible unless the architecture config
    /// mutated since construction.
    pub fn synthesizer(&self) -> Result<crate::Synthesizer, crate::SynthError> {
        use gtv_nn::Stateful;
        let mut dict = gtv_nn::StateDict::new();
        self.generator.save_state(&mut dict);
        let transformers = self.clients.iter().map(|c| c.transformer.clone()).collect();
        let samplers = self.clients.iter().map(|c| c.sampler.clone()).collect();
        crate::Synthesizer::from_parts(
            &self.config,
            transformers,
            samplers,
            self.ratios.clone(),
            &dict,
        )
    }

    /// Restores weights exported by [`GtvTrainer::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns an error if an entry is missing or shaped differently —
    /// typically a partition/width/client mismatch with the saving run.
    pub fn load_weights(&mut self, dict: &gtv_nn::StateDict) -> Result<(), gtv_nn::LoadStateError> {
        use gtv_nn::Stateful;
        self.generator.load_state(dict)?;
        self.discriminator.load_state(dict)
    }

    /// Generation-time conditional vectors (original-frequency sampling).
    fn generation_cv(&self, batch: usize, rng: &mut StdRng) -> Option<Tensor> {
        if self.layout.total_width() == 0 {
            return None;
        }
        // Pick a constructing client ~ P_r among eligible ones.
        let eligible: Vec<usize> =
            (0..self.clients.len()).filter(|&i| self.clients[i].sampler.is_some()).collect();
        let total: f64 = eligible.iter().map(|&i| self.ratios[i]).sum();
        let mut u = rng.gen::<f64>() * total;
        // gtv-lint: allow(panic) -- total_width() > 0 implies at least one client contributed sampler width
        let mut p = *eligible.last().expect("layout nonzero implies an eligible client");
        for &i in &eligible {
            u -= self.ratios[i];
            if u <= 0.0 {
                p = i;
                break;
            }
        }
        // gtv-lint: allow(panic) -- p is drawn from the eligible list, which filters on sampler.is_some()
        let sampler = self.clients[p].sampler.as_ref().expect("eligible client has a sampler");
        let choices = sampler.sample_batch_original(batch, rng);
        Some(sampler.materialize(&choices, self.layout.offset(p), self.layout.total_width()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::Dataset;

    fn two_client_shards(rows: usize) -> Vec<Table> {
        let t = Dataset::Loan.generate(rows, 0);
        let n = t.n_cols();
        t.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()])
    }

    #[test]
    fn trainer_runs_a_round_and_synthesizes() {
        let shards = two_client_shards(120);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train_round().unwrap();
        assert_eq!(trainer.history().d_loss.len(), 1);
        assert_eq!(trainer.history().g_loss.len(), 1);
        let synth = trainer.synthesize(50, 9).unwrap();
        assert_eq!(synth.n_rows(), 50);
        assert_eq!(synth.n_cols(), 13);
    }

    #[test]
    fn all_nine_partitions_train() {
        for partition in crate::NetPartition::all_nine() {
            let shards = two_client_shards(60);
            let config = GtvConfig { partition, ..GtvConfig::smoke() };
            let mut trainer = GtvTrainer::new(shards, config);
            trainer.train_round().unwrap();
            let shares = trainer.synthesize_shares(10, 0).unwrap();
            assert_eq!(shares.len(), 2, "{partition}");
            assert_eq!(shares[0].n_rows(), 10, "{partition}");
        }
    }

    #[test]
    fn traffic_is_metered_and_server_never_sees_seed() {
        let shards = two_client_shards(80);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        let before = trainer.network_stats();
        // Seed negotiation happened at construction, peer-to-peer only.
        assert_eq!(before.server_bytes(), 0);
        trainer.train_round().unwrap();
        let after = trainer.network_stats();
        assert!(after.server_bytes() > 0, "protocol traffic must be metered");
        assert!(after.messages > before.messages);
    }

    #[test]
    fn observer_accumulates_cv_index_pairs() {
        let shards = two_client_shards(80);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train_round().unwrap();
        // smoke config: 1 d_step + 1 g_step, each samples a condition batch.
        assert_eq!(trainer.observer().observations(), 2 * 32);
    }

    #[test]
    fn faithful_real_path_matches_row_counts() {
        let shards = two_client_shards(60);
        let config = GtvConfig { faithful_real_path: true, ..GtvConfig::smoke() };
        let mut trainer = GtvTrainer::new(shards, config);
        trainer.train_round().unwrap();
        // RealLogits messages from non-selected clients carry the full table
        // (60 rows), so the real-path traffic must exceed batch-only (32).
        let stats = trainer.network_stats();
        assert!(stats.bytes > 0);
    }

    #[test]
    fn three_clients_supported() {
        let t = Dataset::Loan.generate(90, 0);
        let shards =
            t.vertical_split(&[(0..4).collect(), (4..8).collect(), (8..t.n_cols()).collect()]);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train_round().unwrap();
        let synth = trainer.synthesize(20, 0).unwrap();
        assert_eq!(synth.n_cols(), 13);
    }

    #[test]
    fn dp_noise_changes_training_but_runs() {
        let shards = two_client_shards(80);
        let mut clean = GtvTrainer::new(shards.clone(), GtvConfig::smoke());
        clean.train_round().unwrap();
        let mut noisy =
            GtvTrainer::new(shards, GtvConfig { dp_noise_sigma: 0.5, ..GtvConfig::smoke() });
        noisy.train_round().unwrap();
        assert_ne!(
            clean.history().d_loss,
            noisy.history().d_loss,
            "DP noise must perturb the loss trajectory"
        );
    }

    #[test]
    fn p2p_mode_keeps_indices_from_server_but_leaks_to_clients() {
        let shards = two_client_shards(100);
        let config = GtvConfig {
            index_sharing: crate::IndexSharing::PeerToPeer,
            rounds: 10,
            ..GtvConfig::smoke()
        };
        let mut t = GtvTrainer::new(shards, config);
        t.train().unwrap();
        // Server saw CVs but no indices → its reconstruction has nothing.
        assert_eq!(t.observer().observations(), 0);
        // At least one client accumulated the index stream.
        let total: u64 = t.client_index_observers().iter().map(|o| o.observations()).sum();
        assert!(total > 0, "peer-to-peer sharing must feed client observers");
    }

    #[test]
    fn client_width_multipliers_change_model_shape() {
        let shards = two_client_shards(60);
        let config = GtvConfig { client_width_multipliers: vec![1.0, 3.0], ..GtvConfig::smoke() };
        let mut boosted = GtvTrainer::new(shards, config);
        boosted.train_round().unwrap();
        let synth = boosted.synthesize(10, 0).unwrap();
        assert_eq!(synth.n_cols(), 13);
    }

    #[test]
    #[should_panic(expected = "one width multiplier per client")]
    fn width_multipliers_must_match_client_count() {
        let shards = two_client_shards(40);
        let config = GtvConfig { client_width_multipliers: vec![2.0], ..GtvConfig::smoke() };
        let _ = GtvTrainer::new(shards, config);
    }

    #[test]
    fn pure_continuous_tables_train_unconditioned() {
        // No categorical columns anywhere: no CV, no D^s, no cond loss.
        use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema, Table};
        let make = |names: &[&str], seed: u64| {
            let metas = names.iter().map(|n| ColumnMeta::new(*n, ColumnKind::Continuous)).collect();
            let cols = names
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    ColumnData::Float(
                        (0..50)
                            .map(|r| ((r as f64) * 0.1 + i as f64 + seed as f64).sin())
                            .collect(),
                    )
                })
                .collect();
            Table::new(Schema::new(metas, None), cols)
        };
        let a = make(&["x1", "x2"], 0);
        let b = make(&["y1", "y2", "y3"], 1);
        let mut t = GtvTrainer::new(vec![a, b], GtvConfig::smoke());
        t.train().unwrap();
        assert_eq!(t.observer().observations(), 0, "no conditions can be observed");
        let synth = t.synthesize(20, 0).unwrap();
        assert_eq!(synth.n_cols(), 5);
        assert_eq!(synth.n_rows(), 20);
    }

    #[test]
    fn weights_roundtrip_reproduces_synthesis() {
        let shards = two_client_shards(80);
        let mut a = GtvTrainer::new(shards.clone(), GtvConfig::smoke());
        a.train().unwrap();
        let dict = a.save_weights();
        assert!(dict.len() > 10, "dict should hold every layer");
        // A fresh trainer with the same construction seed but untrained
        // weights produces different output until the weights are loaded.
        let mut b = GtvTrainer::new(shards, GtvConfig::smoke());
        assert_ne!(a.synthesize(20, 5).unwrap(), b.synthesize(20, 5).unwrap());
        b.load_weights(&dict).unwrap();
        assert_eq!(a.synthesize(20, 5).unwrap(), b.synthesize(20, 5).unwrap());
    }

    #[test]
    fn load_weights_rejects_mismatched_partition() {
        let shards = two_client_shards(60);
        let a = GtvTrainer::new(shards.clone(), GtvConfig::smoke());
        let dict = a.save_weights();
        let mut b = GtvTrainer::new(
            shards,
            GtvConfig { partition: crate::NetPartition::d2g2(), ..GtvConfig::smoke() },
        );
        assert!(b.load_weights(&dict).is_err());
    }

    #[test]
    fn stray_inbox_message_surfaces_as_protocol_violation() {
        // Regression: acks used to be consumed blind (`let _ = recv(..)`),
        // so a desynchronized peer's stray message silently vanished. It
        // must now fail the protocol step that noticed it.
        let shards = two_client_shards(60);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer
            .network()
            .send(PartyId::Client(1), PartyId::Client(0), Message::ShuffleSeedShare { share: 99 })
            .unwrap();
        let err = trainer.train_round().unwrap_err();
        match err {
            TransportError::ProtocolViolation { expected, got, .. } => {
                assert_eq!(expected, "RoundStart");
                assert_eq!(got, Message::ShuffleSeedShare { share: 99 });
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
    }

    #[test]
    fn lockstep_and_pipelined_schedules_are_bit_identical() {
        let shards = two_client_shards(60);
        let lockstep_cfg = GtvConfig { pipelined_rounds: false, ..GtvConfig::smoke() };
        let mut lockstep = GtvTrainer::new(shards.clone(), lockstep_cfg);
        let mut pipelined = GtvTrainer::new(shards, GtvConfig::smoke());
        lockstep.train_round().unwrap();
        pipelined.train_round().unwrap();
        assert_eq!(lockstep.history().d_loss, pipelined.history().d_loss);
        assert_eq!(lockstep.history().g_loss, pipelined.history().g_loss);
        assert_eq!(lockstep.save_weights(), pipelined.save_weights());
        // Same messages, same links, same bytes — only batching differs.
        assert_eq!(lockstep.network_stats(), pipelined.network_stats());
    }

    #[test]
    fn sparse_wire_shrinks_traffic_without_changing_training() {
        let shards = two_client_shards(80);
        let mut dense = GtvTrainer::new(shards.clone(), GtvConfig::smoke());
        dense.train_round().unwrap();
        let sparse_cfg = GtvConfig { sparse_wire: true, ..GtvConfig::smoke() };
        let mut sparse = GtvTrainer::new(shards, sparse_cfg);
        sparse.train_round().unwrap();
        // Decoding is bit-exact, so the trained state cannot differ.
        assert_eq!(dense.history().d_loss, sparse.history().d_loss);
        assert_eq!(dense.save_weights(), sparse.save_weights());
        // The one-hot CV uploads alone guarantee a strict byte win.
        assert!(sparse.network_stats().bytes < dense.network_stats().bytes);
    }

    #[test]
    fn per_round_windows_cover_all_training_traffic() {
        let shards = two_client_shards(60);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        let pre_round = trainer.network_stats().bytes;
        trainer.train_round().unwrap();
        trainer.train_round().unwrap();
        let stats = trainer.network_stats();
        assert_eq!(stats.rounds.len(), 2);
        assert_eq!(stats.rounds[0].round, 0);
        assert_eq!(stats.rounds[1].round, 1);
        let windowed: u64 = stats.rounds.iter().map(|r| r.bytes).sum();
        // Everything after construction-time seed negotiation is in-round.
        assert_eq!(windowed + pre_round, stats.bytes);
        // The server both sends and receives inside a round.
        assert!(stats.rounds[0].sent_by(PartyId::Server).1 > 0);
        assert!(stats.rounds[0].received_by(PartyId::Server).1 > 0);
    }

    #[test]
    #[should_panic(expected = "row-aligned")]
    fn rejects_misaligned_tables() {
        let a = Dataset::Loan.generate(50, 0).select_columns(&[0, 1]);
        let b = Dataset::Loan.generate(60, 0).select_columns(&[2, 3]);
        let _ = GtvTrainer::new(vec![a, b], GtvConfig::smoke());
    }
}
