//! The server's reconstruction attack from §3.1.5 (Fig. 5/6).
//!
//! A semi-honest server observes, every round, the conditional vectors and
//! the matching row indices `idx_p`. Joining `(index, hot bit)` pairs over
//! rounds reconstructs the one-hot encoding of every categorical column —
//! *unless* clients re-shuffle their rows each round with a seed the server
//! does not know, in which case the joins land on different individuals and
//! the inference table degrades to noise. [`ServerObserver`] implements
//! exactly what the server can accumulate; the reconstruction accuracy with
//! and without *training-with-shuffling* is the paper's Fig. 5 vs Fig. 6.

use gtv_cond::CondLayout;
use gtv_data::Table;

/// What the server accumulates from `(CV, idx_p)` observations.
#[derive(Debug, Clone)]
pub struct ServerObserver {
    n_rows: usize,
    width: usize,
    /// `counts[row * width + bit]` — times `bit` was indicated for `row`.
    counts: Vec<u64>,
}

impl ServerObserver {
    /// Creates an observer for `n_rows` data indices and a `width`-bit CV.
    pub fn new(n_rows: usize, width: usize) -> Self {
        Self { n_rows, width, counts: vec![0; n_rows * width] }
    }

    /// Number of observable data indices.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// CV width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Records one batch of observations: row `indices[k]` was indicated
    /// with hot bit `bits[k]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or anything is out of range.
    pub fn record(&mut self, indices: &[u32], bits: &[usize]) {
        assert_eq!(indices.len(), bits.len(), "index/bit count mismatch");
        for (&idx, &bit) in indices.iter().zip(bits) {
            let idx = idx as usize;
            assert!(idx < self.n_rows, "row index {idx} out of range");
            assert!(bit < self.width, "bit {bit} out of range");
            self.counts[idx * self.width + bit] += 1;
        }
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The server's best guess of the category of `row` within CV bit range
    /// `[start, start + width)` — the majority observed bit, or `None` if
    /// that row/column pair was never observed.
    pub fn inferred_category(&self, row: usize, start: usize, width: usize) -> Option<usize> {
        let slice = &self.counts[row * self.width + start..row * self.width + start + width];
        let (best, &count) = slice.iter().enumerate().max_by_key(|(_, &c)| c)?;
        if count == 0 {
            None
        } else {
            Some(best)
        }
    }

    /// Fraction of *observed* `(row, categorical column)` cells whose
    /// inferred category matches `truth`. This is the attack success rate of
    /// Fig. 5; with training-with-shuffling it collapses toward the chance
    /// rate (Fig. 6).
    ///
    /// `truth[c]` gives, for global categorical column `c` (in CV layout
    /// order), its CV bit offset, category count, and per-row true
    /// categories.
    pub fn reconstruction_accuracy(&self, truth: &[ColumnTruth]) -> ReconstructionReport {
        let mut observed = 0usize;
        let mut correct = 0usize;
        for col in truth {
            for row in 0..self.n_rows.min(col.categories.len()) {
                if let Some(inferred) =
                    self.inferred_category(row, col.bit_offset, col.n_categories)
                {
                    observed += 1;
                    if inferred == col.categories[row] as usize {
                        correct += 1;
                    }
                }
            }
        }
        ReconstructionReport {
            observed_cells: observed,
            correct_cells: correct,
            accuracy: if observed == 0 { 0.0 } else { correct as f64 / observed as f64 },
        }
    }
}

/// Ground truth for one categorical column in CV-bit space.
#[derive(Debug, Clone)]
pub struct ColumnTruth {
    /// First CV bit of the column's category block.
    pub bit_offset: usize,
    /// Number of categories.
    pub n_categories: usize,
    /// True category per row (in the order the attack targets — the
    /// clients' *initial* row order).
    pub categories: Vec<u32>,
}

/// Outcome of the reconstruction attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconstructionReport {
    /// `(row, column)` cells the server observed at least once.
    pub observed_cells: usize,
    /// Observed cells inferred correctly.
    pub correct_cells: usize,
    /// `correct / observed` (0 when nothing was observed).
    pub accuracy: f64,
}

/// What a *curious client* accumulates in the rejected peer-to-peer
/// index-sharing design (§3.1.6): how often each (initial) row was selected
/// as a conditional-vector match. CTGAN's log-frequency sampling makes
/// minority-category rows appear far more often than their base rate, so a
/// client that never saw the CV can still infer which rows share a minority
/// category in the CV contributor's columns — the leak that motivates GTV's
/// server-side index sharing. Shuffling does not help: clients know the
/// shared permutation and can map indices back to individuals.
#[derive(Debug, Clone)]
pub struct ClientIndexObserver {
    counts: Vec<u64>,
}

impl ClientIndexObserver {
    /// Creates an observer over `n_rows` individuals.
    pub fn new(n_rows: usize) -> Self {
        Self { counts: vec![0; n_rows] }
    }

    /// Records one batch of observed (initial-order) row selections.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn record(&mut self, initial_rows: &[usize]) {
        for &r in initial_rows {
            self.counts[r] += 1;
        }
    }

    /// Selection count per initial row.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total selections observed.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `k` most frequently selected rows.
    pub fn top_rows(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counts.len()).collect();
        idx.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]));
        idx.truncate(k);
        idx
    }

    /// Fraction of the top-`|minority|` selected rows that really belong to
    /// the minority set — the curious client's inference precision.
    pub fn minority_precision(&self, minority_rows: &[usize]) -> f64 {
        if minority_rows.is_empty() {
            return 0.0;
        }
        let set: std::collections::HashSet<usize> = minority_rows.iter().copied().collect();
        let top = self.top_rows(minority_rows.len());
        top.iter().filter(|r| set.contains(r)).count() as f64 / minority_rows.len() as f64
    }
}

/// Builds [`ColumnTruth`] entries for every categorical column of the
/// clients' initial tables, laid out per the global [`CondLayout`].
pub fn column_truths(initial_tables: &[Table], layout: &CondLayout) -> Vec<ColumnTruth> {
    let mut out = Vec::new();
    for (client, table) in initial_tables.iter().enumerate() {
        let mut local_offset = 0;
        for (ci, meta) in table.schema().columns().iter().enumerate() {
            let Some(k) = meta.kind.n_categories() else { continue };
            out.push(ColumnTruth {
                bit_offset: layout.offset(client) + local_offset,
                n_categories: k,
                categories: table.column(ci).as_cat().to_vec(),
            });
            local_offset += k;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_inference() {
        let mut obs = ServerObserver::new(3, 4);
        obs.record(&[0, 0, 0], &[1, 1, 0]);
        assert_eq!(obs.inferred_category(0, 0, 2), Some(1));
        assert_eq!(obs.inferred_category(1, 0, 2), None);
        assert_eq!(obs.observations(), 3);
    }

    #[test]
    fn perfect_observations_reconstruct_exactly() {
        // Column with 2 categories at bits 0..2; rows 0,1,2 have cats 0,1,1.
        let mut obs = ServerObserver::new(3, 2);
        obs.record(&[0, 1, 2], &[0, 1, 1]);
        let truth = vec![ColumnTruth { bit_offset: 0, n_categories: 2, categories: vec![0, 1, 1] }];
        let r = obs.reconstruction_accuracy(&truth);
        assert_eq!(r.observed_cells, 3);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn scrambled_observations_reconstruct_poorly() {
        // Same truth, but the indices the server sees point at shuffled
        // rows — the attack degrades.
        let mut obs = ServerObserver::new(4, 2);
        // True categories: [0, 0, 1, 1]; observed pairs are misaligned.
        obs.record(&[2, 3, 0, 1], &[0, 0, 1, 1]);
        let truth =
            vec![ColumnTruth { bit_offset: 0, n_categories: 2, categories: vec![0, 0, 1, 1] }];
        let r = obs.reconstruction_accuracy(&truth);
        assert_eq!(r.accuracy, 0.0);
    }
}
