//! The split discriminator: `D_i^b` on each client, the conditional-vector
//! filter `D^s` and `D^t` (FN blocks + scoring head) on the server.

use crate::config::GtvConfig;
use gtv_nn::{Ctx, FnBlock, Init, Linear, Module, Param};
use gtv_tensor::Var;
use rand::rngs::StdRng;

/// Split discriminator spanning server and clients.
#[derive(Debug)]
pub struct SplitDiscriminator {
    client_blocks: Vec<Vec<FnBlock>>,
    client_out_widths: Vec<usize>,
    cond_filter: Option<Linear>,
    top_blocks: Vec<FnBlock>,
    score: Linear,
}

impl SplitDiscriminator {
    /// Builds the split discriminator.
    ///
    /// * `client_in_widths` — each client's encoded data width;
    /// * `ratios` — the ratio vector `P_r` (drives per-client block widths);
    /// * `cond_width` — conditional-vector width (0 disables `D^s`).
    pub fn new(
        config: &GtvConfig,
        client_in_widths: &[usize],
        ratios: &[f64],
        cond_width: usize,
        rng: &mut StdRng,
    ) -> Self {
        let n_clients = client_in_widths.len();
        assert_eq!(ratios.len(), n_clients, "ratio/client count mismatch");
        let per_client_width = config.per_client_block_widths(ratios);

        let mut client_blocks = Vec::with_capacity(n_clients);
        let mut client_out_widths = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let mut blocks = Vec::with_capacity(config.partition.d_bottom);
            let mut d = client_in_widths[i];
            for b in 0..config.partition.d_bottom {
                let block = FnBlock::new(&format!("d.c{i}.b{b}"), d, per_client_width[i], rng);
                d = block.out_dim();
                blocks.push(block);
            }
            client_out_widths.push(d);
            client_blocks.push(blocks);
        }

        let cond_filter = (cond_width > 0)
            .then(|| Linear::new("d.s", cond_width, cond_width, Init::KaimingUniform, rng));

        let mut top_in: usize = client_out_widths.iter().sum();
        top_in += cond_width;
        let mut top_blocks = Vec::with_capacity(config.partition.d_top);
        let mut d = top_in;
        for b in 0..config.partition.d_top {
            let block = FnBlock::new(&format!("d.top{b}"), d, config.block_width, rng);
            d = block.out_dim();
            top_blocks.push(block);
        }
        let score = Linear::new("d.score", d, 1, Init::KaimingUniform, rng);
        Self { client_blocks, client_out_widths, cond_filter, top_blocks, score }
    }

    /// Each client's bottom-model output width (equals its input width when
    /// `d_bottom = 0` — the logits are the encoded rows themselves).
    pub fn client_out_widths(&self) -> &[usize] {
        &self.client_out_widths
    }

    /// Client part: `D_i^b`. With zero bottom blocks this is the identity
    /// (the configuration the paper's Fig. 8 finds optimal, at the cost of
    /// uploading encoded rows).
    pub fn client_forward(&self, ctx: &Ctx<'_>, client: usize, x: Var) -> Var {
        let mut h = x;
        for block in &self.client_blocks[client] {
            h = block.forward(ctx, h);
        }
        h
    }

    /// Server part: concatenates client logits with `D^s(CV)` and scores
    /// with `D^t`. Returns the per-row critic value (`n×1`).
    ///
    /// # Panics
    ///
    /// Panics if `cv` presence disagrees with the configured `cond_width`.
    pub fn server_forward(&self, ctx: &Ctx<'_>, client_logits: &[Var], cv: Option<Var>) -> Var {
        let g = ctx.graph();
        let mut parts: Vec<Var> = client_logits.to_vec();
        match (&self.cond_filter, cv) {
            (Some(filter), Some(cv)) => parts.push(filter.forward(ctx, cv)),
            (None, None) => {}
            (Some(_), None) => panic!("discriminator expects a conditional vector"),
            (None, Some(_)) => panic!("discriminator was built without a conditional vector"),
        }
        let mut h = g.concat_cols(&parts);
        for block in &self.top_blocks {
            h = block.forward(ctx, h);
        }
        self.score.forward(ctx, h)
    }

    /// Parameters of the server part (`D^t` and `D^s`).
    pub fn server_params(&self) -> Vec<Param> {
        let mut p: Vec<Param> = self.top_blocks.iter().flat_map(|b| b.params()).collect();
        p.extend(self.score.params());
        if let Some(f) = &self.cond_filter {
            p.extend(f.params());
        }
        p
    }

    /// Parameters of one client's part.
    pub fn client_params(&self, client: usize) -> Vec<Param> {
        self.client_blocks[client].iter().flat_map(|b| b.params()).collect()
    }
}

impl Module for SplitDiscriminator {
    fn params(&self) -> Vec<Param> {
        let mut p = self.server_params();
        for i in 0..self.client_blocks.len() {
            p.extend(self.client_params(i));
        }
        p
    }
}

impl gtv_nn::Stateful for SplitDiscriminator {
    fn save_state(&self, dict: &mut gtv_nn::StateDict) {
        for blocks in &self.client_blocks {
            for b in blocks {
                b.save_state(dict);
            }
        }
        if let Some(f) = &self.cond_filter {
            f.save_state(dict);
        }
        for b in &self.top_blocks {
            b.save_state(dict);
        }
        self.score.save_state(dict);
    }

    fn load_state(&self, dict: &gtv_nn::StateDict) -> Result<(), gtv_nn::LoadStateError> {
        for blocks in &self.client_blocks {
            for b in blocks {
                b.load_state(dict)?;
            }
        }
        if let Some(f) = &self.cond_filter {
            f.load_state(dict)?;
        }
        for b in &self.top_blocks {
            b.load_state(dict)?;
        }
        self.score.load_state(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::{Graph, Tensor};
    use rand::SeedableRng;

    fn build(partition: crate::NetPartition, cond: usize) -> SplitDiscriminator {
        let mut rng = StdRng::seed_from_u64(0);
        let config = GtvConfig { partition, block_width: 32, ..GtvConfig::smoke() };
        SplitDiscriminator::new(&config, &[6, 4], &[0.6, 0.4], cond, &mut rng)
    }

    #[test]
    fn scores_flow_through_all_partitions() {
        for partition in crate::NetPartition::all_nine() {
            let d = build(partition, 3);
            let g = Graph::new();
            let ctx = Ctx::eval(&g, 0);
            let x0 = g.leaf(Tensor::ones(5, 6));
            let x1 = g.leaf(Tensor::ones(5, 4));
            let l0 = d.client_forward(&ctx, 0, x0);
            let l1 = d.client_forward(&ctx, 1, x1);
            let cv = g.leaf(Tensor::zeros(5, 3));
            let score = d.server_forward(&ctx, &[l0, l1], Some(cv));
            assert_eq!(g.shape(score), (5, 1), "{partition}");
        }
    }

    #[test]
    fn zero_bottom_blocks_pass_data_through() {
        let d = build(crate::NetPartition::d2g0(), 0);
        assert_eq!(d.client_out_widths(), &[6, 4]);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x = g.leaf(Tensor::ones(2, 6));
        let l = d.client_forward(&ctx, 0, x);
        assert_eq!(l, x, "identity bottom must not create nodes");
    }

    #[test]
    fn cond_filter_mismatch_panics() {
        let d = build(crate::NetPartition::d2g0(), 3);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x0 = g.leaf(Tensor::ones(1, 6));
        let x1 = g.leaf(Tensor::ones(1, 4));
        let l0 = d.client_forward(&ctx, 0, x0);
        let l1 = d.client_forward(&ctx, 1, x1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.server_forward(&ctx, &[l0, l1], None)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn param_partition_is_disjoint_and_complete() {
        let d = build(crate::NetPartition::new(1, 1, 2, 0), 3);
        let all = d.params().len();
        let split = d.server_params().len() + d.client_params(0).len() + d.client_params(1).len();
        assert_eq!(all, split);
    }
}
