//! The split generator: `G^t` on the server, `G_i^b` + output head on each
//! client (paper Fig. 4 & 7).
//!
//! The server feeds `concat(z, CV)` through its `g_top` residual blocks and
//! `Split()`s the result into per-client slices proportional to the ratio
//! vector `P_r`. Each client runs its `g_bottom` residual blocks on its
//! slice, maps to its local encoded width with a fully-connected head, and
//! applies the CTGAN output activations (tanh on `α` spans, Gumbel-softmax
//! on one-hot spans).

use crate::config::GtvConfig;
use gtv_encoders::{Span, SpanKind};
use gtv_nn::{gumbel_softmax, Ctx, Init, Linear, Module, Param, ResidualBlock};
use gtv_tensor::Var;
use gtv_vfl::split_widths;
use rand::rngs::StdRng;

/// Split generator spanning server and clients.
#[derive(Debug)]
pub struct SplitGenerator {
    top_blocks: Vec<ResidualBlock>,
    slice_widths: Vec<usize>,
    client_blocks: Vec<Vec<ResidualBlock>>,
    client_heads: Vec<Linear>,
    client_spans: Vec<Vec<Span>>,
    tau: f32,
}

impl SplitGenerator {
    /// Builds the split generator.
    ///
    /// * `input_dim` — noise + conditional-vector width;
    /// * `ratios` — the ratio vector `P_r`;
    /// * `client_out_widths` — each client's encoded data width;
    /// * `client_spans` — each client's activation spans (local offsets).
    pub fn new(
        config: &GtvConfig,
        input_dim: usize,
        ratios: &[f64],
        client_out_widths: &[usize],
        client_spans: Vec<Vec<Span>>,
        rng: &mut StdRng,
    ) -> Self {
        let n_clients = ratios.len();
        assert_eq!(client_out_widths.len(), n_clients, "per-client width count mismatch");
        assert_eq!(client_spans.len(), n_clients, "per-client span count mismatch");

        // Server-side residual blocks at full width.
        let mut top_blocks = Vec::with_capacity(config.partition.g_top);
        let mut dim = input_dim;
        for b in 0..config.partition.g_top {
            let block = ResidualBlock::new(&format!("g.top{b}"), dim, config.block_width, rng);
            dim = block.out_dim();
            top_blocks.push(block);
        }
        // Split() of the top output, proportional to P_r. With g_top = 0 the
        // shared `concat(z, CV)` itself is split, so every client's slice
        // still derives from one noise vector (§3.1.1's design argument).
        let slice_widths = split_widths(dim, ratios);

        // Client-side blocks at proportional (optionally boosted) widths.
        let per_client_width = config.per_client_block_widths(ratios);
        let mut client_blocks = Vec::with_capacity(n_clients);
        let mut client_heads = Vec::with_capacity(n_clients);
        for i in 0..n_clients {
            let mut blocks = Vec::with_capacity(config.partition.g_bottom);
            let mut d = slice_widths[i];
            for b in 0..config.partition.g_bottom {
                let block =
                    ResidualBlock::new(&format!("g.c{i}.b{b}"), d, per_client_width[i], rng);
                d = block.out_dim();
                blocks.push(block);
            }
            client_heads.push(Linear::new(
                &format!("g.c{i}.head"),
                d,
                client_out_widths[i],
                Init::KaimingUniform,
                rng,
            ));
            client_blocks.push(blocks);
        }
        Self {
            top_blocks,
            slice_widths,
            client_blocks,
            client_heads,
            client_spans,
            tau: config.gumbel_tau,
        }
    }

    /// Per-client slice widths of the `Split()` boundary.
    pub fn slice_widths(&self) -> &[usize] {
        &self.slice_widths
    }

    /// Server part: runs `G^t` and splits the output into client slices.
    pub fn top_forward(&self, ctx: &Ctx<'_>, z_cv: Var) -> Vec<Var> {
        let g = ctx.graph();
        let mut h = z_cv;
        for block in &self.top_blocks {
            h = block.forward(ctx, h);
        }
        let mut slices = Vec::with_capacity(self.slice_widths.len());
        let mut offset = 0;
        for &w in &self.slice_widths {
            slices.push(g.slice_cols(h, offset, w));
            offset += w;
        }
        slices
    }

    /// Client part: `G_i^b` blocks, head, and output activations. Returns
    /// `(head_logits, activated)` — the raw logits feed the generator's
    /// conditional loss.
    pub fn client_forward(&self, ctx: &Ctx<'_>, client: usize, slice: Var) -> (Var, Var) {
        let g = ctx.graph();
        let mut h = slice;
        for block in &self.client_blocks[client] {
            h = block.forward(ctx, h);
        }
        let logits = self.client_heads[client].forward(ctx, h);
        // Activate per span; spans tile the full width in order.
        let mut parts = Vec::with_capacity(self.client_spans[client].len());
        for span in &self.client_spans[client] {
            let piece = g.slice_cols(logits, span.start, span.width);
            let activated = match span.kind {
                SpanKind::Alpha => g.tanh(piece),
                SpanKind::Indicator => gumbel_softmax(ctx, piece, self.tau),
            };
            parts.push(activated);
        }
        let activated = g.concat_cols(&parts);
        (logits, activated)
    }

    /// Parameters of the server part.
    pub fn top_params(&self) -> Vec<Param> {
        self.top_blocks.iter().flat_map(|b| b.params()).collect()
    }

    /// Parameters of one client's part.
    pub fn client_params(&self, client: usize) -> Vec<Param> {
        let mut p: Vec<Param> =
            self.client_blocks[client].iter().flat_map(|b| b.params()).collect();
        p.extend(self.client_heads[client].params());
        p
    }
}

impl Module for SplitGenerator {
    fn params(&self) -> Vec<Param> {
        let mut p = self.top_params();
        for i in 0..self.client_blocks.len() {
            p.extend(self.client_params(i));
        }
        p
    }
}

impl gtv_nn::Stateful for SplitGenerator {
    fn save_state(&self, dict: &mut gtv_nn::StateDict) {
        for b in &self.top_blocks {
            b.save_state(dict);
        }
        for (blocks, head) in self.client_blocks.iter().zip(&self.client_heads) {
            for b in blocks {
                b.save_state(dict);
            }
            head.save_state(dict);
        }
    }

    fn load_state(&self, dict: &gtv_nn::StateDict) -> Result<(), gtv_nn::LoadStateError> {
        for b in &self.top_blocks {
            b.load_state(dict)?;
        }
        for (blocks, head) in self.client_blocks.iter().zip(&self.client_heads) {
            for b in blocks {
                b.load_state(dict)?;
            }
            head.load_state(dict)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::{Graph, Tensor};
    use rand::SeedableRng;

    fn demo_spans(width: usize) -> Vec<Span> {
        // One tanh scalar + one (width-1)-wide indicator.
        vec![
            Span { start: 0, width: 1, kind: SpanKind::Alpha },
            Span { start: 1, width: width - 1, kind: SpanKind::Indicator },
        ]
    }

    fn build(partition: crate::NetPartition) -> SplitGenerator {
        let mut rng = StdRng::seed_from_u64(0);
        let config =
            GtvConfig { partition, block_width: 32, embedding_dim: 8, ..GtvConfig::smoke() };
        SplitGenerator::new(
            &config,
            12,
            &[0.5, 0.5],
            &[6, 4],
            vec![demo_spans(6), demo_spans(4)],
            &mut rng,
        )
    }

    #[test]
    fn shapes_flow_through_all_partitions() {
        for partition in crate::NetPartition::all_nine() {
            let gen = build(partition);
            let g = Graph::new();
            let ctx = Ctx::train(&g, 0);
            let z = g.leaf(Tensor::ones(5, 12));
            let slices = gen.top_forward(&ctx, z);
            assert_eq!(slices.len(), 2);
            let (logits0, act0) = gen.client_forward(&ctx, 0, slices[0]);
            assert_eq!(g.shape(logits0), (5, 6), "{partition}");
            assert_eq!(g.shape(act0), (5, 6), "{partition}");
            let (_l1, act1) = gen.client_forward(&ctx, 1, slices[1]);
            assert_eq!(g.shape(act1), (5, 4), "{partition}");
        }
    }

    #[test]
    fn activations_respect_span_semantics() {
        let gen = build(crate::NetPartition::d2g0());
        let g = Graph::new();
        let ctx = Ctx::train(&g, 1);
        let z = g.leaf(Tensor::randn(8, 12, &mut StdRng::seed_from_u64(2)));
        let slices = gen.top_forward(&ctx, z);
        let (_, act) = gen.client_forward(&ctx, 0, slices[0]);
        let v = g.value(act);
        for r in 0..8 {
            let row = v.row_slice(r);
            assert!(row[0].abs() <= 1.0, "tanh output out of range");
            let one_hot_sum: f32 = row[1..].iter().sum();
            assert!((one_hot_sum - 1.0).abs() < 1e-4, "indicator span must be a distribution");
        }
    }

    #[test]
    fn slice_widths_sum_to_top_output() {
        let gen = build(crate::NetPartition::d2g2());
        // g_top = 2 blocks of width 32 with concat-residual over input 12.
        let total: usize = gen.slice_widths().iter().sum();
        assert_eq!(total, 12 + 32 + 32);
    }

    #[test]
    fn param_partition_is_disjoint_and_complete() {
        let gen = build(crate::NetPartition::d2g0());
        let all = gen.params().len();
        let split =
            gen.top_params().len() + gen.client_params(0).len() + gen.client_params(1).len();
        assert_eq!(all, split);
    }
}
