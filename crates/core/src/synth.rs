//! Standalone synthesis engine extracted from the trainer.
//!
//! A [`Synthesizer`] owns everything generation needs — a rebuilt
//! [`SplitGenerator`], each client's fitted [`TableTransformer`], the
//! conditional-vector samplers and layout — and nothing it doesn't: no
//! transport, no discriminator, no shuffler. It is the unit the serving
//! registry caches per model (DESIGN.md §14).
//!
//! # Batching invariance
//!
//! [`Synthesizer::synth_batch`] guarantees that every request's rows are a
//! pure function of the request `(n, seed, cond)` and the model weights —
//! never of the other requests sharing the forward pass or of the internal
//! chunk size. Three mechanisms compose to give that:
//!
//! * request inputs (`z`, conditional vectors) come from a per-request
//!   `StdRng` stream, materialized up front and row-sliced into chunks;
//! * stochastic activations draw noise through [`Ctx::eval_rows`] substreams
//!   keyed by `row_seed(request_seed, row)` — see `gtv_nn::row_seed`;
//! * every eval-mode graph op is row-local (batch-norm uses running
//!   statistics, the matmul kernel choice is per row).
//!
//! The serving engine exploits this to coalesce concurrent requests into
//! one forward pass while answering each byte-identically to a solo run.

use crate::config::GtvConfig;
use crate::generator::SplitGenerator;
use gtv_cond::{ClientCondSampler, CondChoice, CondLayout};
use gtv_data::Table;
use gtv_encoders::TableTransformer;
use gtv_nn::{row_seed, Ctx, LoadStateError, StateDict, Stateful};
use gtv_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Hard ceiling on rows per request, protecting the server from a single
/// request monopolizing memory. Requests above it are rejected up front.
pub const MAX_ROWS_PER_REQUEST: usize = 1 << 20;

/// A fixed conditional constraint: every generated row is conditioned on
/// `column` (client-local index) taking `category`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondSpec {
    /// Which client's table holds the conditioned column.
    pub client: usize,
    /// Client-local column index (must be categorical).
    pub column: usize,
    /// Category index within that column.
    pub category: usize,
}

/// One sampling request: `n` rows from the model seeded with `seed`,
/// optionally pinned to a conditional-vector choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthSpec {
    /// Number of rows to generate.
    pub n: usize,
    /// Request seed: fully determines the output together with the weights.
    pub seed: u64,
    /// Optional fixed condition; `None` samples conditions per request from
    /// the original-frequency distribution (the CTGAN generation default).
    pub cond: Option<CondSpec>,
}

/// Typed rejection for an invalid or oversized request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// `n == 0` rows were requested.
    EmptyRequest,
    /// The request exceeds [`MAX_ROWS_PER_REQUEST`].
    TooManyRows {
        /// Rows asked for.
        requested: usize,
        /// The enforced ceiling.
        cap: usize,
    },
    /// `cond.client` does not name a client of this model.
    UnknownClient {
        /// The out-of-range client index.
        client: usize,
        /// How many clients the model has.
        n_clients: usize,
    },
    /// `cond.column` is not a categorical column of that client (or the
    /// client has no categorical columns at all).
    NotCategorical {
        /// The conditioned client.
        client: usize,
        /// The rejected column index.
        column: usize,
    },
    /// `cond.category` is out of range for the conditioned column.
    UnknownCategory {
        /// The conditioned client.
        client: usize,
        /// The conditioned column.
        column: usize,
        /// The rejected category index.
        category: usize,
        /// Exclusive upper bound on valid categories.
        n_categories: usize,
    },
    /// The weight dictionary did not match the model architecture.
    Weights(LoadStateError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptyRequest => write!(f, "request asks for zero rows"),
            SynthError::TooManyRows { requested, cap } => {
                write!(f, "request asks for {requested} rows, cap is {cap}")
            }
            SynthError::UnknownClient { client, n_clients } => {
                write!(f, "conditioned client {client} out of range (model has {n_clients})")
            }
            SynthError::NotCategorical { client, column } => {
                write!(f, "column {column} of client {client} is not categorical")
            }
            SynthError::UnknownCategory { client, column, category, n_categories } => {
                write!(
                    f,
                    "category {category} out of range for client {client} column {column} ({n_categories} categories)"
                )
            }
            SynthError::Weights(e) => write!(f, "weight restore failed: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<LoadStateError> for SynthError {
    fn from(e: LoadStateError) -> Self {
        SynthError::Weights(e)
    }
}

/// Per-request inputs materialized up front so chunking cannot change them.
struct Plan {
    g_in: Tensor,
    row_seeds: Vec<u64>,
}

/// A cached, transport-free generation engine for one trained model.
#[derive(Debug)]
pub struct Synthesizer {
    generator: SplitGenerator,
    transformers: Vec<TableTransformer>,
    samplers: Vec<Option<ClientCondSampler>>,
    layout: CondLayout,
    ratios: Vec<f64>,
    embedding_dim: usize,
    chunk_rows: usize,
}

impl Synthesizer {
    /// Rebuilds a generator from its architecture inputs plus a weight
    /// dictionary (generator entries of a [`crate::GtvTrainer::save_weights`]
    /// export) and wraps it with the decode-side state.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::Weights`] when the dictionary is missing
    /// entries or shapes them differently — typically a partition, width or
    /// client-count mismatch with the saving run.
    pub fn from_parts(
        config: &GtvConfig,
        transformers: Vec<TableTransformer>,
        samplers: Vec<Option<ClientCondSampler>>,
        ratios: Vec<f64>,
        dict: &StateDict,
    ) -> Result<Self, SynthError> {
        let layout = CondLayout::new(
            samplers.iter().map(|s| s.as_ref().map_or(0, ClientCondSampler::width)).collect(),
        );
        let client_widths: Vec<usize> = transformers.iter().map(TableTransformer::width).collect();
        let client_spans = transformers.iter().map(TableTransformer::spans).collect();
        let g_input = config.embedding_dim + layout.total_width();
        // The init RNG only seeds parameters that load_state overwrites.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let generator =
            SplitGenerator::new(config, g_input, &ratios, &client_widths, client_spans, &mut rng);
        generator.load_state(dict)?;
        Ok(Self {
            generator,
            transformers,
            samplers,
            layout,
            ratios,
            embedding_dim: config.embedding_dim,
            chunk_rows: config.batch.max(1),
        })
    }

    /// Number of clients (vertical shards) behind this model.
    pub fn n_clients(&self) -> usize {
        self.transformers.len()
    }

    /// The internal forward-pass chunk size in rows.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Sets the forward-pass chunk size (the serving engine aligns it with
    /// its coalescing cap so a whole request group runs as one pass).
    /// Chunking never changes output bits — only memory/latency shape.
    pub fn set_chunk_rows(&mut self, rows: usize) {
        self.chunk_rows = rows.max(1);
    }

    /// Width of the generator input (`embedding_dim + CV width`) — the shape
    /// serving warmup pins in the buffer pool.
    pub fn input_width(&self) -> usize {
        self.embedding_dim + self.layout.total_width()
    }

    /// The first conditionable column as `(client, client-local column)`,
    /// if any client holds a categorical column — a convenient default for
    /// smoke requests and serving demos.
    pub fn first_categorical(&self) -> Option<(usize, usize)> {
        self.samplers
            .iter()
            .enumerate()
            .find_map(|(client, s)| s.as_ref().map(|s| (client, s.column_of_slot(0))))
    }

    /// Validates a request without running it.
    ///
    /// # Errors
    ///
    /// Returns the same typed [`SynthError`] `synth_batch` would.
    pub fn validate(&self, spec: &SynthSpec) -> Result<(), SynthError> {
        if spec.n == 0 {
            return Err(SynthError::EmptyRequest);
        }
        if spec.n > MAX_ROWS_PER_REQUEST {
            return Err(SynthError::TooManyRows { requested: spec.n, cap: MAX_ROWS_PER_REQUEST });
        }
        let Some(cond) = &spec.cond else { return Ok(()) };
        let n_clients = self.n_clients();
        if cond.client >= n_clients {
            return Err(SynthError::UnknownClient { client: cond.client, n_clients });
        }
        let Some(sampler) = &self.samplers[cond.client] else {
            return Err(SynthError::NotCategorical { client: cond.client, column: cond.column });
        };
        let Some(slot) = sampler.slot_of_column(cond.column) else {
            return Err(SynthError::NotCategorical { client: cond.client, column: cond.column });
        };
        let n_categories = sampler.categories_of_slot(slot);
        if cond.category >= n_categories {
            return Err(SynthError::UnknownCategory {
                client: cond.client,
                column: cond.column,
                category: cond.category,
                n_categories,
            });
        }
        Ok(())
    }

    /// Generates one request's rows. Equivalent to a singleton
    /// [`Synthesizer::synth_batch`].
    ///
    /// # Errors
    ///
    /// See [`Synthesizer::validate`].
    pub fn synth_one(&self, spec: &SynthSpec) -> Result<Table, SynthError> {
        let mut tables = self.synth_batch(std::slice::from_ref(spec))?;
        match tables.pop() {
            Some(t) => Ok(t),
            // Unreachable: synth_batch returns one table per spec.
            None => Err(SynthError::EmptyRequest),
        }
    }

    /// Generates every request in `specs`, coalescing them into shared
    /// forward passes of at most [`Synthesizer::chunk_rows`] rows. Each
    /// returned table is byte-identical to what the same spec yields solo,
    /// in any grouping, at any `GTV_THREADS` (see the module docs).
    ///
    /// # Errors
    ///
    /// Validation failures reject the *whole* group — the serving engine
    /// validates per request before coalescing, so a bad request never
    /// poisons its batch-mates there.
    pub fn synth_batch(&self, specs: &[SynthSpec]) -> Result<Vec<Table>, SynthError> {
        for spec in specs {
            self.validate(spec)?;
        }
        let plans: Vec<Plan> = specs.iter().map(|s| self.plan(s)).collect();
        let total: usize = specs.iter().map(|s| s.n).sum();
        if total == 0 {
            return Ok(Vec::new());
        }

        // Global row-major stack of all request inputs, then fixed-size
        // forward chunks over it. Chunk boundaries may split a request;
        // row independence makes that unobservable.
        let g_in_refs: Vec<&Tensor> = plans.iter().map(|p| &p.g_in).collect();
        let g_in_all = Tensor::concat_rows(&g_in_refs);
        drop(g_in_refs);
        let seeds_all: Vec<u64> = plans.iter().flat_map(|p| p.row_seeds.iter().copied()).collect();
        for plan in plans {
            plan.g_in.recycle();
        }

        let n_clients = self.n_clients();
        let mut per_client: Vec<Vec<Tensor>> = vec![Vec::new(); n_clients];
        let mut done = 0;
        while done < total {
            let take = self.chunk_rows.min(total - done);
            let rows: Vec<usize> = (done..done + take).collect();
            let chunk = g_in_all.select_rows(&rows);
            let g = Graph::new();
            // Inference graphs own every leaf (param clones, noise, the
            // chunk input below), so their storage recycles with the rest.
            g.set_recycle_leaves(true);
            let ctx = Ctx::eval_rows(&g, seeds_all[done..done + take].to_vec());
            let chunk = g.leaf(chunk);
            let slices = self.generator.top_forward(&ctx, chunk);
            for (c, out) in per_client.iter_mut().enumerate() {
                let (_, act) = self.generator.client_forward(&ctx, c, slices[c]);
                out.push(g.value(act));
            }
            // Each chunk is its own step scope: park its graph storage for
            // the next chunk (and the next request) to recycle.
            g.reset();
            done += take;
        }
        g_in_all.recycle();

        let stacked: Vec<Tensor> = per_client
            .into_iter()
            .map(|chunks| {
                let refs: Vec<&Tensor> = chunks.iter().collect();
                let joined = Tensor::concat_rows(&refs);
                drop(refs);
                for chunk in chunks {
                    chunk.recycle();
                }
                joined
            })
            .collect();

        // Slice each request's row range back out and decode per client.
        let mut out = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for spec in specs {
            let rows: Vec<usize> = (offset..offset + spec.n).collect();
            let shares: Vec<Table> = stacked
                .iter()
                .zip(&self.transformers)
                .map(|(m, t)| {
                    let slice = m.select_rows(&rows);
                    let share = t.decode(&slice);
                    slice.recycle();
                    share
                })
                .collect();
            let refs: Vec<&Table> = shares.iter().collect();
            out.push(Table::hconcat(&refs));
            offset += spec.n;
        }
        for m in stacked {
            m.recycle();
        }
        Ok(out)
    }

    /// Materializes a validated request's inputs from its own seed streams.
    fn plan(&self, spec: &SynthSpec) -> Plan {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let cv = if self.layout.total_width() == 0 {
            None
        } else {
            match &spec.cond {
                Some(cond) => self.fixed_cv(cond, spec.n),
                None => self.sampled_cv(spec.n, &mut rng),
            }
        };
        let z = Tensor::randn(spec.n, self.embedding_dim, &mut rng);
        let g_in = match cv {
            Some(cv) => {
                let joined = Tensor::concat_cols(&[&z, &cv]);
                z.recycle();
                cv.recycle();
                joined
            }
            None => z,
        };
        let row_seeds = (0..spec.n as u64).map(|r| row_seed(spec.seed, r)).collect();
        Plan { g_in, row_seeds }
    }

    /// Every row pinned to the request's fixed condition. `None` only when
    /// validation was skipped and the cond is invalid — callers validate.
    fn fixed_cv(&self, cond: &CondSpec, n: usize) -> Option<Tensor> {
        let sampler = self.samplers.get(cond.client)?.as_ref()?;
        let slot = sampler.slot_of_column(cond.column)?;
        if cond.category >= sampler.categories_of_slot(slot) {
            return None;
        }
        let choice = CondChoice { slot, column: cond.column, category: cond.category };
        let choices = vec![choice; n];
        Some(sampler.materialize(
            &choices,
            self.layout.offset(cond.client),
            self.layout.total_width(),
        ))
    }

    /// Generation-time conditional vectors, mirroring the trainer: one
    /// constructing client drawn ∝ `P_r` per request, then original-frequency
    /// category sampling — all from the request's RNG stream.
    fn sampled_cv(&self, n: usize, rng: &mut StdRng) -> Option<Tensor> {
        let eligible: Vec<usize> =
            (0..self.samplers.len()).filter(|&i| self.samplers[i].is_some()).collect();
        let (&first, rest) = eligible.split_first()?;
        let total: f64 = eligible.iter().map(|&i| self.ratios[i]).sum();
        let mut u = rng.gen::<f64>() * total;
        let mut p = first;
        for &i in std::iter::once(&first).chain(rest) {
            u -= self.ratios[i];
            p = i;
            if u <= 0.0 {
                break;
            }
        }
        let sampler = self.samplers[p].as_ref()?;
        let choices = sampler.sample_batch_original(n, rng);
        Some(sampler.materialize(&choices, self.layout.offset(p), self.layout.total_width()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GtvConfig, GtvTrainer};
    use gtv_data::to_csv_string;
    use gtv_data::Dataset;

    fn smoke_synthesizer() -> Synthesizer {
        let t = Dataset::Loan.generate(96, 3);
        let n = t.n_cols();
        let shards = t.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train_round().expect("smoke round");
        trainer.synthesizer().expect("synthesizer")
    }

    #[test]
    fn solo_and_coalesced_requests_are_byte_identical() {
        let synth = smoke_synthesizer();
        // Condition on the first categorical column of the first client
        // that has one (tests share the module, so fields are visible).
        let (client, sampler) = synth
            .samplers
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.as_ref().map(|s| (i, s)))
            .expect("loan data has categorical columns");
        let cond = CondSpec { client, column: sampler.column_of_slot(0), category: 0 };
        let a = SynthSpec { n: 7, seed: 11, cond: None };
        let b = SynthSpec { n: 5, seed: 99, cond: Some(cond) };
        let solo_a = synth.synth_one(&a).expect("solo a");
        let solo_b = synth.synth_one(&b).expect("solo b");
        let coalesced = synth.synth_batch(&[a, b]).expect("coalesced");
        assert_eq!(to_csv_string(&coalesced[0]), to_csv_string(&solo_a));
        assert_eq!(to_csv_string(&coalesced[1]), to_csv_string(&solo_b));
    }

    #[test]
    fn chunk_size_is_unobservable() {
        let mut synth = smoke_synthesizer();
        let spec = SynthSpec { n: 23, seed: 5, cond: None };
        let whole = synth.synth_one(&spec).expect("whole");
        synth.set_chunk_rows(4);
        let chunked = synth.synth_one(&spec).expect("chunked");
        assert_eq!(to_csv_string(&whole), to_csv_string(&chunked));
    }

    #[test]
    fn rebuilt_from_saved_weights_matches_source_trainer() {
        let t = Dataset::Loan.generate(96, 3);
        let n = t.n_cols();
        let shards = t.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
        let mut trainer = GtvTrainer::new(shards, GtvConfig::smoke());
        trainer.train_round().expect("round");
        let dict = trainer.save_weights();

        let direct = trainer.synthesizer().expect("synthesizer");
        let shards2 = t.vertical_split(&[(0..n / 2).collect(), (n / 2..n).collect()]);
        let mut fresh = GtvTrainer::new(shards2, GtvConfig::smoke());
        fresh.load_weights(&dict).expect("load");
        let rebuilt = fresh.synthesizer().expect("synthesizer");

        let spec = SynthSpec { n: 9, seed: 1234, cond: None };
        assert_eq!(
            to_csv_string(&direct.synth_one(&spec).expect("direct")),
            to_csv_string(&rebuilt.synth_one(&spec).expect("rebuilt")),
        );
    }

    #[test]
    fn invalid_requests_get_typed_errors() {
        let synth = smoke_synthesizer();
        assert_eq!(
            synth.validate(&SynthSpec { n: 0, seed: 0, cond: None }),
            Err(SynthError::EmptyRequest)
        );
        let huge = SynthSpec { n: MAX_ROWS_PER_REQUEST + 1, seed: 0, cond: None };
        assert!(matches!(synth.validate(&huge), Err(SynthError::TooManyRows { .. })));
        let bad_client =
            SynthSpec { n: 1, seed: 0, cond: Some(CondSpec { client: 9, column: 0, category: 0 }) };
        assert!(matches!(synth.validate(&bad_client), Err(SynthError::UnknownClient { .. })));
        let bad_cat = SynthSpec {
            n: 1,
            seed: 0,
            cond: Some(CondSpec { client: 0, column: 1, category: 10_000 }),
        };
        assert!(matches!(
            synth.validate(&bad_cat),
            Err(SynthError::UnknownCategory { .. }) | Err(SynthError::NotCategorical { .. })
        ));
    }
}
