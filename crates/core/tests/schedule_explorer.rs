//! Loom-lite schedule explorer over the GTV round choreography
//! (DESIGN.md §11) — the dynamic counterpart of the static L10
//! protocol-order lint.
//!
//! Three properties are checked against the *real* trainer and transport,
//! not models of them:
//!
//! 1. **Delivery-order insensitivity**: replaying the pipelined schedule
//!    with every `send_all` fan-out delivered in a seeded pseudo-random
//!    order produces bit-identical weights and synthetic output at 2 and 3
//!    parties — `gather` re-sorting replies into fixed sender order is the
//!    whole reason this holds.
//! 2. **Trace hygiene**: the happens-before graph recorded by
//!    `crossbeam::sched` over full trainer rounds is acyclic (every edge
//!    points forward in event-id order), with no deadlock and no
//!    lock-order inversion among the transport and pool locks.
//! 3. **Detector sensitivity**: the same instrumentation *does* flag an
//!    intentionally-deadlocking fixture (all parties blocked in `recv`
//!    with nothing in flight) and an intentional lock-order inversion —
//!    the clean traces above are evidence, not vacuity.
//!
//! The `sched` registry is process-global, so every test serializes on one
//! gate mutex; the trainer sweep additionally pins the worker pool.

use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::{Dataset, Table};
use gtv_tensor::pool;
use gtv_vfl::{Network, PartyId, Transport};

/// Serializes tests that touch the global `sched` registry.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn shards(parties: usize, rows: usize) -> Vec<Table> {
    let t = Dataset::Loan.generate(rows, 0);
    let n = t.n_cols();
    let per = n / parties;
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(parties);
    for p in 0..parties {
        let end = if p + 1 == parties { n } else { (p + 1) * per };
        groups.push((p * per..end).collect());
    }
    t.vertical_split(&groups)
}

fn config() -> GtvConfig {
    GtvConfig {
        rounds: 2,
        d_steps: 1,
        batch: 16,
        block_width: 32,
        embedding_dim: 8,
        pipelined_rounds: true,
        threads: 0,
        ..GtvConfig::default()
    }
}

/// Trains 2 pipelined rounds and synthesizes, optionally permuting every
/// fan-out's delivery order; returns (weight bytes, synthetic table).
fn run(parties: usize, permute_seed: Option<u64>) -> (Vec<u8>, Table) {
    let mut trainer = GtvTrainer::new(shards(parties, 48), config());
    pool::set_threads(2);
    if let Some(seed) = permute_seed {
        trainer.network().permute_deliveries(seed);
    }
    trainer.train().expect("transport is healthy");
    let synth = trainer.synthesize(20, 7).expect("transport is healthy");
    (trainer.save_weights().to_bytes(), synth)
}

#[test]
fn pipelined_rounds_are_insensitive_to_delivery_order() {
    let _gate = serial();
    for &parties in &[2usize, 3] {
        let (ref_weights, ref_synth) = run(parties, None);
        for &seed in &[1u64, 7, 42] {
            // Trace the permuted replay too: the run must be clean under
            // the explorer, not just produce the right bytes.
            crossbeam::sched::enable();
            let (weights, synth) = run(parties, Some(seed));
            crossbeam::sched::disable();
            let report = crossbeam::sched::take_report();
            assert_eq!(
                weights, ref_weights,
                "permuted delivery changed weights (parties={parties}, seed={seed})"
            );
            assert_eq!(
                synth, ref_synth,
                "permuted delivery changed synthesis (parties={parties}, seed={seed})"
            );
            assert!(report.events > 0, "trainer rounds must leave a trace");
            assert!(
                report.hb_edges.iter().all(|&(a, b)| a < b),
                "happens-before must be acyclic: every edge forward in event order"
            );
            assert!(
                report.deadlocks.is_empty(),
                "no deadlock in a completing run: {:?}",
                report.deadlocks
            );
            assert!(
                report.lock_cycles.is_empty(),
                "transport/pool locks must nest consistently: {:?}",
                report.lock_cycles
            );
        }
    }
    pool::set_threads(1);
}

#[test]
fn all_parties_blocked_in_recv_is_reported_as_deadlock() {
    let _gate = serial();
    // Intentionally-deadlocking fixture: server and client each wait for a
    // message the other never sends. Bounded recv keeps the test finite;
    // the explorer must still call the window deadlocked.
    let net = Arc::new(Network::new(1));
    net.set_recv_timeout(Duration::from_millis(200));
    crossbeam::sched::enable();
    let ready = Arc::new(Barrier::new(2));
    std::thread::scope(|s| {
        for party in [PartyId::Server, PartyId::Client(0)] {
            let net = Arc::clone(&net);
            let ready = Arc::clone(&ready);
            s.spawn(move || {
                crossbeam::sched::register_party(&format!("{party:?}"));
                // Both parties must be registered before either blocks, or
                // a lone early blocker is trivially "all parties".
                ready.wait();
                let got = net.recv(party);
                assert!(got.is_err(), "nothing was ever sent to {party:?}");
            });
        }
    });
    crossbeam::sched::disable();
    let report = crossbeam::sched::take_report();
    assert!(
        report.deadlocks.iter().any(|d| d.contains("all 2 parties")),
        "both parties blocked with nothing in flight must be reported: {:?}",
        report.deadlocks
    );
}

#[test]
fn lock_order_inversion_is_reported_as_a_cycle() {
    let _gate = serial();
    crossbeam::sched::enable();
    let a = parking_lot::Mutex::new(0u32);
    let b = parking_lot::Mutex::new(0u32);
    {
        let _a = a.lock();
        *b.lock() += 1;
    }
    {
        let _b = b.lock();
        *a.lock() += 1;
    }
    crossbeam::sched::disable();
    let report = crossbeam::sched::take_report();
    assert_eq!(
        report.lock_cycles.len(),
        1,
        "a↷b then b↷a is one inversion cycle: {:?}",
        report.lock_cycles
    );
    assert_eq!(report.lock_cycles[0].len(), 2, "the cycle spans exactly the two locks");
    assert!(report.deadlocks.is_empty(), "no recv ever blocked here");
}

#[test]
fn channel_trace_records_the_send_to_recv_edge() {
    let _gate = serial();
    crossbeam::sched::enable();
    let (tx, rx) = crossbeam::channel::unbounded();
    std::thread::spawn(move || tx.send(7u32))
        .join()
        .expect("sender thread runs to completion")
        .expect("receiver is alive");
    assert_eq!(rx.recv(), Ok(7));
    crossbeam::sched::disable();
    let report = crossbeam::sched::take_report();
    // Exactly two events — the send and the recv — on different threads,
    // so the only possible edge is the cross-thread message edge.
    assert_eq!(report.events, 2, "one send, one recv");
    assert_eq!(report.hb_edges, vec![(1, 2)], "send happens-before its recv");
    // The report is a take: a second read must see a fresh window.
    assert_eq!(crossbeam::sched::take_report().events, 0);
}
