//! Bit-identity of the pipelined round engine (DESIGN.md §10).
//!
//! The pipelined schedule only changes *when* messages move (fan-out first,
//! fan-in in fixed party order), never what any party computes or in which
//! order RNG draws happen — so trained weights and synthetic output must be
//! **byte-identical** to the lockstep schedule for every worker-pool size,
//! party count and wire codec. Each run covers ≥2 full rounds, so every
//! exchange type is exercised, including the WGAN-GP gradient-penalty
//! double-backward inside `d_step`.
//!
//! Worker-pool size is process-global state, so the whole sweep runs inside
//! one test (Rust's harness runs separate tests concurrently).

use gtv::{GtvConfig, GtvTrainer};
use gtv_data::{Dataset, Table};
use gtv_tensor::pool;

fn shards(parties: usize, rows: usize) -> Vec<Table> {
    let t = Dataset::Loan.generate(rows, 0);
    let n = t.n_cols();
    let per = n / parties;
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(parties);
    for p in 0..parties {
        let end = if p + 1 == parties { n } else { (p + 1) * per };
        groups.push((p * per..end).collect());
    }
    t.vertical_split(&groups)
}

fn config(pipelined: bool, sparse: bool) -> GtvConfig {
    GtvConfig {
        rounds: 2,
        d_steps: 1,
        batch: 16,
        block_width: 32,
        embedding_dim: 8,
        pipelined_rounds: pipelined,
        sparse_wire: sparse,
        // Explicit thread counts are set through pool::set_threads below;
        // keep the config's own request at "auto" so it does not fight the
        // sweep (GtvTrainer::new re-resolves it, so we re-set after).
        threads: 0,
        ..GtvConfig::default()
    }
}

/// Trains 2 rounds and synthesizes; returns (weight bytes, synthetic table).
fn run(parties: usize, pipelined: bool, sparse: bool, threads: usize) -> (Vec<u8>, Table) {
    let mut trainer = GtvTrainer::new(shards(parties, 48), config(pipelined, sparse));
    pool::set_threads(threads);
    trainer.train().expect("transport is healthy");
    let synth = trainer.synthesize(20, 7).expect("transport is healthy");
    (trainer.save_weights().to_bytes(), synth)
}

#[test]
fn pipelined_is_bit_identical_to_lockstep_for_all_thread_and_party_counts() {
    for &parties in &[2usize, 3] {
        // Single-threaded lockstep is the semantic reference.
        let (ref_weights, ref_synth) = run(parties, false, false, 1);
        for &threads in &[1usize, 2, 8] {
            let (w, s) = run(parties, true, false, threads);
            assert_eq!(
                w, ref_weights,
                "pipelined weights diverged (parties={parties}, threads={threads})"
            );
            assert_eq!(
                s, ref_synth,
                "pipelined synthesis diverged (parties={parties}, threads={threads})"
            );
        }
        // The sparse codec changes bytes on the wire, never decoded values:
        // the trained state must stay byte-identical too.
        let (w, s) = run(parties, true, true, 8);
        assert_eq!(w, ref_weights, "sparse wire changed weights (parties={parties})");
        assert_eq!(s, ref_synth, "sparse wire changed synthesis (parties={parties})");
    }
    pool::set_threads(1);
}
