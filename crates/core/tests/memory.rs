//! Step-scoped memory regression tests (DESIGN.md §9): a long training run
//! must not leak graph nodes or pool bytes, and a warm recycling pool must
//! cut per-step allocator traffic by well over the 5× the issue demands.
//!
//! Both tests use continuous-only tables so every training step builds a
//! structurally identical graph (no conditional-vector subgraphs whose shape
//! depends on sampled categories), run single-threaded so the thread-local
//! pool counters are exact, and serialize on a mutex so they cannot observe
//! each other's pool configuration.

use gtv::{GtvConfig, GtvTrainer, StepAllocStats};
use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Schema, Table};
use gtv_tensor::pool_mem;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Two row-aligned continuous-only client tables.
fn continuous_shards(rows: usize) -> Vec<Table> {
    let make = |names: &[&str], phase: f64| {
        let metas = names.iter().map(|n| ColumnMeta::new(*n, ColumnKind::Continuous)).collect();
        let cols = names
            .iter()
            .enumerate()
            .map(|(i, _)| {
                ColumnData::Float(
                    (0..rows).map(|r| ((r as f64) * 0.37 + i as f64 + phase).sin()).collect(),
                )
            })
            .collect();
        Table::new(Schema::new(metas, None), cols)
    };
    vec![make(&["a1", "a2", "a3"], 0.0), make(&["b1", "b2"], 1.0)]
}

fn tiny_config(pool_recycling: bool) -> GtvConfig {
    GtvConfig { threads: 1, pool_recycling, alloc_stats: true, ..GtvConfig::smoke() }
}

#[test]
fn fifty_steps_of_training_plateau_in_nodes_and_pool_bytes() {
    let _guard = SERIAL.lock().unwrap();
    pool_mem::clear();
    pool_mem::reset_stats();

    // smoke() runs 1 d-step + 1 g-step per round: 26 rounds = 52 steps.
    let mut trainer = GtvTrainer::new(continuous_shards(64), tiny_config(true));
    let mut held_per_round = Vec::new();
    for _ in 0..26 {
        trainer.train_round().unwrap();
        held_per_round.push(pool_mem::stats().bytes_held);
    }

    let stats: &[StepAllocStats] = trainer.alloc_stats();
    assert!(stats.len() >= 50, "expected at least 50 recorded steps, got {}", stats.len());

    // Steps alternate d, g, d, g, … — with continuous-only data both graph
    // shapes are fixed, so from step 2 on every step's live node count must
    // equal its parity sibling from the first round. Growth here is a leak.
    for (i, s) in stats.iter().enumerate().skip(2) {
        assert_eq!(
            s.live_nodes,
            stats[i % 2].live_nodes,
            "live graph nodes grew at step {i} — storage is leaking into the arena"
        );
    }

    // The pool's parked bytes must plateau once every step shape has been
    // seen. The balance is not bit-exact round to round — leaf and optimizer
    // tensors take from the pool but are dropped (pinned) rather than
    // parked, so slack matching lets capacities migrate between buckets —
    // but it must stay bounded: a genuine leak (parking duplicates every
    // step) would grow linearly, ~25× over this run, not within 2×.
    let steady = held_per_round[2];
    assert!(steady > 0, "a warm pool must retain recycled step storage");
    for (round, &held) in held_per_round.iter().enumerate().skip(2) {
        assert!(
            held <= steady * 2,
            "pool bytes kept growing at round {round}: {held} vs steady {steady} \
             ({held_per_round:?})"
        );
    }
    pool_mem::clear();
}

#[test]
fn recycling_cuts_per_step_allocations_at_least_five_fold() {
    let _guard = SERIAL.lock().unwrap();

    // Returns the mean allocator misses per step over the post-warmup tail.
    let misses_per_step = |recycling: bool| -> f64 {
        pool_mem::clear();
        pool_mem::reset_stats();
        let mut trainer = GtvTrainer::new(continuous_shards(64), tiny_config(recycling));
        for _ in 0..8 {
            trainer.train_round().unwrap();
        }
        let stats = trainer.alloc_stats();
        let tail = &stats[stats.len() - 9..];
        let steps = (tail.len() - 1) as f64;
        (tail[tail.len() - 1].pool_misses - tail[0].pool_misses) as f64 / steps
    };

    let with_pool = misses_per_step(true);
    let without_pool = misses_per_step(false);
    assert!(
        without_pool >= 5.0 * with_pool,
        "recycling must cut allocations per step at least 5×: \
         {without_pool:.1}/step pool-off vs {with_pool:.1}/step pool-on"
    );
    // And recycling-off really does allocate every buffer fresh.
    assert!(without_pool > 50.0, "a training step allocates many buffers: {without_pool}");
    pool_mem::set_enabled(true);
    pool_mem::clear();
}
