//! CTGAN building blocks: the generator's residual (RN) block and the
//! discriminator's fully-connected (FN) block, exactly as described in the
//! GTV paper's baseline (§4.1).

use crate::ctx::Ctx;
use crate::init::Init;
use crate::layers::{BatchNorm1d, Dropout, Linear};
use crate::param::{Module, Param};
use gtv_tensor::{FusedAct, Var};
use rand::Rng;

/// Generator residual block: `FC → BatchNorm → ReLU`, output concatenated
/// with the input (CTGAN's `Residual`), so `out_dim = width + in_dim`.
#[derive(Debug)]
pub struct ResidualBlock {
    fc: Linear,
    bn: BatchNorm1d,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_dim` features to
    /// `width + in_dim` features.
    pub fn new(name: &str, in_dim: usize, width: usize, rng: &mut impl Rng) -> Self {
        Self {
            fc: Linear::new(&format!("{name}.fc"), in_dim, width, Init::KaimingUniform, rng),
            bn: BatchNorm1d::new(&format!("{name}.bn"), width),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.fc.in_dim()
    }

    /// Output width (`fc` width + input width, because of the concat skip).
    pub fn out_dim(&self) -> usize {
        self.fc.out_dim() + self.fc.in_dim()
    }

    /// The fully-connected sub-layer.
    pub fn fc(&self) -> &Linear {
        &self.fc
    }

    /// The batch-norm sub-layer.
    pub fn bn(&self) -> &BatchNorm1d {
        &self.bn
    }

    /// Applies the block.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let g = ctx.graph();
        let h = self.fc.forward(ctx, x);
        let h = self.bn.forward(ctx, h);
        let h = g.relu(h);
        g.concat_cols(&[h, x])
    }
}

impl Module for ResidualBlock {
    fn params(&self) -> Vec<Param> {
        let mut p = self.fc.params();
        p.extend(self.bn.params());
        p
    }
}

/// Discriminator block: `FC → LeakyReLU(0.2) → Dropout(0.5)`.
#[derive(Debug)]
pub struct FnBlock {
    fc: Linear,
    dropout: Dropout,
    slope: f32,
}

impl FnBlock {
    /// Creates an FN block mapping `in_dim` features to `width` features.
    pub fn new(name: &str, in_dim: usize, width: usize, rng: &mut impl Rng) -> Self {
        Self {
            fc: Linear::new(&format!("{name}.fc"), in_dim, width, Init::KaimingUniform, rng),
            dropout: Dropout::new(0.5),
            slope: 0.2,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.fc.in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.fc.out_dim()
    }

    /// The fully-connected sub-layer.
    pub fn fc(&self) -> &Linear {
        &self.fc
    }

    /// Applies the block. The FC layer and leaky-ReLU run as one fused
    /// `affine_act` node; see DESIGN.md §9 for the bit-identity argument.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let h = self.fc.forward_act(ctx, x, FusedAct::LeakyRelu(self.slope));
        self.dropout.forward(ctx, h)
    }
}

impl Module for FnBlock {
    fn params(&self) -> Vec<Param> {
        self.fc.params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::{Graph, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn residual_block_concats_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = ResidualBlock::new("rn", 8, 16, &mut rng);
        assert_eq!(block.out_dim(), 24);
        let g = Graph::new();
        let ctx = Ctx::train(&g, 0);
        let x = g.leaf(Tensor::ones(4, 8));
        let y = block.forward(&ctx, x);
        assert_eq!(g.shape(y), (4, 24));
        // Last 8 columns are the untouched input.
        let tail = g.value(y).slice_cols(16, 8);
        assert_eq!(tail, Tensor::ones(4, 8));
    }

    #[test]
    fn fn_block_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = FnBlock::new("fn", 10, 5, &mut rng);
        assert_eq!(block.out_dim(), 5);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x = g.leaf(Tensor::ones(3, 10));
        let y = block.forward(&ctx, x);
        assert_eq!(g.shape(y), (3, 5));
    }

    #[test]
    fn blocks_expose_all_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let rn = ResidualBlock::new("rn", 4, 4, &mut rng);
        assert_eq!(rn.params().len(), 4); // fc.w, fc.b, bn.gamma, bn.beta
        let f = FnBlock::new("fn", 4, 4, &mut rng);
        assert_eq!(f.params().len(), 2);
    }
}
