//! Weight initialization schemes.

use gtv_tensor::Tensor;
use rand::Rng;

/// Initialization scheme for linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Init {
    /// PyTorch `nn.Linear` default: `U(-1/√fan_in, 1/√fan_in)`.
    #[default]
    KaimingUniform,
    /// Xavier/Glorot uniform: `U(±√(6/(fan_in+fan_out)))`.
    XavierUniform,
    /// Gaussian with the given standard deviation.
    Normal,
    /// All zeros (biases, batch-norm shift).
    Zeros,
    /// All ones (batch-norm scale).
    Ones,
}

impl Init {
    /// Samples a `fan_in × fan_out` weight matrix.
    pub fn sample(self, fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
        match self {
            Init::KaimingUniform => {
                let bound = 1.0 / (fan_in.max(1) as f32).sqrt();
                Tensor::rand_uniform(fan_in, fan_out, -bound, bound, rng)
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(fan_in, fan_out, -bound, bound, rng)
            }
            Init::Normal => Tensor::randn(fan_in, fan_out, rng).mul_scalar(0.02),
            Init::Zeros => Tensor::zeros(fan_in, fan_out),
            Init::Ones => Tensor::ones(fan_in, fan_out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Init::KaimingUniform.sample(16, 8, &mut rng);
        let bound = 1.0 / 4.0;
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_and_ones() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(Init::Zeros.sample(2, 3, &mut rng), Tensor::zeros(2, 3));
        assert_eq!(Init::Ones.sample(2, 3, &mut rng), Tensor::ones(2, 3));
    }
}
