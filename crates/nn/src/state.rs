//! Weight persistence: a named tensor dictionary with a compact binary
//! format (train once, save, reload, synthesize more — no re-training).
//!
//! Parameters carry globally-unique names (layer constructors prefix them),
//! so a [`StateDict`] is a flat `name → tensor` map. Non-parameter state
//! (batch-norm running statistics) is saved under derived names.

use crate::layers::{BatchNorm1d, Linear};
use crate::param::Param;
use gtv_tensor::Tensor;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"GTVW0001";

/// A named tensor dictionary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    map: BTreeMap<String, Tensor>,
}

/// Error loading a state dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadStateError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "state load error: {}", self.message)
    }
}

impl std::error::Error for LoadStateError {}

fn err(message: impl Into<String>) -> LoadStateError {
    LoadStateError { message: message.into() }
}

impl StateDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Stores a tensor.
    ///
    /// # Panics
    ///
    /// Panics if the name is already present (names must be unique).
    pub fn insert(&mut self, name: impl Into<String>, tensor: Tensor) {
        let name = name.into();
        assert!(self.map.insert(name.clone(), tensor).is_none(), "duplicate state entry '{name}'");
    }

    /// Fetches a tensor by name, checking its shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the entry is missing or has the wrong shape.
    pub fn get(&self, name: &str, shape: (usize, usize)) -> Result<&Tensor, LoadStateError> {
        let t = self.map.get(name).ok_or_else(|| err(format!("missing entry '{name}'")))?;
        if t.shape() != shape {
            return Err(err(format!(
                "entry '{name}' has shape {:?}, expected {shape:?}",
                t.shape()
            )));
        }
        Ok(t)
    }

    /// Stored entry names (sorted).
    pub fn names(&self) -> Vec<&str> {
        self.map.keys().map(String::as_str).collect()
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.map.len() as u32).to_le_bytes());
        for (name, t) in &self.map {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(t.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(t.cols() as u32).to_le_bytes());
            for v in t.as_slice() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns an error on a bad magic, truncation, or malformed entries.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, LoadStateError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], LoadStateError> {
            if *pos + n > bytes.len() {
                return Err(err("truncated state file"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let magic = take(&mut pos, 8)?;
        if magic != MAGIC {
            return Err(err("bad magic — not a GTV weights file"));
        }
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let mut dict = StateDict::new();
        for _ in 0..count {
            let name_len =
                u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let name = std::str::from_utf8(take(&mut pos, name_len)?)
                .map_err(|_| err("entry name is not UTF-8"))?
                .to_string();
            let rows = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let cols = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let raw = take(&mut pos, rows * cols * 4)?;
            let data: Vec<f32> = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect();
            if dict.map.insert(name.clone(), Tensor::from_vec(rows, cols, data)).is_some() {
                return Err(err(format!("duplicate entry '{name}'")));
            }
        }
        if pos != bytes.len() {
            return Err(err("trailing bytes after state entries"));
        }
        Ok(dict)
    }

    /// Writes the dictionary to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a dictionary from a file.
    ///
    /// # Errors
    ///
    /// Returns an I/O error or a parse failure as `InvalidData`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Anything whose state can round-trip through a [`StateDict`].
pub trait Stateful {
    /// Writes all state into `dict` under the component's unique names.
    fn save_state(&self, dict: &mut StateDict);

    /// Restores state from `dict`.
    ///
    /// # Errors
    ///
    /// Returns an error if an entry is missing or shaped wrongly.
    fn load_state(&self, dict: &StateDict) -> Result<(), LoadStateError>;
}

fn save_params(params: &[Param], dict: &mut StateDict) {
    for p in params {
        dict.insert(p.name(), p.value());
    }
}

fn load_params(params: &[Param], dict: &StateDict) -> Result<(), LoadStateError> {
    for p in params {
        p.set_value(dict.get(&p.name(), p.shape())?.clone());
    }
    Ok(())
}

impl Stateful for Linear {
    fn save_state(&self, dict: &mut StateDict) {
        save_params(&crate::param::Module::params(self), dict);
    }

    fn load_state(&self, dict: &StateDict) -> Result<(), LoadStateError> {
        load_params(&crate::param::Module::params(self), dict)
    }
}

impl Stateful for BatchNorm1d {
    fn save_state(&self, dict: &mut StateDict) {
        let params = crate::param::Module::params(self);
        let base = params[0].name(); // "<layer>.gamma"
        save_params(&params, dict);
        let (mean, var) = self.running_stats();
        dict.insert(format!("{base}.running_mean"), mean);
        dict.insert(format!("{base}.running_var"), var);
    }

    fn load_state(&self, dict: &StateDict) -> Result<(), LoadStateError> {
        let params = crate::param::Module::params(self);
        let base = params[0].name();
        load_params(&params, dict)?;
        let shape = (1, self.dim());
        let mean = dict.get(&format!("{base}.running_mean"), shape)?.clone();
        let var = dict.get(&format!("{base}.running_var"), shape)?.clone();
        self.set_running_stats(mean, var);
        Ok(())
    }
}

impl Stateful for crate::blocks::ResidualBlock {
    fn save_state(&self, dict: &mut StateDict) {
        self.fc().save_state(dict);
        self.bn().save_state(dict);
    }

    fn load_state(&self, dict: &StateDict) -> Result<(), LoadStateError> {
        self.fc().load_state(dict)?;
        self.bn().load_state(dict)
    }
}

impl Stateful for crate::blocks::FnBlock {
    fn save_state(&self, dict: &mut StateDict) {
        self.fc().save_state(dict);
    }

    fn load_state(&self, dict: &StateDict) -> Result<(), LoadStateError> {
        self.fc().load_state(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dict_roundtrips_through_bytes() {
        let mut dict = StateDict::new();
        dict.insert("a.w", Tensor::from_rows(&[&[1.0, -2.5], &[0.0, 7.0]]));
        dict.insert("b.b", Tensor::row(&[3.0]));
        let back = StateDict::from_bytes(&dict.to_bytes()).unwrap();
        assert_eq!(back, dict);
        assert_eq!(back.names(), vec!["a.w", "b.b"]);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(StateDict::from_bytes(b"not a weights file").is_err());
        let mut dict = StateDict::new();
        dict.insert("x", Tensor::scalar(1.0));
        let bytes = dict.to_bytes();
        assert!(StateDict::from_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(StateDict::from_bytes(&extended).is_err());
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(2, 2));
        assert!(dict.get("w", (2, 3)).is_err());
        assert!(dict.get("absent", (2, 2)).is_err());
    }

    #[test]
    fn linear_state_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Linear::new("lin", 3, 2, Init::KaimingUniform, &mut rng);
        let b = Linear::new("lin", 3, 2, Init::KaimingUniform, &mut rng);
        let mut dict = StateDict::new();
        a.save_state(&mut dict);
        b.load_state(&dict).unwrap();
        let pa = crate::param::Module::params(&a);
        let pb = crate::param::Module::params(&b);
        assert_eq!(pa[0].value(), pb[0].value());
        assert_eq!(pa[1].value(), pb[1].value());
    }

    #[test]
    fn batchnorm_state_includes_running_stats() {
        let bn = BatchNorm1d::new("bn", 2);
        bn.set_running_stats(Tensor::row(&[5.0, 6.0]), Tensor::row(&[2.0, 3.0]));
        let mut dict = StateDict::new();
        bn.save_state(&mut dict);
        let other = BatchNorm1d::new("bn", 2);
        other.load_state(&dict).unwrap();
        let (m, v) = other.running_stats();
        assert_eq!(m, Tensor::row(&[5.0, 6.0]));
        assert_eq!(v, Tensor::row(&[2.0, 3.0]));
    }
}
