//! Stochastic activations used by tabular GAN output heads.

use crate::ctx::Ctx;
use gtv_tensor::{Tensor, Var};
use rand::Rng;

/// Gumbel-softmax over the rows of `x` with temperature `tau` (CTGAN uses
/// `tau = 0.2` on every categorical/one-hot output span).
///
/// In training mode standard Gumbel noise `-ln(-ln u)` is added before the
/// tempered softmax, giving differentiable samples; in eval mode the noise is
/// still applied so generated data is stochastic (matching CTGAN's sampling),
/// but callers can use [`softmax_tempered`] for deterministic behaviour.
pub fn gumbel_softmax(ctx: &Ctx<'_>, x: Var, tau: f32) -> Var {
    let g = ctx.graph();
    let (rows, cols) = g.shape(x);
    let noise = ctx.with_rng(|rng| {
        Tensor::from_fn(rows, cols, |_, _| {
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            -(-u.ln()).ln()
        })
    });
    let noise = g.leaf(noise);
    let noisy = g.add(x, noise);
    let scaled = g.mul_scalar(noisy, 1.0 / tau);
    g.softmax_rows(scaled)
}

/// Softmax with temperature but without Gumbel noise.
pub fn softmax_tempered(ctx: &Ctx<'_>, x: Var, tau: f32) -> Var {
    let g = ctx.graph();
    let scaled = g.mul_scalar(x, 1.0 / tau);
    g.softmax_rows(scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::Graph;

    #[test]
    fn gumbel_softmax_rows_are_distributions() {
        let g = Graph::new();
        let ctx = Ctx::train(&g, 7);
        let x = g.leaf(Tensor::from_rows(&[&[0.0, 1.0, 2.0], &[5.0, -5.0, 0.0]]));
        let y = g.value(gumbel_softmax(&ctx, x, 0.2));
        for r in 0..2 {
            let sum: f32 = y.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gumbel_softmax_low_temperature_is_nearly_one_hot() {
        let g = Graph::new();
        let ctx = Ctx::train(&g, 1);
        let x = g.leaf(Tensor::from_rows(&[&[10.0, 0.0, 0.0]]));
        let y = g.value(gumbel_softmax(&ctx, x, 0.1));
        let max = y.row_slice(0).iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 0.95, "low-tau gumbel softmax should be peaked, got {max}");
    }

    #[test]
    fn gumbel_respects_strong_logits_statistically() {
        // With a big logit gap, sampled argmax should match the hot logit
        // most of the time.
        let mut hits = 0;
        for seed in 0..50 {
            let g = Graph::new();
            let ctx = Ctx::train(&g, seed);
            let x = g.leaf(Tensor::from_rows(&[&[4.0, 0.0]]));
            let y = g.value(gumbel_softmax(&ctx, x, 0.5));
            if y.at(0, 0) > y.at(0, 1) {
                hits += 1;
            }
        }
        assert!(hits > 40, "expected argmax to follow logits, got {hits}/50");
    }
}
