//! Stochastic activations used by tabular GAN output heads.

use crate::ctx::Ctx;
use gtv_tensor::Var;

/// Gumbel-softmax over the rows of `x` with temperature `tau` (CTGAN uses
/// `tau = 0.2` on every categorical/one-hot output span).
///
/// In training mode standard Gumbel noise `-ln(-ln u)` is added before the
/// tempered softmax, giving differentiable samples; in eval mode the noise is
/// still applied so generated data is stochastic (matching CTGAN's sampling),
/// but callers can use [`softmax_tempered`] for deterministic behaviour.
/// Under a [`Ctx::eval_rows`] context the uniforms come from per-row
/// substreams, so each row's sample is independent of the batch it rode in.
pub fn gumbel_softmax(ctx: &Ctx<'_>, x: Var, tau: f32) -> Var {
    let g = ctx.graph();
    let (rows, cols) = g.shape(x);
    let mut noise = ctx.uniform_noise(rows, cols);
    noise.map_inplace(|u| -(-u.ln()).ln());
    let noise = g.leaf(noise);
    let noisy = g.add(x, noise);
    let scaled = g.mul_scalar(noisy, 1.0 / tau);
    g.softmax_rows(scaled)
}

/// Softmax with temperature but without Gumbel noise.
pub fn softmax_tempered(ctx: &Ctx<'_>, x: Var, tau: f32) -> Var {
    let g = ctx.graph();
    let scaled = g.mul_scalar(x, 1.0 / tau);
    g.softmax_rows(scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::row_seed;
    use gtv_tensor::{Graph, Tensor};

    #[test]
    fn gumbel_softmax_rows_are_distributions() {
        let g = Graph::new();
        let ctx = Ctx::train(&g, 7);
        let x = g.leaf(Tensor::from_rows(&[&[0.0, 1.0, 2.0], &[5.0, -5.0, 0.0]]));
        let y = g.value(gumbel_softmax(&ctx, x, 0.2));
        for r in 0..2 {
            let sum: f32 = y.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn gumbel_softmax_low_temperature_is_nearly_one_hot() {
        let g = Graph::new();
        let ctx = Ctx::train(&g, 1);
        let x = g.leaf(Tensor::from_rows(&[&[10.0, 0.0, 0.0]]));
        let y = g.value(gumbel_softmax(&ctx, x, 0.1));
        let max = y.row_slice(0).iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 0.95, "low-tau gumbel softmax should be peaked, got {max}");
    }

    #[test]
    fn eval_rows_noise_is_batch_invariant() {
        // A coalesced 3-row forward must equal three solo 1-row forwards when
        // the per-row substream seeds line up.
        let logits = [[0.3f32, -1.0, 2.0], [5.0, -5.0, 0.0], [0.0, 0.0, 0.0]];
        let seeds: Vec<u64> = (0..3).map(|r| row_seed(42, r)).collect();

        let g = Graph::new();
        let ctx = Ctx::eval_rows(&g, seeds.clone());
        let rows: Vec<&[f32]> = logits.iter().map(|r| r.as_slice()).collect();
        let x = g.leaf(Tensor::from_rows(&rows));
        let batched = g.value(gumbel_softmax(&ctx, x, 0.2));

        for r in 0..3 {
            let g1 = Graph::new();
            let ctx1 = Ctx::eval_rows(&g1, vec![seeds[r]]);
            let x1 = g1.leaf(Tensor::from_rows(&[&logits[r]]));
            let solo = g1.value(gumbel_softmax(&ctx1, x1, 0.2));
            assert_eq!(
                batched.row_slice(r),
                solo.row_slice(0),
                "row {r} differs between coalesced and solo forwards"
            );
        }
    }

    #[test]
    fn eval_rows_noise_advances_per_call_site() {
        // Two gumbel sites in one forward must see different noise even for
        // the same row seed (the node counter separates them).
        let g = Graph::new();
        let ctx = Ctx::eval_rows(&g, vec![row_seed(7, 0)]);
        let x = g.leaf(Tensor::from_rows(&[&[0.0f32, 0.0, 0.0]]));
        let a = g.value(gumbel_softmax(&ctx, x, 0.2));
        let b = g.value(gumbel_softmax(&ctx, x, 0.2));
        assert_ne!(a.row_slice(0), b.row_slice(0), "call sites must draw distinct substream noise");
    }

    #[test]
    fn gumbel_respects_strong_logits_statistically() {
        // With a big logit gap, sampled argmax should match the hot logit
        // most of the time.
        let mut hits = 0;
        for seed in 0..50 {
            let g = Graph::new();
            let ctx = Ctx::train(&g, seed);
            let x = g.leaf(Tensor::from_rows(&[&[4.0, 0.0]]));
            let y = g.value(gumbel_softmax(&ctx, x, 0.5));
            if y.at(0, 0) > y.at(0, 1) {
                hits += 1;
            }
        }
        assert!(hits > 40, "expected argmax to follow logits, got {hits}/50");
    }
}
