//! Core layers: linear, batch normalization, dropout.

use crate::ctx::Ctx;
use crate::init::Init;
use crate::param::{Module, Param};
use gtv_tensor::{FusedAct, Tensor, Var};
use rand::Rng;
use std::sync::{PoisonError, RwLock};

/// Fully-connected layer `y = xW + b`.
#[derive(Debug)]
pub struct Linear {
    w: Param,
    b: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with the given fan-in/fan-out using `init` for the
    /// weights and zeros for the bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, init: Init, rng: &mut impl Rng) -> Self {
        let w = Param::new(format!("{name}.w"), init.sample(in_dim, out_dim, rng));
        let bound = 1.0 / (in_dim.max(1) as f32).sqrt();
        let b_init = match init {
            Init::KaimingUniform => Tensor::rand_uniform(1, out_dim, -bound, bound, rng),
            _ => Tensor::zeros(1, out_dim),
        };
        let b = Param::new(format!("{name}.b"), b_init);
        Self { w, b, in_dim, out_dim }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer.
    ///
    /// # Panics
    ///
    /// Panics (in the tensor layer) if `x` does not have `in_dim` columns.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let g = ctx.graph();
        let w = ctx.binder().bind(g, &self.w);
        let b = ctx.binder().bind(g, &self.b);
        let xw = g.matmul(x, w);
        g.add(xw, b)
    }

    /// Applies the layer followed by `act` through the fused
    /// [`Graph::affine_act`](gtv_tensor::Graph::affine_act) kernel, producing
    /// one graph node (and one pooled buffer) instead of three. Bit-identical
    /// to `forward` followed by the matching unfused activation.
    ///
    /// # Panics
    ///
    /// Panics (in the tensor layer) if `x` does not have `in_dim` columns, or
    /// if `act` is `FusedAct::LeakyRelu` with a non-positive slope.
    pub fn forward_act(&self, ctx: &Ctx<'_>, x: Var, act: FusedAct) -> Var {
        let g = ctx.graph();
        let w = ctx.binder().bind(g, &self.w);
        let b = ctx.binder().bind(g, &self.b);
        g.affine_act(x, w, b, act)
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Param> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// 1-D batch normalization over the batch dimension.
///
/// In training mode normalizes with batch statistics (gradients flow through
/// them) and updates exponential running statistics; in eval mode uses the
/// running statistics.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: RwLock<Tensor>,
    running_var: RwLock<Tensor>,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `dim` features.
    pub fn new(name: &str, dim: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones(1, dim)),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(1, dim)),
            running_mean: RwLock::new(Tensor::zeros(1, dim)),
            running_var: RwLock::new(Tensor::ones(1, dim)),
            momentum: 0.1,
            eps: 1e-5,
            dim,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Copies of the exponential running `(mean, variance)` statistics.
    /// A poisoned lock is recovered: the stats are whole tensors, replaced
    /// atomically by every writer.
    pub fn running_stats(&self) -> (Tensor, Tensor) {
        let mean = self.running_mean.read().unwrap_or_else(PoisonError::into_inner).clone();
        let var = self.running_var.read().unwrap_or_else(PoisonError::into_inner).clone();
        (mean, var)
    }

    /// Replaces the running statistics (weight loading).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match the layer width.
    pub fn set_running_stats(&self, mean: Tensor, var: Tensor) {
        assert_eq!(mean.shape(), (1, self.dim), "running-mean shape mismatch");
        assert_eq!(var.shape(), (1, self.dim), "running-var shape mismatch");
        *self.running_mean.write().unwrap_or_else(PoisonError::into_inner) = mean;
        *self.running_var.write().unwrap_or_else(PoisonError::into_inner) = var;
    }

    /// Applies normalization.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        let g = ctx.graph();
        let gamma = ctx.binder().bind(g, &self.gamma);
        let beta = ctx.binder().bind(g, &self.beta);
        let (mean, var) = if ctx.is_train() {
            let mean = g.mean_rows(x);
            let centered = g.sub(x, mean);
            let var = g.mean_rows(g.square(centered));
            // Update running stats (numeric, outside the graph).
            let m = g.value(mean);
            let v = g.value(var);
            {
                let mut rm = self.running_mean.write().unwrap_or_else(PoisonError::into_inner);
                *rm = rm.mul_scalar(1.0 - self.momentum).add(&m.mul_scalar(self.momentum));
                let mut rv = self.running_var.write().unwrap_or_else(PoisonError::into_inner);
                *rv = rv.mul_scalar(1.0 - self.momentum).add(&v.mul_scalar(self.momentum));
            }
            (mean, var)
        } else {
            let mean =
                g.leaf(self.running_mean.read().unwrap_or_else(PoisonError::into_inner).clone());
            let var =
                g.leaf(self.running_var.read().unwrap_or_else(PoisonError::into_inner).clone());
            (mean, var)
        };
        let centered = g.sub(x, mean);
        let denom = g.sqrt(g.add_scalar(var, self.eps));
        let norm = g.div(centered, denom);
        let scaled = g.mul(norm, gamma);
        g.add(scaled, beta)
    }
}

impl Module for BatchNorm1d {
    fn params(&self) -> Vec<Param> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Inverted dropout: zeroes activations with probability `p` during training
/// and rescales survivors by `1/(1-p)`; identity in eval mode.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1), got {p}");
        Self { p }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Applies dropout.
    pub fn forward(&self, ctx: &Ctx<'_>, x: Var) -> Var {
        if !ctx.is_train() || self.p == 0.0 {
            return x;
        }
        let g = ctx.graph();
        let (rows, cols) = g.shape(x);
        let keep = 1.0 - self.p;
        let mask = ctx.with_rng(|rng| {
            Tensor::from_fn(
                rows,
                cols,
                |_, _| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                },
            )
        });
        let mask = g.leaf(mask);
        g.mul(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new("l", 4, 3, Init::KaimingUniform, &mut rng);
        assert_eq!(lin.param_count(), 4 * 3 + 3);
        let g = Graph::new();
        let ctx = Ctx::train(&g, 0);
        let x = g.leaf(Tensor::ones(5, 4));
        let y = lin.forward(&ctx, x);
        assert_eq!(g.shape(y), (5, 3));
    }

    #[test]
    fn linear_computes_xw_plus_b() {
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new("l", 2, 2, Init::Zeros, &mut rng);
        lin.params()[0].set_value(Tensor::eye(2));
        lin.params()[1].set_value(Tensor::row(&[1.0, -1.0]));
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x = g.leaf(Tensor::from_rows(&[&[3.0, 4.0]]));
        let y = lin.forward(&ctx, x);
        assert_eq!(g.value(y), Tensor::from_rows(&[&[4.0, 3.0]]));
    }

    #[test]
    fn linear_forward_act_is_bit_identical_to_unfused() {
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new("l", 6, 4, Init::KaimingUniform, &mut rng);
        let x0 = Tensor::from_fn(5, 6, |r, c| 0.31 * (r as f32) - 0.17 * (c as f32) + 0.2);
        for act in [FusedAct::Relu, FusedAct::Tanh, FusedAct::Sigmoid, FusedAct::LeakyRelu(0.2)] {
            let run = |fused: bool| {
                let g = Graph::new();
                let ctx = Ctx::train(&g, 0);
                let x = g.leaf(x0.clone());
                let h = if fused {
                    lin.forward_act(&ctx, x, act)
                } else {
                    let s = lin.forward(&ctx, x);
                    match act {
                        FusedAct::Relu => g.relu(s),
                        FusedAct::Tanh => g.tanh(s),
                        FusedAct::Sigmoid => g.sigmoid(s),
                        FusedAct::LeakyRelu(a) => g.leaky_relu(s, a),
                    }
                };
                let y = g.mean_all(g.mul(h, h));
                let grads = g.grad(y, &[x]);
                let mut out: Vec<u32> = g.value(h).as_slice().iter().map(|v| v.to_bits()).collect();
                out.extend(g.value(grads[0]).as_slice().iter().map(|v| v.to_bits()));
                out
            };
            assert_eq!(run(true), run(false), "fused {act:?} diverged in Linear::forward_act");
        }
    }

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let bn = BatchNorm1d::new("bn", 2);
        let g = Graph::new();
        let ctx = Ctx::train(&g, 0);
        let x = g.leaf(Tensor::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 50.0]]));
        let y = g.value(bn.forward(&ctx, x));
        // Each column should have ~zero mean and ~unit variance.
        let mean0 = (y.at(0, 0) + y.at(1, 0) + y.at(2, 0)) / 3.0;
        assert!(mean0.abs() < 1e-5);
        let var0 = (0..3).map(|r| y.at(r, 0) * y.at(r, 0)).sum::<f32>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let bn = BatchNorm1d::new("bn", 1);
        // Train once to move running stats off their defaults.
        {
            let g = Graph::new();
            let ctx = Ctx::train(&g, 0);
            let x = g.leaf(Tensor::col(&[10.0, 20.0, 30.0]));
            let _ = bn.forward(&ctx, x);
        }
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x = g.leaf(Tensor::col(&[10.0, 20.0]));
        let y = g.value(bn.forward(&ctx, x));
        // Eval output is not batch-normalized (batch mean of y is nonzero).
        let mean = (y.at(0, 0) + y.at(1, 0)) / 2.0;
        assert!(mean.abs() > 0.1);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_preserves_scale() {
        let d = Dropout::new(0.5);
        let g = Graph::new();
        let ctx = Ctx::eval(&g, 0);
        let x = g.leaf(Tensor::ones(4, 4));
        assert_eq!(d.forward(&ctx, x), x);

        let g = Graph::new();
        let ctx = Ctx::train(&g, 42);
        let x = g.leaf(Tensor::ones(200, 50));
        let y = g.value(d.forward(&ctx, x));
        let mean = y.mean_all();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout should keep E[x], got {mean}");
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn dropout_rejects_bad_p() {
        let _ = Dropout::new(1.0);
    }
}
