//! Per-step forward context.

use crate::param::ParamBinder;
use gtv_tensor::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt;

/// Everything a layer needs during one forward/backward step: the graph to
/// build into, the parameter binder, the train/eval mode and a seeded RNG
/// (dropout masks, Gumbel noise).
pub struct Ctx<'g> {
    g: &'g Graph,
    binder: ParamBinder,
    rng: RefCell<StdRng>,
    train: bool,
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ctx(train={}, {} params bound)", self.train, self.binder.len())
    }
}

impl<'g> Ctx<'g> {
    /// Creates a training-mode context.
    pub fn train(g: &'g Graph, seed: u64) -> Self {
        Self {
            g,
            binder: ParamBinder::new(),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            train: true,
        }
    }

    /// Creates an inference-mode context (dropout off, batch-norm uses
    /// running statistics).
    pub fn eval(g: &'g Graph, seed: u64) -> Self {
        Self {
            g,
            binder: ParamBinder::new(),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            train: false,
        }
    }

    /// The graph being built.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The parameter binder for this step.
    pub fn binder(&self) -> &ParamBinder {
        &self.binder
    }

    /// True in training mode.
    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Runs `f` with the step RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.rng.borrow_mut())
    }
}
