//! Per-step forward context.

use crate::param::ParamBinder;
use gtv_tensor::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::{Cell, RefCell};
use std::fmt;

/// Per-row noise substreams: noise drawn through [`Ctx::gumbel_noise`] depends
/// only on `(seeds[row], node_index, col)`, never on the batch composition, so
/// a forward over rows `[a, b]` produces bit-identical slices to two forwards
/// over `[a]` and `[b]`. The node index counts stochastic activation sites in
/// traversal order, which is fixed for a given network structure.
struct RowNoise {
    seeds: Vec<u64>,
    node: Cell<u64>,
}

/// Everything a layer needs during one forward/backward step: the graph to
/// build into, the parameter binder, the train/eval mode and a seeded RNG
/// (dropout masks, Gumbel noise).
pub struct Ctx<'g> {
    g: &'g Graph,
    binder: ParamBinder,
    rng: RefCell<StdRng>,
    train: bool,
    row_noise: Option<RowNoise>,
}

impl fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ctx(train={}, {} params bound)", self.train, self.binder.len())
    }
}

impl<'g> Ctx<'g> {
    /// Creates a training-mode context.
    pub fn train(g: &'g Graph, seed: u64) -> Self {
        Self {
            g,
            binder: ParamBinder::new(),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            train: true,
            row_noise: None,
        }
    }

    /// Creates an inference-mode context (dropout off, batch-norm uses
    /// running statistics).
    pub fn eval(g: &'g Graph, seed: u64) -> Self {
        Self {
            g,
            binder: ParamBinder::new(),
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            train: false,
            row_noise: None,
        }
    }

    /// Creates an inference-mode context whose stochastic activations draw
    /// noise from per-row substreams instead of the single sequential step
    /// RNG. `row_seeds[r]` fully determines the noise row `r` will see at
    /// every stochastic site, so batches can be coalesced or split without
    /// changing any row's output (the serving engine relies on this for
    /// bit-reproducible request coalescing).
    pub fn eval_rows(g: &'g Graph, row_seeds: Vec<u64>) -> Self {
        Self {
            g,
            binder: ParamBinder::new(),
            // The sequential RNG stays available as a fallback for callers
            // that draw noise with a row count that does not match the
            // registered substreams; seed it from the first row seed so the
            // fallback is still deterministic.
            rng: RefCell::new(StdRng::seed_from_u64(row_seeds.first().copied().unwrap_or(0))),
            train: false,
            row_noise: Some(RowNoise { seeds: row_seeds, node: Cell::new(0) }),
        }
    }

    /// The graph being built.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// The parameter binder for this step.
    pub fn binder(&self) -> &ParamBinder {
        &self.binder
    }

    /// True in training mode.
    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Runs `f` with the step RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut StdRng) -> R) -> R {
        f(&mut self.rng.borrow_mut())
    }

    /// True when this context was built with [`Ctx::eval_rows`].
    pub fn has_row_noise(&self) -> bool {
        self.row_noise.is_some()
    }

    /// Standard-uniform draw in `[EPSILON, 1)` for stochastic activations.
    ///
    /// With per-row substreams registered (and a matching row count) the
    /// value at `(r, c)` is a pure function of `(seeds[r], node, c)` where
    /// `node` is the index of this call site in traversal order — batch
    /// composition cannot influence it. Otherwise the draw comes from the
    /// sequential step RNG, preserving the historical behaviour.
    pub fn uniform_noise(&self, rows: usize, cols: usize) -> gtv_tensor::Tensor {
        use rand::Rng;
        if let Some(rn) = &self.row_noise {
            if rn.seeds.len() == rows {
                let node = rn.node.get();
                rn.node.set(node.wrapping_add(1));
                return gtv_tensor::Tensor::from_fn(rows, cols, |r, c| {
                    let word = mix64(
                        rn.seeds[r]
                            .wrapping_add(mix64(node.wrapping_add(0x9e37_79b9_7f4a_7c15)))
                            .wrapping_add(mix64(c as u64 ^ 0xd1b5_4a32_d192_ed03)),
                    );
                    // Top 24 bits -> f32 in [0, 1); clamp away exact zero.
                    let u = ((word >> 40) as f32) * (1.0 / 16_777_216.0);
                    u.max(f32::EPSILON)
                });
            }
        }
        self.with_rng(|rng| {
            gtv_tensor::Tensor::from_fn(rows, cols, |_, _| rng.gen_range(f32::EPSILON..1.0))
        })
    }
}

/// Derives the noise-substream seed for row `row` of a request seeded with
/// `request_seed`. Serving code uses this so that a request split across
/// forward chunks (or coalesced with neighbours) still hands every row the
/// same substream.
pub fn row_seed(request_seed: u64, row: u64) -> u64 {
    mix64(request_seed ^ mix64(row.wrapping_add(0x2545_f491_4f6c_dd1d)))
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
