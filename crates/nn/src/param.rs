//! Trainable parameters and their binding into per-step graphs.
//!
//! Parameters live *outside* the autograd graph: a [`Param`] owns persistent
//! value and gradient tensors, and every training step binds it into a fresh
//! [`Graph`] as a leaf via [`ParamBinder::bind`]. After building the loss,
//! [`ParamBinder::backprop`] computes gradients and writes them back.

use gtv_tensor::{Graph, Tensor, Var};
use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A shared handle to a trainable tensor.
///
/// Cloning a `Param` clones the *handle*: all clones refer to the same
/// underlying value and gradient. Handles are `Send + Sync` so a trained
/// model can be served from any thread; access is guarded by an RwLock
/// (uncontended outside training, where steps are single-writer anyway).
#[derive(Clone)]
pub struct Param {
    inner: Arc<RwLock<ParamInner>>,
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.read();
        write!(f, "Param({} {}x{})", inner.name, inner.value.rows(), inner.value.cols())
    }
}

impl Param {
    /// Creates a parameter with the given debug name and initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Self { inner: Arc::new(RwLock::new(ParamInner { name: name.into(), value, grad })) }
    }

    /// A poisoned lock is recovered: parameter state is a pair of tensors,
    /// valid after any interrupted writer.
    fn read(&self) -> RwLockReadGuard<'_, ParamInner> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, ParamInner> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Debug name.
    pub fn name(&self) -> String {
        self.read().name.clone()
    }

    /// Copy of the current value.
    pub fn value(&self) -> Tensor {
        self.read().value.clone()
    }

    /// Copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.read().grad.clone()
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        self.read().value.shape()
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        let (r, c) = self.shape();
        r * c
    }

    /// True if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replaces the value (used by optimizers).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.write();
        assert_eq!(inner.value.shape(), value.shape(), "set_value shape mismatch");
        inner.value = value;
    }

    /// Adds `delta` to the stored gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        let mut inner = self.write();
        inner.grad = inner.grad.add(delta);
    }

    /// Resets the stored gradient to zero.
    pub fn zero_grad(&self) {
        let mut inner = self.write();
        let (r, c) = inner.value.shape();
        inner.grad = Tensor::zeros(r, c);
    }

    /// True when two handles refer to the same underlying parameter.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Anything that owns trainable parameters.
pub trait Module {
    /// Handles to every trainable parameter, in a stable order.
    fn params(&self) -> Vec<Param>;

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(Param::len).sum()
    }
}

/// Records which graph leaf corresponds to which parameter during one step.
#[derive(Default)]
pub struct ParamBinder {
    entries: RefCell<Vec<(Param, Var)>>,
}

impl fmt::Debug for ParamBinder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParamBinder({} bound)", self.entries.borrow().len())
    }
}

impl ParamBinder {
    /// Creates an empty binder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `p` into `g` as a leaf holding its current value. Binding the
    /// same parameter twice returns the same leaf.
    pub fn bind(&self, g: &Graph, p: &Param) -> Var {
        if let Some((_, v)) = self.entries.borrow().iter().find(|(q, _)| q.ptr_eq(p)) {
            return *v;
        }
        let var = g.leaf(p.value());
        self.entries.borrow_mut().push((p.clone(), var));
        var
    }

    /// Number of distinct parameters bound so far.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// True if nothing has been bound.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the `(parameter, leaf var)` bindings, in bind order.
    pub fn bindings(&self) -> Vec<(Param, Var)> {
        self.entries.borrow().clone()
    }

    /// Computes gradients of `loss` w.r.t. every bound parameter *and* the
    /// given extra vars in one backward pass. Parameter gradients are
    /// accumulated into the parameters; the extras' gradient vars are
    /// returned (in order). Useful when a trainer also needs the gradients
    /// that cross a protocol boundary.
    pub fn backprop_with_extras(&self, g: &Graph, loss: Var, extras: &[Var]) -> Vec<Var> {
        let entries = self.entries.borrow();
        let mut wrt: Vec<Var> = entries.iter().map(|(_, v)| *v).collect();
        wrt.extend_from_slice(extras);
        let grads = g.grad(loss, &wrt);
        for ((p, _), gv) in entries.iter().zip(&grads) {
            g.with_value(*gv, |t| p.accumulate_grad(t));
        }
        grads[entries.len()..].to_vec()
    }

    /// Computes `d loss / d p` for every bound parameter and accumulates the
    /// results into the parameters' gradient buffers.
    pub fn backprop(&self, g: &Graph, loss: Var) {
        let entries = self.entries.borrow();
        let vars: Vec<Var> = entries.iter().map(|(_, v)| *v).collect();
        let grads = g.grad(loss, &vars);
        for ((p, _), gv) in entries.iter().zip(grads) {
            g.with_value(gv, |t| p.accumulate_grad(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_is_idempotent_per_param() {
        let g = Graph::new();
        let binder = ParamBinder::new();
        let p = Param::new("w", Tensor::scalar(1.5));
        let v1 = binder.bind(&g, &p);
        let v2 = binder.bind(&g, &p);
        assert_eq!(v1, v2);
        assert_eq!(binder.len(), 1);
    }

    #[test]
    fn backprop_writes_param_grads() {
        let g = Graph::new();
        let binder = ParamBinder::new();
        let p = Param::new("w", Tensor::row(&[2.0, 3.0]));
        let w = binder.bind(&g, &p);
        let loss = g.sum_all(g.mul(w, w)); // d/dw = 2w
        binder.backprop(&g, loss);
        assert_eq!(p.grad(), Tensor::row(&[4.0, 6.0]));
        // Accumulates on a second backward.
        binder.backprop(&g, loss);
        assert_eq!(p.grad(), Tensor::row(&[8.0, 12.0]));
        p.zero_grad();
        assert_eq!(p.grad(), Tensor::zeros(1, 2));
    }

    #[test]
    fn param_handles_share_state() {
        let p = Param::new("w", Tensor::scalar(1.0));
        let q = p.clone();
        q.set_value(Tensor::scalar(9.0));
        assert_eq!(p.value().item(), 9.0);
        assert!(p.ptr_eq(&q));
    }
}
