//! Optimizers: Adam (CTGAN defaults) and plain SGD.

use crate::param::Param;
use gtv_tensor::Tensor;

/// Adam hyper-parameters. Defaults match CTGAN's GAN training setup
/// (`lr = 2e-4`, `β = (0.5, 0.9)`, weight decay `1e-6`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 2e-4, beta1: 0.5, beta2: 0.9, eps: 1e-8, weight_decay: 1e-6 }
    }
}

struct Slot {
    param: Param,
    m: Tensor,
    v: Tensor,
}

/// Adam optimizer over a fixed set of parameters.
///
/// # Examples
///
/// ```
/// use gtv_nn::{Adam, AdamConfig, Param};
/// use gtv_tensor::Tensor;
///
/// let p = Param::new("w", Tensor::scalar(1.0));
/// let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
/// p.accumulate_grad(&Tensor::scalar(0.5));
/// opt.step();
/// assert!(p.value().item() < 1.0);
/// ```
pub struct Adam {
    slots: Vec<Slot>,
    cfg: AdamConfig,
    t: u64,
}

impl std::fmt::Debug for Adam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Adam({} params, t={}, lr={})", self.slots.len(), self.t, self.cfg.lr)
    }
}

impl Adam {
    /// Creates an optimizer for the given parameters.
    pub fn new(params: Vec<Param>, cfg: AdamConfig) -> Self {
        let slots = params
            .into_iter()
            .map(|param| {
                let (r, c) = param.shape();
                Slot { param, m: Tensor::zeros(r, c), v: Tensor::zeros(r, c) }
            })
            .collect();
        Self { slots, cfg, t: 0 }
    }

    /// Number of managed parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no parameters are managed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Applies one Adam update using each parameter's accumulated gradient.
    ///
    /// The moments and the parameter are updated in place — the optimizer
    /// allocates nothing in the training hot loop. The per-element
    /// arithmetic (operand order included) matches the tensor-expression
    /// formulation it replaced, so trajectories are bit-identical.
    pub fn step(&mut self) {
        self.t += 1;
        let c = self.cfg;
        let rb1 = 1.0 / (1.0 - c.beta1.powi(self.t as i32));
        let rb2 = 1.0 / (1.0 - c.beta2.powi(self.t as i32));
        for slot in &mut self.slots {
            let grad = slot.param.grad();
            let mut value = slot.param.value();
            let gs = grad.as_slice();
            let values = value.as_mut_slice();
            let ms = slot.m.as_mut_slice();
            let vs = slot.v.as_mut_slice();
            for i in 0..gs.len() {
                let mut g = gs[i];
                if c.weight_decay != 0.0 {
                    g += values[i] * c.weight_decay;
                }
                let m = ms[i] * c.beta1 + g * (1.0 - c.beta1);
                let v = vs[i] * c.beta2 + (g * g) * (1.0 - c.beta2);
                ms[i] = m;
                vs[i] = v;
                let m_hat = m * rb1;
                let v_hat = v * rb2;
                values[i] -= (m_hat / (v_hat.sqrt() + c.eps)) * c.lr;
            }
            slot.param.set_value(value);
        }
    }

    /// Zeroes the gradient buffers of every managed parameter.
    pub fn zero_grad(&self) {
        for slot in &self.slots {
            slot.param.zero_grad();
        }
    }
}

/// Plain stochastic gradient descent (used by the evaluation classifiers).
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Param>,
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        Self { params, lr }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for simple schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies `p ← p − lr·∇p` for every parameter.
    pub fn step(&mut self) {
        for p in &self.params {
            p.set_value(p.value().sub(&p.grad().mul_scalar(self.lr)));
        }
    }

    /// Zeroes all gradient buffers.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_tensor::Graph;

    /// Minimize (w-3)² with Adam; should converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Adam::new(vec![p.clone()], AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..300 {
            opt.zero_grad();
            let g = Graph::new();
            let binder = crate::param::ParamBinder::new();
            let w = binder.bind(&g, &p);
            let t = g.add_scalar(w, -3.0);
            let loss = g.mul(t, t);
            binder.backprop(&g, loss);
            opt.step();
        }
        assert!((p.value().item() - 3.0).abs() < 0.05, "got {}", p.value().item());
    }

    #[test]
    fn sgd_descends() {
        let p = Param::new("w", Tensor::scalar(10.0));
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            opt.zero_grad();
            p.accumulate_grad(&Tensor::scalar(2.0 * p.value().item())); // d/dw w²
            opt.step();
        }
        assert!(p.value().item().abs() < 1e-3);
    }

    #[test]
    fn adam_step_direction_matches_gradient_sign() {
        let p = Param::new("w", Tensor::row(&[1.0, -1.0]));
        let mut opt = Adam::new(vec![p.clone()], AdamConfig::default());
        p.accumulate_grad(&Tensor::row(&[1.0, -1.0]));
        opt.step();
        let v = p.value();
        assert!(v.at(0, 0) < 1.0);
        assert!(v.at(0, 1) > -1.0);
    }
}
