//! # gtv-nn
//!
//! Neural-network layers, blocks and optimizers on top of
//! [`gtv_tensor`], shaped for the CTGAN-style networks the GTV paper uses:
//!
//! * [`Linear`], [`BatchNorm1d`], [`Dropout`] layers;
//! * the generator's [`ResidualBlock`] (FC → BN → ReLU, concat skip) and the
//!   discriminator's [`FnBlock`] (FC → LeakyReLU → Dropout);
//! * [`gumbel_softmax`] for categorical output heads;
//! * [`Adam`] (CTGAN defaults) and [`Sgd`] optimizers;
//! * the [`Param`] / [`ParamBinder`] machinery that binds persistent
//!   parameters into per-step autograd graphs.
//!
//! # Examples
//!
//! ```
//! use gtv_nn::{Ctx, Init, Linear};
//! use gtv_tensor::{Graph, Tensor};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let layer = Linear::new("demo", 4, 2, Init::KaimingUniform, &mut rng);
//! let g = Graph::new();
//! let ctx = Ctx::eval(&g, 0);
//! let x = g.leaf(Tensor::ones(3, 4));
//! let y = layer.forward(&ctx, x);
//! assert_eq!(g.shape(y), (3, 2));
//! ```

mod activations;
mod blocks;
mod ctx;
mod init;
mod layers;
mod optim;
mod param;
mod state;

pub use activations::{gumbel_softmax, softmax_tempered};
pub use blocks::{FnBlock, ResidualBlock};
pub use ctx::{row_seed, Ctx};
pub use init::Init;
pub use layers::{BatchNorm1d, Dropout, Linear};
pub use optim::{Adam, AdamConfig, Sgd};
pub use param::{Module, Param, ParamBinder};
pub use state::{LoadStateError, StateDict, Stateful};
