//! Cross-module NN tests: end-to-end layer stacks, boundary-gradient
//! extraction and optimizer interplay.

use gtv_nn::{
    Adam, AdamConfig, BatchNorm1d, Ctx, FnBlock, Init, Linear, Module, Param, ParamBinder,
    ResidualBlock,
};
use gtv_tensor::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn backprop_with_extras_returns_boundary_grads() {
    let g = Graph::new();
    let binder = ParamBinder::new();
    let p = Param::new("w", Tensor::scalar(2.0));
    let w = binder.bind(&g, &p);
    let x = g.leaf(Tensor::scalar(3.0)); // a "boundary" input
    let loss = g.mul(g.mul(w, x), x); // w·x²
    let extras = binder.backprop_with_extras(&g, loss, &[x]);
    assert_eq!(p.grad().item(), 9.0); // d/dw = x²
    assert_eq!(g.value(extras[0]).item(), 12.0); // d/dx = 2wx
}

#[test]
fn bindings_snapshot_matches_bind_order() {
    let g = Graph::new();
    let binder = ParamBinder::new();
    let a = Param::new("a", Tensor::scalar(1.0));
    let b = Param::new("b", Tensor::scalar(2.0));
    binder.bind(&g, &a);
    binder.bind(&g, &b);
    let pairs = binder.bindings();
    assert_eq!(pairs.len(), 2);
    assert!(pairs[0].0.ptr_eq(&a));
    assert!(pairs[1].0.ptr_eq(&b));
}

/// A two-block CTGAN-style generator stack learns to push its mean output
/// toward a target — validates blocks + Adam end to end.
#[test]
fn residual_stack_trains_toward_target() {
    let mut rng = StdRng::seed_from_u64(0);
    let block = ResidualBlock::new("rn", 8, 16, &mut rng);
    let head = Linear::new("head", block.out_dim(), 1, Init::KaimingUniform, &mut rng);
    let mut params = block.params();
    params.extend(head.params());
    let mut opt = Adam::new(params, AdamConfig { lr: 5e-3, ..Default::default() });

    let mut last = f32::MAX;
    for step in 0..150 {
        let g = Graph::new();
        let ctx = Ctx::train(&g, step);
        let x = g.leaf(Tensor::randn(32, 8, &mut rng));
        let h = block.forward(&ctx, x);
        let y = head.forward(&ctx, h);
        let target = g.leaf(Tensor::full(32, 1, 4.0));
        let diff = g.sub(y, target);
        let loss = g.mean_all(g.square(diff));
        opt.zero_grad();
        ctx.binder().backprop(&g, loss);
        opt.step();
        last = g.value(loss).item();
    }
    assert!(last < 0.5, "stack should approach the target, final loss {last}");
}

#[test]
fn fn_block_eval_is_deterministic_train_is_not() {
    let mut rng = StdRng::seed_from_u64(1);
    let block = FnBlock::new("fn", 6, 4, &mut rng);
    let x0 = Tensor::ones(4, 6);
    let run = |train: bool, seed: u64| {
        let g = Graph::new();
        let ctx = if train { Ctx::train(&g, seed) } else { Ctx::eval(&g, seed) };
        let x = g.leaf(x0.clone());
        g.value(block.forward(&ctx, x))
    };
    assert_eq!(run(false, 1), run(false, 2), "eval must ignore the RNG seed");
    assert_ne!(run(true, 1), run(true, 2), "train dropout must vary with the seed");
}

#[test]
fn batchnorm_learns_scale_and_shift() {
    let bn = BatchNorm1d::new("bn", 1);
    let mut opt = Adam::new(bn.params(), AdamConfig { lr: 5e-2, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(2);
    // Teach batch-norm to output mean 2, std 3 (γ → 3, β → 2).
    for step in 0..300 {
        let g = Graph::new();
        let ctx = Ctx::train(&g, step);
        let x = g.leaf(Tensor::randn(64, 1, &mut rng));
        let y = bn.forward(&ctx, x);
        let target_mean = g.leaf(Tensor::scalar(2.0));
        let mean = g.mean_all(y);
        let centered = g.sub(y, mean);
        let var = g.mean_all(g.square(centered));
        let loss_mean = g.square(g.sub(mean, target_mean));
        let target_var = g.leaf(Tensor::scalar(9.0));
        let loss_var = g.square(g.sub(var, target_var));
        let loss = g.add(loss_mean, loss_var);
        opt.zero_grad();
        ctx.binder().backprop(&g, loss);
        opt.step();
    }
    let gamma = bn.params()[0].value().item();
    let beta = bn.params()[1].value().item();
    assert!((gamma.abs() - 3.0).abs() < 0.5, "gamma {gamma}");
    assert!((beta - 2.0).abs() < 0.5, "beta {beta}");
}

#[test]
fn adam_handles_many_params_of_mixed_shapes() {
    let mut rng = StdRng::seed_from_u64(3);
    let layers: Vec<Linear> = (0..4)
        .map(|i| Linear::new(&format!("l{i}"), 3 + i, 2 + i, Init::XavierUniform, &mut rng))
        .collect();
    let params: Vec<Param> = layers.iter().flat_map(Module::params).collect();
    let mut opt = Adam::new(params.clone(), AdamConfig::default());
    for p in &params {
        let (r, c) = p.shape();
        p.accumulate_grad(&Tensor::ones(r, c));
    }
    opt.step();
    opt.zero_grad();
    for p in &params {
        assert_eq!(p.grad().frob_norm(), 0.0);
    }
}
