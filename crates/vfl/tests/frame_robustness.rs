//! Property tests: the socket framing layer is *total* on arbitrary input.
//! A remote peer controls every byte that reaches [`FrameBuf`], so split or
//! partial reads, truncated frames, corrupt bodies, oversized length
//! prefixes and nonsense handshake versions must all decode to typed
//! [`TransportError`]s — never a panic, a hang, or an allocation driven by
//! an attacker-chosen length. Extends the `decode_robustness.rs` style to
//! the framing layer beneath the message codec.

use gtv_vfl::socket::framing::{
    decode_frame_body, encode_frame, handshake_reject_reason, Frame, FrameBuf, MAX_FRAME_BODY,
    PROTOCOL_VERSION, WIRE_VERSION,
};
use gtv_vfl::{PartyId, TransportError};
use proptest::collection::vec;
use proptest::prelude::*;

fn party_of(sel: usize) -> PartyId {
    match sel % 3 {
        0 => PartyId::Server,
        1 => PartyId::Public,
        _ => PartyId::Client(sel / 3),
    }
}

/// One arbitrary frame, driven by a variant selector plus a shared pool of
/// generated field values (the shim has no `prop_oneof!`).
fn frame() -> impl Strategy<Value = Frame> {
    (0u8..10, any::<u32>(), any::<u32>(), 0usize..48, vec(any::<u8>(), 0..256), any::<u64>())
        .prop_map(|(variant, a, b, psel, payload, timeout_ms)| match variant {
            0 => Frame::Hello { protocol: a, wire: b, party: party_of(psel) },
            1 => Frame::HelloAck { protocol: a, wire: b },
            2 => Frame::HelloReject {
                reason: payload.iter().map(|&c| char::from(b' ' + c % 95)).collect(),
            },
            3 => Frame::Deliver { from: party_of(psel), payload: payload.into() },
            4 => Frame::DeliverAck,
            5 => Frame::RecvReq { timeout_ms },
            6 => Frame::TryRecvReq,
            7 => Frame::Msg { from: party_of(psel), payload: payload.into() },
            8 => Frame::Empty,
            _ => Frame::TimedOut,
        })
}

/// Feed a byte stream into a fresh decoder, draining frames until the
/// buffer runs dry or sync is lost. Total by construction: every outcome
/// is `Ok(frames)` or a typed error.
fn drain(stream: &[u8], chunk: usize) -> Result<Vec<Frame>, TransportError> {
    let mut fb = FrameBuf::new();
    let mut out = Vec::new();
    for piece in stream.chunks(chunk.max(1)) {
        fb.extend(piece);
        while let Some(f) = fb.next_frame()? {
            out.push(f);
        }
    }
    Ok(out)
}

proptest! {
    /// Arbitrary bytes never panic the incremental decoder, and a length
    /// prefix beyond the frame bound is rejected before any buffer grows
    /// toward it.
    #[test]
    fn arbitrary_streams_never_panic(bytes in vec(any::<u8>(), 0..512), chunk in 1usize..64) {
        let _ = drain(&bytes, chunk);
    }

    /// An oversized length prefix errors immediately — the decoder must not
    /// wait for (or try to allocate) the advertised body.
    #[test]
    fn oversized_length_prefix_is_typed_error(extra in any::<u32>()) {
        let len = (MAX_FRAME_BODY as u64 + 1 + u64::from(extra)).min(u64::from(u32::MAX)) as u32;
        let mut fb = FrameBuf::new();
        fb.extend(&len.to_le_bytes());
        let err = fb.next_frame().expect_err("oversized prefix must be rejected");
        prop_assert!(matches!(err, TransportError::Frame { .. }), "{err:?}");
        prop_assert!(fb.buffered() <= 4, "nothing may be buffered toward the bogus body");
    }

    /// encode→decode round-trips every frame, regardless of how the bytes
    /// are split across reads.
    #[test]
    fn frames_roundtrip_under_any_split(f in frame(), chunk in 1usize..16) {
        let bytes = encode_frame(&f);
        let frames = drain(&bytes, chunk).expect("valid encoding must decode");
        prop_assert_eq!(frames, vec![f]);
    }

    /// Byte-by-byte feeding and one-shot feeding agree on every stream —
    /// the decoder's state machine cannot depend on read boundaries.
    #[test]
    fn split_and_whole_feeds_agree(frames in vec(frame(), 0..6)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let whole = drain(&stream, stream.len().max(1)).expect("valid");
        let split = drain(&stream, 1).expect("valid");
        prop_assert_eq!(&whole, &frames);
        prop_assert_eq!(whole, split);
    }

    /// A truncated frame is "need more bytes" (`Ok(None)`), never an error
    /// or a phantom frame.
    #[test]
    fn truncated_frames_wait_for_more(f in frame(), cut in 1usize..32) {
        let bytes = encode_frame(&f);
        let keep = bytes.len() - cut.min(bytes.len());
        let mut fb = FrameBuf::new();
        fb.extend(&bytes[..keep]);
        prop_assert_eq!(fb.next_frame().expect("prefix of a valid frame cannot error"), None);
    }

    /// Corrupting a frame body decodes to a typed error or some other valid
    /// frame — never a panic.
    #[test]
    fn corrupted_bodies_never_panic(f in frame(), pos in 0usize..4096, flip in 1u8..255) {
        let mut bytes = encode_frame(&f);
        let i = 4 + pos % (bytes.len() - 4).max(1);
        if i < bytes.len() {
            bytes[i] ^= flip.max(1);
        }
        let _ = decode_frame_body(&bytes[4..]);
        let _ = drain(&bytes, 7);
    }

    /// The handshake acceptance rule: exactly the advertised versions pass,
    /// everything else is rejected with a reason naming the bad version.
    #[test]
    fn handshake_versions_are_strict(protocol in any::<u32>(), wire in any::<u32>()) {
        match handshake_reject_reason(protocol, wire) {
            None => {
                prop_assert_eq!(protocol, PROTOCOL_VERSION);
                prop_assert_eq!(wire, WIRE_VERSION);
            }
            Some(reason) => {
                prop_assert!(protocol != PROTOCOL_VERSION || wire != WIRE_VERSION);
                let named = if protocol != PROTOCOL_VERSION { protocol } else { wire };
                prop_assert!(reason.contains(&named.to_string()), "{reason}");
            }
        }
    }
}
