//! Property tests: every `Message` variant survives an encode→decode
//! round-trip bit-exactly, and the encoded length matches the meter.

use gtv_vfl::{MatrixPayload, Message};
use proptest::collection::vec;
use proptest::prelude::*;

fn matrix() -> impl Strategy<Value = MatrixPayload> {
    (vec(-100.0f32..100.0f32, 0..48usize), 1usize..5).prop_map(|(data, cols)| {
        let rows = data.len() / cols;
        MatrixPayload::new(rows as u32, cols as u32, data[..rows * cols].to_vec())
    })
}

fn roundtrip(msg: &Message) {
    let encoded = msg.encode();
    let decoded = Message::decode(encoded).expect("self-encoded message must decode");
    assert_eq!(&decoded, msg);
}

proptest! {
    #[test]
    fn round_start_roundtrips(round in any::<u64>(), selected in any::<u32>()) {
        roundtrip(&Message::RoundStart { round, selected });
    }

    #[test]
    fn cond_upload_roundtrips(cv in matrix(), indices in vec(0u32..10_000, 0..40usize)) {
        roundtrip(&Message::CondUpload { cv, indices });
    }

    #[test]
    fn gen_slice_roundtrips(m in matrix()) {
        roundtrip(&Message::GenSlice(m));
    }

    #[test]
    fn synth_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::SynthLogits(m));
    }

    #[test]
    fn real_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::RealLogits(m));
    }

    #[test]
    fn grad_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::GradLogits(m));
    }

    #[test]
    fn grad_gen_slice_roundtrips(m in matrix()) {
        roundtrip(&Message::GradGenSlice(m));
    }

    #[test]
    fn synthetic_share_roundtrips(m in matrix()) {
        roundtrip(&Message::SyntheticShare(m));
    }

    #[test]
    fn shuffle_seed_share_roundtrips(share in any::<u64>()) {
        roundtrip(&Message::ShuffleSeedShare { share });
    }

    #[test]
    fn index_share_roundtrips(indices in vec(0u32..100_000, 0..64usize)) {
        roundtrip(&Message::IndexShare { indices });
    }

    #[test]
    fn encoded_len_matches_wire_bytes(m in matrix()) {
        let msg = Message::GenSlice(m.clone());
        // 1 tag byte + the matrix's self-reported size: the traffic meter
        // and the wire bytes must agree.
        prop_assert_eq!(msg.encode().len(), 1 + m.encoded_len());
    }
}
