//! Property tests: every `Message` variant survives an encode→decode
//! round-trip bit-exactly — under both wire codecs — and the encoded
//! length matches the meter.

use gtv_vfl::{MatrixPayload, Message, WireCodec};
use proptest::collection::vec;
use proptest::prelude::*;

fn matrix() -> impl Strategy<Value = MatrixPayload> {
    (vec(-100.0f32..100.0f32, 0..48usize), 1usize..5).prop_map(|(data, cols)| {
        let rows = data.len() / cols;
        MatrixPayload::new(rows as u32, cols as u32, data[..rows * cols].to_vec())
    })
}

/// One entry drawn from the full f32 bit space plus the values the sparse
/// body treats specially: both zeros, NaN, infinities and subnormals.
fn tricky_f32() -> impl Strategy<Value = f32> {
    (0u32..8, any::<u32>()).prop_map(|(pick, bits)| match pick {
        0 => 0.0f32,
        1 => -0.0f32,
        2 => f32::NAN,
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => f32::MIN_POSITIVE / 2.0, // subnormal
        6 => f32::from_bits(bits),    // anything, incl. signalling NaNs
        _ => (bits as f32 / u32::MAX as f32) * 200.0 - 100.0,
    })
}

/// Mostly-zero matrices with adversarial entry values — the payloads the
/// adaptive codec actually picks the sparse body for.
fn sparse_matrix() -> impl Strategy<Value = MatrixPayload> {
    (vec((tricky_f32(), 0u32..100), 0..48usize), 1usize..5).prop_map(|(entries, cols)| {
        // ~20% of entries survive; the rest collapse to +0.0.
        let data: Vec<f32> =
            entries.iter().map(|&(v, keep)| if keep < 20 { v } else { 0.0 }).collect();
        let rows = data.len() / cols;
        MatrixPayload::new(rows as u32, cols as u32, data[..rows * cols].to_vec())
    })
}

/// Bit-level equality: `==` on f32 would pass `0.0 == -0.0` and fail
/// `NaN == NaN`, hiding exactly the cases the sparse body must preserve.
fn assert_bits_equal(a: &MatrixPayload, b: &MatrixPayload) {
    assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    let ab: Vec<u32> = a.data.iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.data.iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "decoded entries must be bit-identical");
}

fn payload_of(msg: &Message) -> &MatrixPayload {
    match msg {
        Message::GenSlice(m) => m,
        other => panic!("expected GenSlice, got {other:?}"),
    }
}

fn roundtrip(msg: &Message) {
    let encoded = msg.encode();
    let decoded = Message::decode(encoded).expect("self-encoded message must decode");
    assert_eq!(&decoded, msg);
}

proptest! {
    #[test]
    fn round_start_roundtrips(round in any::<u64>(), selected in any::<u32>()) {
        roundtrip(&Message::RoundStart { round, selected });
    }

    #[test]
    fn cond_upload_roundtrips(cv in matrix(), indices in vec(0u32..10_000, 0..40usize)) {
        roundtrip(&Message::CondUpload { cv, indices });
    }

    #[test]
    fn gen_slice_roundtrips(m in matrix()) {
        roundtrip(&Message::GenSlice(m));
    }

    #[test]
    fn synth_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::SynthLogits(m));
    }

    #[test]
    fn real_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::RealLogits(m));
    }

    #[test]
    fn grad_logits_roundtrips(m in matrix()) {
        roundtrip(&Message::GradLogits(m));
    }

    #[test]
    fn grad_gen_slice_roundtrips(m in matrix()) {
        roundtrip(&Message::GradGenSlice(m));
    }

    #[test]
    fn synthetic_share_roundtrips(m in matrix()) {
        roundtrip(&Message::SyntheticShare(m));
    }

    #[test]
    fn shuffle_seed_share_roundtrips(share in any::<u64>()) {
        roundtrip(&Message::ShuffleSeedShare { share });
    }

    #[test]
    fn index_share_roundtrips(indices in vec(0u32..100_000, 0..64usize)) {
        roundtrip(&Message::IndexShare { indices });
    }

    #[test]
    fn encoded_len_matches_wire_bytes(m in matrix()) {
        let msg = Message::GenSlice(m.clone());
        // 1 tag byte + the matrix's self-reported size: the traffic meter
        // and the wire bytes must agree.
        prop_assert_eq!(msg.encode().len(), 1 + m.encoded_len());
    }

    #[test]
    fn adaptive_encoded_len_matches_wire_bytes(m in sparse_matrix()) {
        let msg = Message::GenSlice(m.clone());
        prop_assert_eq!(
            msg.encode_with(WireCodec::Adaptive).len(),
            1 + m.encoded_len_with(WireCodec::Adaptive)
        );
    }

    #[test]
    fn sparse_body_roundtrips_bit_exactly(m in sparse_matrix()) {
        // NaN, ±0, infinities and subnormals must survive the sparse body
        // with their exact bit patterns.
        let decoded = Message::decode(Message::GenSlice(m.clone()).encode_with(WireCodec::Adaptive))
            .expect("self-encoded message must decode");
        assert_bits_equal(payload_of(&decoded), &m);
    }

    #[test]
    fn codec_choice_never_changes_decoded_values(m in sparse_matrix()) {
        // The density threshold is a pure size optimization: whatever body
        // the adaptive codec picks, the decoder must reconstruct the same
        // bits the dense body carries.
        let msg = Message::GenSlice(m);
        let dense = Message::decode(msg.encode_with(WireCodec::Dense))
            .expect("dense encoding must decode");
        let adaptive = Message::decode(msg.encode_with(WireCodec::Adaptive))
            .expect("adaptive encoding must decode");
        assert_bits_equal(payload_of(&dense), payload_of(&adaptive));
    }

    #[test]
    fn adaptive_never_exceeds_dense_size(m in sparse_matrix()) {
        let msg = Message::GenSlice(m);
        prop_assert!(
            msg.encode_with(WireCodec::Adaptive).len() <= msg.encode_with(WireCodec::Dense).len()
        );
    }
}
