//! Property tests: `Message::decode` is *total* on arbitrary input. Any
//! byte buffer — random garbage, a truncated prefix of a valid encoding, or
//! a valid encoding with one byte flipped — must return `Err` or a valid
//! message, never panic. Complements the round-trip suite in
//! `wire_roundtrip.rs`, which only exercises the happy path.

use bytes::Bytes;
use gtv_vfl::{MatrixPayload, Message, WireCodec};
use proptest::collection::vec;
use proptest::prelude::*;

/// Decode must be total: never panic, and anything it accepts must survive
/// an encode→decode round-trip back to the same message.
fn assert_decode_total(bytes: &[u8]) {
    if let Ok(msg) = Message::decode(Bytes::from(bytes.to_vec())) {
        let re = msg.encode();
        let again = Message::decode(re).expect("re-encoded message must decode");
        assert_eq!(again, msg, "accepted input must round-trip stably");
    }
}

fn matrix() -> impl Strategy<Value = MatrixPayload> {
    (vec(-100.0f32..100.0f32, 0..48usize), 1usize..5).prop_map(|(data, cols)| {
        let rows = data.len() / cols;
        MatrixPayload::new(rows as u32, cols as u32, data[..rows * cols].to_vec())
    })
}

/// Mostly-zero matrices — under the adaptive codec these encode to the
/// sparse body, so truncating/mutating their encodings drives the sparse
/// decoder arm through its validation paths.
fn sparse_matrix() -> impl Strategy<Value = MatrixPayload> {
    (vec((-100.0f32..100.0f32, 0u32..100), 0..48usize), 1usize..5).prop_map(|(entries, cols)| {
        // ~15% of entries survive; the rest collapse to +0.0.
        let data: Vec<f32> =
            entries.iter().map(|&(v, keep)| if keep < 15 { v } else { 0.0 }).collect();
        let rows = data.len() / cols;
        MatrixPayload::new(rows as u32, cols as u32, data[..rows * cols].to_vec())
    })
}

/// A mix of structured messages whose encodings exercise every decoder arm.
fn message() -> impl Strategy<Value = Message> {
    (matrix(), vec(0u32..100_000, 0..32usize), any::<u64>(), 0u8..6).prop_map(
        |(m, indices, word, pick)| match pick {
            0 => Message::RoundStart { round: word, selected: word as u32 },
            1 => Message::CondUpload { cv: m, indices },
            2 => Message::GenSlice(m),
            3 => Message::ShuffleSeedShare { share: word },
            4 => Message::IndexShare { indices },
            _ => Message::GradLogits(m),
        },
    )
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(buf in vec(any::<u8>(), 0..256usize)) {
        assert_decode_total(&buf);
    }

    #[test]
    fn truncations_of_valid_encodings_never_panic(msg in message(), cut in any::<usize>()) {
        let encoded = msg.encode().to_vec();
        let len = cut % (encoded.len() + 1);
        assert_decode_total(&encoded[..len]);
    }

    #[test]
    fn single_byte_mutations_never_panic(msg in message(), pos in any::<usize>(), flip in 1u8..255u8) {
        let mut bytes = msg.encode().to_vec();
        if !bytes.is_empty() {
            let at = pos % bytes.len();
            bytes[at] ^= flip;
        }
        assert_decode_total(&bytes);
    }

    #[test]
    fn truncated_sparse_bodies_never_panic(m in sparse_matrix(), cut in any::<usize>()) {
        let encoded = Message::GenSlice(m).encode_with(WireCodec::Adaptive).to_vec();
        let len = cut % (encoded.len() + 1);
        assert_decode_total(&encoded[..len]);
    }

    #[test]
    fn mutated_sparse_bodies_never_panic(m in sparse_matrix(), pos in any::<usize>(), flip in 1u8..255u8) {
        // Flipped bytes can produce out-of-range indices, non-increasing
        // index runs, stored zeros, absurd nnz counts or an unknown format
        // tag — all must surface as Err, never as a panic or a bad alloc.
        let mut bytes = Message::GenSlice(m).encode_with(WireCodec::Adaptive).to_vec();
        if !bytes.is_empty() {
            let at = pos % bytes.len();
            bytes[at] ^= flip;
        }
        assert_decode_total(&bytes);
    }
}
