//! Wire format for every message exchanged in the GTV protocol.
//!
//! Messages are hand-encoded with [`bytes`] (length-prefixed matrices,
//! little-endian scalars) so the transport layer can meter *exactly* how
//! many bytes each protocol step moves — the paper's communication-overhead
//! discussion (§4.3.1) is reproduced from these counters.
//!
//! Matrix bodies use **wire format v2** (DESIGN.md §10): every matrix
//! starts with a one-byte format tag selecting a dense body (one f32 per
//! entry) or a sparse body (explicit `(index, value)` pairs for every
//! entry whose bit pattern is not `+0.0`). Both bodies decode to the
//! bit-identical dense matrix; [`WireCodec::Adaptive`] picks whichever is
//! smaller per message, which collapses the one-hot conditional-vector and
//! ReLU-gradient payloads that dominate GTV's traffic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// How matrix bodies are chosen at encode time (wire format v2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// Always the dense body — one f32 per entry.
    #[default]
    Dense,
    /// Per matrix: the sparse `(index, value)` body whenever it is strictly
    /// smaller than the dense one, dense otherwise. Lossless either way —
    /// the choice never changes the decoded values.
    Adaptive,
}

/// A dense f32 matrix payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPayload {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Row-major values (`rows * cols` entries).
    pub data: Vec<f32>,
}

impl MatrixPayload {
    /// Creates a payload, validating the buffer length.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: u32, cols: u32, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), (rows * cols) as usize, "payload shape mismatch");
        Self { rows, cols, data }
    }

    /// Encoded size in bytes of the dense body (format byte, 8-byte header,
    /// 4 bytes per entry).
    pub fn encoded_len(&self) -> usize {
        9 + self.data.len() * 4
    }

    /// Entries whose bit pattern is not `+0.0` — the only value the sparse
    /// decoder reconstructs implicitly. `-0.0`, NaN, infinities and
    /// subnormals all have nonzero bits and are stored explicitly, keeping
    /// sparse round-trips bit-exact.
    pub fn stored_entries(&self) -> usize {
        self.data.iter().filter(|v| v.to_bits() != 0).count()
    }

    /// Encoded size in bytes of the sparse body for `nnz` stored entries
    /// (format byte, 8-byte header, 4-byte count, 8 bytes per pair).
    pub fn sparse_encoded_len(nnz: usize) -> usize {
        13 + nnz * 8
    }

    /// Whether [`WireCodec::Adaptive`] picks the sparse body for this
    /// matrix: only when it is strictly smaller than the dense one, and the
    /// matrix is small enough for the decoder's allocation bound.
    pub fn adaptive_is_sparse(&self) -> bool {
        self.data.len() <= MAX_SPARSE_DENSE_ENTRIES
            && Self::sparse_encoded_len(self.stored_entries()) < self.encoded_len()
    }

    /// Encoded size in bytes under `codec`.
    pub fn encoded_len_with(&self, codec: WireCodec) -> usize {
        match codec {
            WireCodec::Dense => self.encoded_len(),
            WireCodec::Adaptive => {
                if self.adaptive_is_sparse() {
                    Self::sparse_encoded_len(self.stored_entries())
                } else {
                    self.encoded_len()
                }
            }
        }
    }
}

/// Matrix body format tags (wire format v2).
const MATRIX_FORMAT_DENSE: u8 = 0;
const MATRIX_FORMAT_SPARSE: u8 = 1;

/// Largest dense entry count a sparse body may describe. A sparse body's
/// wire size is independent of the dense size it expands to, so without a
/// bound a 13-byte adversarial header could demand a multi-gigabyte
/// allocation from the decoder. 2^28 f32 entries (1 GiB) is far above any
/// real GTV payload; the adaptive encoder falls back to dense beyond it so
/// encode→decode stays total.
const MAX_SPARSE_DENSE_ENTRIES: usize = 1 << 28;

/// Error from decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeMessageError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DecodeMessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "message decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeMessageError {}

fn err(msg: &str) -> DecodeMessageError {
    DecodeMessageError { message: msg.into() }
}

/// Every message type of the GTV protocol (Algorithm 1 plus publication).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → all clients: a round starts; `selected` constructs the CV.
    RoundStart {
        /// Training round number.
        round: u64,
        /// Index of the CV-constructing client `p`.
        selected: u32,
    },
    /// Selected client → server: its CV block and the matching row indices
    /// `idx_p`.
    CondUpload {
        /// One-hot conditions within the client's CV block.
        cv: MatrixPayload,
        /// Matching real-row indices.
        indices: Vec<u32>,
    },
    /// Server → client `i`: the client's slice of `G^t`'s output.
    GenSlice(MatrixPayload),
    /// Client → server: `D_i^b(G_i^b(·))` logits for the synthetic path.
    SynthLogits(MatrixPayload),
    /// Client → server: `D_i^b(T_i)` logits for the real path.
    RealLogits(MatrixPayload),
    /// Server → client: gradient w.r.t. the client's uploaded logits.
    GradLogits(MatrixPayload),
    /// Server → client: gradient w.r.t. the `G^t` slice the client received.
    GradGenSlice(MatrixPayload),
    /// Client → public bulletin: its (shuffled) synthetic share.
    SyntheticShare(MatrixPayload),
    /// Client ↔ client: contribution to the shared shuffle seed (never
    /// routed through the server).
    ShuffleSeedShare {
        /// The client's random contribution.
        share: u64,
    },
    /// Client → client: the selected data indices, in the *alternative*
    /// peer-to-peer design of §3.1.6 (the paper rejects it because curious
    /// clients can mine the index stream; implemented here to reproduce
    /// that analysis).
    IndexShare {
        /// The selected row indices `idx_p`.
        indices: Vec<u32>,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::RoundStart { .. } => 0,
            Message::CondUpload { .. } => 1,
            Message::GenSlice(_) => 2,
            Message::SynthLogits(_) => 3,
            Message::RealLogits(_) => 4,
            Message::GradLogits(_) => 5,
            Message::GradGenSlice(_) => 6,
            Message::SyntheticShare(_) => 7,
            Message::ShuffleSeedShare { .. } => 8,
            Message::IndexShare { .. } => 9,
        }
    }

    /// The variant name, used by protocol steps to state which reply they
    /// expect (see `Network::recv_expect`).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::RoundStart { .. } => "RoundStart",
            Message::CondUpload { .. } => "CondUpload",
            Message::GenSlice(_) => "GenSlice",
            Message::SynthLogits(_) => "SynthLogits",
            Message::RealLogits(_) => "RealLogits",
            Message::GradLogits(_) => "GradLogits",
            Message::GradGenSlice(_) => "GradGenSlice",
            Message::SyntheticShare(_) => "SyntheticShare",
            Message::ShuffleSeedShare { .. } => "ShuffleSeedShare",
            Message::IndexShare { .. } => "IndexShare",
        }
    }

    /// Encodes to bytes with every matrix body dense ([`WireCodec::Dense`]).
    pub fn encode(&self) -> Bytes {
        self.encode_with(WireCodec::Dense)
    }

    /// Encodes to bytes, choosing each matrix body per `codec`.
    pub fn encode_with(&self, codec: WireCodec) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(self.tag());
        match self {
            Message::RoundStart { round, selected } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(*selected);
            }
            Message::CondUpload { cv, indices } => {
                put_matrix(&mut buf, cv, codec);
                debug_assert!(indices.len() <= u32::MAX as usize, "index count exceeds wire width");
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
            }
            Message::GenSlice(m)
            | Message::SynthLogits(m)
            | Message::RealLogits(m)
            | Message::GradLogits(m)
            | Message::GradGenSlice(m)
            | Message::SyntheticShare(m) => put_matrix(&mut buf, m, codec),
            Message::ShuffleSeedShare { share } => buf.put_u64_le(*share),
            Message::IndexShare { indices } => {
                debug_assert!(indices.len() <= u32::MAX as usize, "index count exceeds wire width");
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMessageError`] on truncated or malformed input.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeMessageError> {
        if bytes.remaining() < 1 {
            return Err(err("empty message"));
        }
        let tag = bytes.get_u8();
        let msg = match tag {
            0 => {
                if bytes.remaining() < 12 {
                    return Err(err("truncated RoundStart"));
                }
                Message::RoundStart { round: bytes.get_u64_le(), selected: bytes.get_u32_le() }
            }
            1 => {
                let cv = get_matrix(&mut bytes)?;
                if bytes.remaining() < 4 {
                    return Err(err("truncated index count"));
                }
                let n = bytes.get_u32_le() as usize;
                if bytes.remaining() < n * 4 {
                    return Err(err("truncated indices"));
                }
                let indices = (0..n).map(|_| bytes.get_u32_le()).collect();
                Message::CondUpload { cv, indices }
            }
            2 => Message::GenSlice(get_matrix(&mut bytes)?),
            3 => Message::SynthLogits(get_matrix(&mut bytes)?),
            4 => Message::RealLogits(get_matrix(&mut bytes)?),
            5 => Message::GradLogits(get_matrix(&mut bytes)?),
            6 => Message::GradGenSlice(get_matrix(&mut bytes)?),
            7 => Message::SyntheticShare(get_matrix(&mut bytes)?),
            8 => {
                if bytes.remaining() < 8 {
                    return Err(err("truncated ShuffleSeedShare"));
                }
                Message::ShuffleSeedShare { share: bytes.get_u64_le() }
            }
            9 => {
                if bytes.remaining() < 4 {
                    return Err(err("truncated index count"));
                }
                let n = bytes.get_u32_le() as usize;
                if bytes.remaining() < n * 4 {
                    return Err(err("truncated indices"));
                }
                Message::IndexShare { indices: (0..n).map(|_| bytes.get_u32_le()).collect() }
            }
            t => return Err(err(&format!("unknown message tag {t}"))),
        };
        if bytes.has_remaining() {
            return Err(err("trailing bytes after message"));
        }
        Ok(msg)
    }
}

fn put_matrix(buf: &mut BytesMut, m: &MatrixPayload, codec: WireCodec) {
    if codec == WireCodec::Adaptive && m.adaptive_is_sparse() {
        put_matrix_sparse(buf, m);
    } else {
        put_matrix_dense(buf, m);
    }
}

fn put_matrix_dense(buf: &mut BytesMut, m: &MatrixPayload) {
    buf.put_u8(MATRIX_FORMAT_DENSE);
    buf.put_u32_le(m.rows);
    buf.put_u32_le(m.cols);
    // Bulk body write: serialize every value into one scratch buffer and
    // append it with a single `put_slice` instead of one reservation check
    // per element. The wire format stays explicitly little-endian
    // (`to_le_bytes`), so the encoding is identical on any host.
    let mut body = vec![0u8; m.data.len() * 4];
    for (chunk, &v) in body.chunks_exact_mut(4).zip(&m.data) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    buf.put_slice(&body);
}

fn put_matrix_sparse(buf: &mut BytesMut, m: &MatrixPayload) {
    buf.put_u8(MATRIX_FORMAT_SPARSE);
    buf.put_u32_le(m.rows);
    buf.put_u32_le(m.cols);
    let nnz = m.stored_entries();
    debug_assert!(nnz <= u32::MAX as usize, "sparse entry count exceeds wire width");
    buf.put_u32_le(nnz as u32);
    // One (index, value) pair per stored entry, in strictly increasing
    // index order — the canonical form the decoder enforces. The nonzero
    // test is on the *bit pattern*: -0.0, NaN, Inf and subnormals are all
    // stored explicitly, so decode is bit-identical to the dense body.
    let mut body = Vec::with_capacity(nnz * 8);
    for (i, &v) in m.data.iter().enumerate() {
        if v.to_bits() == 0 {
            continue;
        }
        debug_assert!(i <= u32::MAX as usize, "sparse entry index exceeds wire width");
        body.extend_from_slice(&(i as u32).to_le_bytes());
        body.extend_from_slice(&v.to_le_bytes());
    }
    buf.put_slice(&body);
}

fn get_matrix(bytes: &mut Bytes) -> Result<MatrixPayload, DecodeMessageError> {
    if bytes.remaining() < 9 {
        return Err(err("truncated matrix header"));
    }
    let format = bytes.get_u8();
    let rows = bytes.get_u32_le();
    let cols = bytes.get_u32_le();
    let n = rows.checked_mul(cols).ok_or_else(|| err("matrix dimensions overflow"))? as usize;
    match format {
        MATRIX_FORMAT_DENSE => {
            if bytes.remaining() < n * 4 {
                return Err(err("truncated matrix body"));
            }
            // Bulk body read: parse the contiguous little-endian body in one
            // pass over the underlying slice, then advance the cursor once.
            let mut data = Vec::with_capacity(n);
            data.extend(bytes.chunk()[..n * 4].chunks_exact(4).map(|c| {
                // gtv-lint: allow(panic) -- chunks_exact(4) yields exactly 4 bytes
                f32::from_le_bytes(c.try_into().expect("4-byte chunk"))
            }));
            bytes.advance(n * 4);
            Ok(MatrixPayload { rows, cols, data })
        }
        MATRIX_FORMAT_SPARSE => {
            if n > MAX_SPARSE_DENSE_ENTRIES {
                return Err(err("sparse matrix exceeds the decoder allocation bound"));
            }
            if bytes.remaining() < 4 {
                return Err(err("truncated sparse entry count"));
            }
            let nnz = bytes.get_u32_le() as usize;
            if nnz > n {
                return Err(err("sparse entry count exceeds matrix size"));
            }
            if bytes.remaining() < nnz * 8 {
                return Err(err("truncated sparse matrix body"));
            }
            let mut data = vec![0.0f32; n];
            let mut prev: Option<u32> = None;
            // gtv-lint: allow(determinism) -- 8-byte (u32 idx, f32 val) wire records, not f32 lanes
            for chunk in bytes.chunk()[..nnz * 8].chunks_exact(8) {
                let idx = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                let val = f32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                // Only the canonical form decodes: strictly increasing
                // indices, in range, and no explicitly-stored +0.0 bits
                // (those belong to the implicit zero fill). Anything else
                // would make re-encoding unstable.
                if prev.is_some_and(|p| idx <= p) {
                    return Err(err("sparse indices not strictly increasing"));
                }
                if idx as usize >= n {
                    return Err(err("sparse index out of range"));
                }
                if val.to_bits() == 0 {
                    return Err(err("sparse entry stores an implicit zero"));
                }
                data[idx as usize] = val;
                prev = Some(idx);
            }
            bytes.advance(nnz * 8);
            Ok(MatrixPayload { rows, cols, data })
        }
        f => Err(err(&format!("unknown matrix format {f}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> MatrixPayload {
        MatrixPayload::new(2, 3, vec![1.0, -2.0, 3.5, 0.0, 7.25, -0.5])
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::RoundStart { round: 42, selected: 1 },
            Message::CondUpload { cv: demo_matrix(), indices: vec![3, 1, 4] },
            Message::GenSlice(demo_matrix()),
            Message::SynthLogits(demo_matrix()),
            Message::RealLogits(demo_matrix()),
            Message::GradLogits(demo_matrix()),
            Message::GradGenSlice(demo_matrix()),
            Message::SyntheticShare(demo_matrix()),
            Message::ShuffleSeedShare { share: 0xdead_beef },
            Message::IndexShare { indices: vec![9, 8, 7] },
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = Message::decode(enc).unwrap();
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn rejects_truncated_and_garbage() {
        assert!(Message::decode(Bytes::new()).is_err());
        assert!(Message::decode(Bytes::from_static(&[99])).is_err());
        let enc = Message::GenSlice(demo_matrix()).encode();
        let truncated = enc.slice(0..enc.len() - 3);
        assert!(Message::decode(truncated).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut enc = Message::ShuffleSeedShare { share: 1 }.encode().to_vec();
        enc.push(0);
        assert!(Message::decode(Bytes::from(enc)).is_err());
    }

    #[test]
    fn encoded_len_matches() {
        let m = demo_matrix();
        // Format byte + 8-byte header + 4 bytes per entry.
        assert_eq!(m.encoded_len(), 9 + 6 * 4);
        let enc = Message::GenSlice(m).encode();
        assert_eq!(enc.len(), 1 + 9 + 24);
    }

    #[test]
    fn adaptive_codec_picks_sparse_only_when_smaller() {
        // 1 nonzero out of 8: sparse (13 + 8) beats dense (9 + 32).
        let sparse = MatrixPayload::new(2, 4, vec![0.0, 0.0, 3.5, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert!(sparse.adaptive_is_sparse());
        assert_eq!(sparse.encoded_len_with(WireCodec::Adaptive), 13 + 8);
        assert_eq!(sparse.encoded_len_with(WireCodec::Dense), 9 + 32);
        let enc = Message::GenSlice(sparse.clone()).encode_with(WireCodec::Adaptive);
        assert_eq!(enc.len(), 1 + 13 + 8);
        assert_eq!(Message::decode(enc).unwrap(), Message::GenSlice(sparse));
        // Fully dense matrix: adaptive falls back to the dense body.
        let dense = demo_matrix();
        assert!(!dense.adaptive_is_sparse());
        let enc = Message::GenSlice(dense.clone()).encode_with(WireCodec::Adaptive);
        assert_eq!(enc.len(), 1 + dense.encoded_len());
        assert_eq!(Message::decode(enc).unwrap(), Message::GenSlice(dense));
    }

    #[test]
    fn sparse_body_preserves_nonfinite_and_signed_zero_bits() {
        // -0.0 has a nonzero bit pattern and must be stored explicitly;
        // NaN/Inf must survive bit-exactly. One +0.0 keeps the row sparse.
        let m = MatrixPayload::new(1, 6, vec![0.0, -0.0, f32::NAN, f32::INFINITY, 0.0, 0.0]);
        assert_eq!(m.stored_entries(), 3);
        let enc = Message::SynthLogits(m.clone()).encode_with(WireCodec::Adaptive);
        let Message::SynthLogits(back) = Message::decode(enc).unwrap() else {
            panic!("variant must survive");
        };
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.data), bits(&m.data));
    }

    #[test]
    fn sparse_decoder_rejects_non_canonical_bodies() {
        let mut buf = BytesMut::with_capacity(64);
        // tag GenSlice, sparse 1×4 with out-of-range index 9.
        buf.put_u8(2);
        buf.put_u8(MATRIX_FORMAT_SPARSE);
        buf.put_u32_le(1);
        buf.put_u32_le(4);
        buf.put_u32_le(1);
        buf.put_u32_le(9);
        buf.put_f32_le(1.0);
        assert!(Message::decode(buf.freeze()).is_err());
        // Non-increasing indices.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(2);
        buf.put_u8(MATRIX_FORMAT_SPARSE);
        buf.put_u32_le(1);
        buf.put_u32_le(4);
        buf.put_u32_le(2);
        buf.put_u32_le(1);
        buf.put_f32_le(1.0);
        buf.put_u32_le(1);
        buf.put_f32_le(2.0);
        assert!(Message::decode(buf.freeze()).is_err());
        // An explicitly-stored +0.0 belongs to the implicit fill.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(2);
        buf.put_u8(MATRIX_FORMAT_SPARSE);
        buf.put_u32_le(1);
        buf.put_u32_le(4);
        buf.put_u32_le(1);
        buf.put_u32_le(0);
        buf.put_f32_le(0.0);
        assert!(Message::decode(buf.freeze()).is_err());
        // Unknown format byte.
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(2);
        buf.put_u8(7);
        buf.put_u32_le(1);
        buf.put_u32_le(1);
        buf.put_f32_le(1.0);
        assert!(Message::decode(buf.freeze()).is_err());
    }

    #[test]
    fn kind_names_every_variant() {
        assert_eq!(Message::RoundStart { round: 0, selected: 0 }.kind(), "RoundStart");
        assert_eq!(Message::GenSlice(demo_matrix()).kind(), "GenSlice");
        assert_eq!(Message::ShuffleSeedShare { share: 0 }.kind(), "ShuffleSeedShare");
    }
}
