//! Wire format for every message exchanged in the GTV protocol.
//!
//! Messages are hand-encoded with [`bytes`] (length-prefixed matrices,
//! little-endian scalars) so the transport layer can meter *exactly* how
//! many bytes each protocol step moves — the paper's communication-overhead
//! discussion (§4.3.1) is reproduced from these counters.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A dense f32 matrix payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixPayload {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// Row-major values (`rows * cols` entries).
    pub data: Vec<f32>,
}

impl MatrixPayload {
    /// Creates a payload, validating the buffer length.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn new(rows: u32, cols: u32, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), (rows * cols) as usize, "payload shape mismatch");
        Self { rows, cols, data }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + self.data.len() * 4
    }
}

/// Error from decoding a malformed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeMessageError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DecodeMessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "message decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeMessageError {}

fn err(msg: &str) -> DecodeMessageError {
    DecodeMessageError { message: msg.into() }
}

/// Every message type of the GTV protocol (Algorithm 1 plus publication).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → all clients: a round starts; `selected` constructs the CV.
    RoundStart {
        /// Training round number.
        round: u64,
        /// Index of the CV-constructing client `p`.
        selected: u32,
    },
    /// Selected client → server: its CV block and the matching row indices
    /// `idx_p`.
    CondUpload {
        /// One-hot conditions within the client's CV block.
        cv: MatrixPayload,
        /// Matching real-row indices.
        indices: Vec<u32>,
    },
    /// Server → client `i`: the client's slice of `G^t`'s output.
    GenSlice(MatrixPayload),
    /// Client → server: `D_i^b(G_i^b(·))` logits for the synthetic path.
    SynthLogits(MatrixPayload),
    /// Client → server: `D_i^b(T_i)` logits for the real path.
    RealLogits(MatrixPayload),
    /// Server → client: gradient w.r.t. the client's uploaded logits.
    GradLogits(MatrixPayload),
    /// Server → client: gradient w.r.t. the `G^t` slice the client received.
    GradGenSlice(MatrixPayload),
    /// Client → public bulletin: its (shuffled) synthetic share.
    SyntheticShare(MatrixPayload),
    /// Client ↔ client: contribution to the shared shuffle seed (never
    /// routed through the server).
    ShuffleSeedShare {
        /// The client's random contribution.
        share: u64,
    },
    /// Client → client: the selected data indices, in the *alternative*
    /// peer-to-peer design of §3.1.6 (the paper rejects it because curious
    /// clients can mine the index stream; implemented here to reproduce
    /// that analysis).
    IndexShare {
        /// The selected row indices `idx_p`.
        indices: Vec<u32>,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::RoundStart { .. } => 0,
            Message::CondUpload { .. } => 1,
            Message::GenSlice(_) => 2,
            Message::SynthLogits(_) => 3,
            Message::RealLogits(_) => 4,
            Message::GradLogits(_) => 5,
            Message::GradGenSlice(_) => 6,
            Message::SyntheticShare(_) => 7,
            Message::ShuffleSeedShare { .. } => 8,
            Message::IndexShare { .. } => 9,
        }
    }

    /// Encodes to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(self.tag());
        match self {
            Message::RoundStart { round, selected } => {
                buf.put_u64_le(*round);
                buf.put_u32_le(*selected);
            }
            Message::CondUpload { cv, indices } => {
                put_matrix(&mut buf, cv);
                debug_assert!(indices.len() <= u32::MAX as usize, "index count exceeds wire width");
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
            }
            Message::GenSlice(m)
            | Message::SynthLogits(m)
            | Message::RealLogits(m)
            | Message::GradLogits(m)
            | Message::GradGenSlice(m)
            | Message::SyntheticShare(m) => put_matrix(&mut buf, m),
            Message::ShuffleSeedShare { share } => buf.put_u64_le(*share),
            Message::IndexShare { indices } => {
                debug_assert!(indices.len() <= u32::MAX as usize, "index count exceeds wire width");
                buf.put_u32_le(indices.len() as u32);
                for &i in indices {
                    buf.put_u32_le(i);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMessageError`] on truncated or malformed input.
    pub fn decode(mut bytes: Bytes) -> Result<Self, DecodeMessageError> {
        if bytes.remaining() < 1 {
            return Err(err("empty message"));
        }
        let tag = bytes.get_u8();
        let msg = match tag {
            0 => {
                if bytes.remaining() < 12 {
                    return Err(err("truncated RoundStart"));
                }
                Message::RoundStart { round: bytes.get_u64_le(), selected: bytes.get_u32_le() }
            }
            1 => {
                let cv = get_matrix(&mut bytes)?;
                if bytes.remaining() < 4 {
                    return Err(err("truncated index count"));
                }
                let n = bytes.get_u32_le() as usize;
                if bytes.remaining() < n * 4 {
                    return Err(err("truncated indices"));
                }
                let indices = (0..n).map(|_| bytes.get_u32_le()).collect();
                Message::CondUpload { cv, indices }
            }
            2 => Message::GenSlice(get_matrix(&mut bytes)?),
            3 => Message::SynthLogits(get_matrix(&mut bytes)?),
            4 => Message::RealLogits(get_matrix(&mut bytes)?),
            5 => Message::GradLogits(get_matrix(&mut bytes)?),
            6 => Message::GradGenSlice(get_matrix(&mut bytes)?),
            7 => Message::SyntheticShare(get_matrix(&mut bytes)?),
            8 => {
                if bytes.remaining() < 8 {
                    return Err(err("truncated ShuffleSeedShare"));
                }
                Message::ShuffleSeedShare { share: bytes.get_u64_le() }
            }
            9 => {
                if bytes.remaining() < 4 {
                    return Err(err("truncated index count"));
                }
                let n = bytes.get_u32_le() as usize;
                if bytes.remaining() < n * 4 {
                    return Err(err("truncated indices"));
                }
                Message::IndexShare { indices: (0..n).map(|_| bytes.get_u32_le()).collect() }
            }
            t => return Err(err(&format!("unknown message tag {t}"))),
        };
        if bytes.has_remaining() {
            return Err(err("trailing bytes after message"));
        }
        Ok(msg)
    }
}

fn put_matrix(buf: &mut BytesMut, m: &MatrixPayload) {
    buf.put_u32_le(m.rows);
    buf.put_u32_le(m.cols);
    // Bulk body write: serialize every value into one scratch buffer and
    // append it with a single `put_slice` instead of one reservation check
    // per element. The wire format stays explicitly little-endian
    // (`to_le_bytes`), so the encoding is identical on any host.
    let mut body = vec![0u8; m.data.len() * 4];
    for (chunk, &v) in body.chunks_exact_mut(4).zip(&m.data) {
        chunk.copy_from_slice(&v.to_le_bytes());
    }
    buf.put_slice(&body);
}

fn get_matrix(bytes: &mut Bytes) -> Result<MatrixPayload, DecodeMessageError> {
    if bytes.remaining() < 8 {
        return Err(err("truncated matrix header"));
    }
    let rows = bytes.get_u32_le();
    let cols = bytes.get_u32_le();
    let n = rows.checked_mul(cols).ok_or_else(|| err("matrix dimensions overflow"))? as usize;
    if bytes.remaining() < n * 4 {
        return Err(err("truncated matrix body"));
    }
    // Bulk body read: parse the contiguous little-endian body in one pass
    // over the underlying slice, then advance the cursor once.
    let mut data = Vec::with_capacity(n);
    data.extend(bytes.chunk()[..n * 4].chunks_exact(4).map(|c| {
        // gtv-lint: allow(panic) -- chunks_exact(4) yields exactly 4 bytes
        f32::from_le_bytes(c.try_into().expect("4-byte chunk"))
    }));
    bytes.advance(n * 4);
    Ok(MatrixPayload { rows, cols, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_matrix() -> MatrixPayload {
        MatrixPayload::new(2, 3, vec![1.0, -2.0, 3.5, 0.0, 7.25, -0.5])
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            Message::RoundStart { round: 42, selected: 1 },
            Message::CondUpload { cv: demo_matrix(), indices: vec![3, 1, 4] },
            Message::GenSlice(demo_matrix()),
            Message::SynthLogits(demo_matrix()),
            Message::RealLogits(demo_matrix()),
            Message::GradLogits(demo_matrix()),
            Message::GradGenSlice(demo_matrix()),
            Message::SyntheticShare(demo_matrix()),
            Message::ShuffleSeedShare { share: 0xdead_beef },
            Message::IndexShare { indices: vec![9, 8, 7] },
        ];
        for m in msgs {
            let enc = m.encode();
            let dec = Message::decode(enc).unwrap();
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn rejects_truncated_and_garbage() {
        assert!(Message::decode(Bytes::new()).is_err());
        assert!(Message::decode(Bytes::from_static(&[99])).is_err());
        let enc = Message::GenSlice(demo_matrix()).encode();
        let truncated = enc.slice(0..enc.len() - 3);
        assert!(Message::decode(truncated).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut enc = Message::ShuffleSeedShare { share: 1 }.encode().to_vec();
        enc.push(0);
        assert!(Message::decode(Bytes::from(enc)).is_err());
    }

    #[test]
    fn encoded_len_matches() {
        let m = demo_matrix();
        assert_eq!(m.encoded_len(), 8 + 6 * 4);
        let enc = Message::GenSlice(m).encode();
        assert_eq!(enc.len(), 1 + 8 + 24);
    }
}
