//! Column-partition plans and the ratio vector `P_r`.
//!
//! The paper evaluates three ways of distributing columns over clients:
//! random/even splits (§4.3.1, §4.3.3) and importance-sorted `1090` /
//! `5050` / `9010` splits (§4.3.2) where one client holds the most important
//! features and the *other* client holds the target column. `P_r` — each
//! client's share of the total feature count — drives both CV-constructor
//! selection and the proportional splitting of block output widths.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// How to distribute table columns over clients.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionPlan {
    /// Columns dealt round-robin over `n` clients in original order (the
    /// paper's "evenly split, column order preserved").
    Even {
        /// Number of clients.
        n_clients: usize,
    },
    /// Columns shuffled with `seed`, then dealt evenly over `n` clients
    /// (§4.3.3's "randomly and evenly distribute").
    RandomEven {
        /// Number of clients.
        n_clients: usize,
        /// Shuffle seed.
        seed: u64,
    },
    /// Two clients: the `important_frac` most important features on client
    /// 0, everything else (plus the target) on client 1. `1090` is
    /// `important_frac = 0.1`, `9010` is `0.9`.
    ByImportance {
        /// Fraction of features (by importance rank) given to client 0.
        important_frac: f64,
    },
    /// Explicit column groups.
    Explicit(Vec<Vec<usize>>),
}

/// Why a [`PartitionPlan`] cannot be materialized against a given table
/// shape. Partition specs arrive from configuration (and, in distributed
/// deployments, from remote parties), so every rejected combination is a
/// typed error rather than a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `n_clients` is zero or exceeds the column count.
    InvalidClientCount {
        /// Requested client count.
        n_clients: usize,
        /// Available columns.
        n_cols: usize,
    },
    /// `ByImportance` needs a target column and none was supplied.
    MissingTarget,
    /// `ByImportance` needs an importance ranking and none was supplied.
    MissingRanking,
    /// The importance ranking does not list every feature column exactly.
    RankingMismatch {
        /// Entries in the supplied ranking.
        ranking_len: usize,
        /// Feature columns the ranking must cover.
        n_features: usize,
    },
    /// `ByImportance` needs at least two feature columns (one per client).
    TooFewFeatures {
        /// Feature columns available.
        n_features: usize,
    },
    /// An explicit group references a column outside `0..n_cols`.
    ColumnOutOfRange {
        /// The offending column index.
        col: usize,
        /// Available columns.
        n_cols: usize,
    },
    /// An explicit group lists a column already claimed by another group.
    DuplicateColumn {
        /// The column that appears twice.
        col: usize,
    },
    /// Explicit groups leave some column unassigned.
    UncoveredColumn {
        /// The first column no group claims.
        col: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidClientCount { n_clients, n_cols } => {
                write!(f, "invalid client count {n_clients} for {n_cols} columns")
            }
            PartitionError::MissingTarget => {
                write!(f, "ByImportance requires a target column")
            }
            PartitionError::MissingRanking => {
                write!(f, "ByImportance requires an importance ranking")
            }
            PartitionError::RankingMismatch { ranking_len, n_features } => write!(
                f,
                "importance ranking lists {ranking_len} columns but there are {n_features} features"
            ),
            PartitionError::TooFewFeatures { n_features } => {
                write!(f, "ByImportance needs at least two feature columns, got {n_features}")
            }
            PartitionError::ColumnOutOfRange { col, n_cols } => {
                write!(f, "column {col} out of range for {n_cols} columns")
            }
            PartitionError::DuplicateColumn { col } => {
                write!(f, "column {col} appears in two groups")
            }
            PartitionError::UncoveredColumn { col } => {
                write!(f, "column {col} is not covered by any group")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl PartitionPlan {
    /// Materializes the plan into per-client column groups.
    ///
    /// `n_cols` counts all table columns including the target.
    /// `target` is the target column index (if any); `ByImportance` requires
    /// it. `importance_ranking` lists *feature* columns most-important-first
    /// and is required by `ByImportance`.
    ///
    /// # Errors
    ///
    /// A [`PartitionError`] describing the invalid combination: zero or
    /// oversubscribed client counts, a missing target/ranking for
    /// `ByImportance`, a ranking that doesn't cover the features, or
    /// explicit groups that fail to partition `0..n_cols`.
    pub fn column_groups(
        &self,
        n_cols: usize,
        target: Option<usize>,
        importance_ranking: Option<&[usize]>,
    ) -> Result<Vec<Vec<usize>>, PartitionError> {
        match self {
            PartitionPlan::Even { n_clients } => {
                if *n_clients == 0 || *n_clients > n_cols {
                    return Err(PartitionError::InvalidClientCount {
                        n_clients: *n_clients,
                        n_cols,
                    });
                }
                let mut groups = vec![Vec::new(); *n_clients];
                // Contiguous blocks, preserving download order (paper §4.3.1).
                let base = n_cols / n_clients;
                let extra = n_cols % n_clients;
                let mut cursor = 0;
                for (g, group) in groups.iter_mut().enumerate() {
                    let size = base + usize::from(g < extra);
                    group.extend(cursor..cursor + size);
                    cursor += size;
                }
                Ok(groups)
            }
            PartitionPlan::RandomEven { n_clients, seed } => {
                if *n_clients == 0 || *n_clients > n_cols {
                    return Err(PartitionError::InvalidClientCount {
                        n_clients: *n_clients,
                        n_cols,
                    });
                }
                let mut cols: Vec<usize> = (0..n_cols).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                cols.shuffle(&mut rng);
                let mut groups = vec![Vec::new(); *n_clients];
                for (i, c) in cols.into_iter().enumerate() {
                    groups[i % n_clients].push(c);
                }
                for g in &mut groups {
                    g.sort_unstable();
                }
                Ok(groups)
            }
            PartitionPlan::ByImportance { important_frac } => {
                let target = target.ok_or(PartitionError::MissingTarget)?;
                let ranking = importance_ranking.ok_or(PartitionError::MissingRanking)?;
                let n_features = n_cols.saturating_sub(1);
                if n_features < 2 {
                    return Err(PartitionError::TooFewFeatures { n_features });
                }
                if ranking.len() != n_features {
                    return Err(PartitionError::RankingMismatch {
                        ranking_len: ranking.len(),
                        n_features,
                    });
                }
                let k = ((n_features as f64) * important_frac)
                    .round()
                    .clamp(1.0, (n_features - 1) as f64) as usize;
                let mut top: Vec<usize> = ranking[..k].to_vec();
                let mut rest: Vec<usize> = ranking[k..].to_vec();
                // Target lives with the *less* important features (paper:
                // "the target column is always located on the client WITHOUT
                // the most important features").
                rest.push(target);
                top.sort_unstable();
                rest.sort_unstable();
                Ok(vec![top, rest])
            }
            PartitionPlan::Explicit(groups) => {
                let mut seen = vec![false; n_cols];
                for g in groups {
                    for &c in g {
                        if c >= n_cols {
                            return Err(PartitionError::ColumnOutOfRange { col: c, n_cols });
                        }
                        if seen[c] {
                            return Err(PartitionError::DuplicateColumn { col: c });
                        }
                        seen[c] = true;
                    }
                }
                if let Some(col) = seen.iter().position(|&s| !s) {
                    return Err(PartitionError::UncoveredColumn { col });
                }
                Ok(groups.clone())
            }
        }
    }
}

/// The ratio vector `P_r`: each client's share of the total column count.
///
/// # Panics
///
/// Panics if `groups` is empty or all groups are empty.
pub fn ratio_vector(groups: &[Vec<usize>]) -> Vec<f64> {
    let total: usize = groups.iter().map(Vec::len).sum();
    assert!(total > 0, "groups must contain columns");
    groups.iter().map(|g| g.len() as f64 / total as f64).collect()
}

/// Splits a total width into per-client widths proportional to `ratios`,
/// guaranteeing `sum == total` and every part ≥ 1.
///
/// # Panics
///
/// Panics if `total < ratios.len()` or `ratios` is empty.
pub fn split_widths(total: usize, ratios: &[f64]) -> Vec<usize> {
    assert!(!ratios.is_empty(), "ratios must be non-empty");
    assert!(total >= ratios.len(), "total width {total} too small for {} parts", ratios.len());
    let mut widths: Vec<usize> =
        ratios.iter().map(|r| ((total as f64) * r).floor().max(1.0) as usize).collect();
    // Fix rounding drift while keeping proportionality.
    let mut diff = total as isize - widths.iter().sum::<usize>() as isize;
    let mut order: Vec<usize> = (0..ratios.len()).collect();
    order.sort_by(|&a, &b| ratios[b].total_cmp(&ratios[a]));
    let mut i = 0;
    while diff != 0 {
        let idx = order[i % order.len()];
        if diff > 0 {
            widths[idx] += 1;
            diff -= 1;
        } else if widths[idx] > 1 {
            widths[idx] -= 1;
            diff += 1;
        }
        i += 1;
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_contiguous() {
        let groups = PartitionPlan::Even { n_clients: 2 }.column_groups(5, None, None).unwrap();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn random_even_is_a_partition() {
        let groups = PartitionPlan::RandomEven { n_clients: 3, seed: 1 }
            .column_groups(10, None, None)
            .unwrap();
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(
            groups.iter().map(Vec::len).max().unwrap() - groups.iter().map(Vec::len).min().unwrap(),
            1
        );
    }

    #[test]
    fn by_importance_places_target_with_less_important() {
        // 10 columns; target is 9; ranking over features 0..9.
        let ranking: Vec<usize> = vec![4, 2, 7, 0, 1, 3, 5, 6, 8];
        let groups = PartitionPlan::ByImportance { important_frac: 0.1 }
            .column_groups(10, Some(9), Some(&ranking))
            .unwrap();
        assert_eq!(groups[0], vec![4]); // top 10% (1 of 9 features)
        assert!(groups[1].contains(&9), "target must sit on the other client");
        assert_eq!(groups[0].len() + groups[1].len(), 10);
    }

    #[test]
    fn by_importance_9010() {
        let ranking: Vec<usize> = (0..9).collect();
        let groups = PartitionPlan::ByImportance { important_frac: 0.9 }
            .column_groups(10, Some(9), Some(&ranking))
            .unwrap();
        assert_eq!(groups[0].len(), 8); // 90% of 9 ≈ 8 (clamped below n-1)
        assert!(groups[1].contains(&9));
    }

    #[test]
    fn ratio_vector_sums_to_one() {
        let r = ratio_vector(&[vec![0, 1, 2], vec![3]]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((r[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn split_widths_exact_and_positive() {
        let w = split_widths(256, &[0.75, 0.25]);
        assert_eq!(w.iter().sum::<usize>(), 256);
        assert_eq!(w, vec![192, 64]);
        let w = split_widths(7, &[0.5, 0.3, 0.2]);
        assert_eq!(w.iter().sum::<usize>(), 7);
        assert!(w.iter().all(|&x| x >= 1));
        // Tiny ratios still get at least one unit.
        let w = split_widths(10, &[0.98, 0.01, 0.01]);
        assert_eq!(w.iter().sum::<usize>(), 10);
        assert!(w[1] >= 1 && w[2] >= 1);
    }

    #[test]
    fn zero_clients_is_rejected() {
        let err = PartitionPlan::Even { n_clients: 0 }.column_groups(5, None, None).unwrap_err();
        assert_eq!(err, PartitionError::InvalidClientCount { n_clients: 0, n_cols: 5 });
    }

    #[test]
    fn more_clients_than_columns_is_rejected() {
        let err = PartitionPlan::RandomEven { n_clients: 7, seed: 0 }
            .column_groups(3, None, None)
            .unwrap_err();
        assert_eq!(err, PartitionError::InvalidClientCount { n_clients: 7, n_cols: 3 });
    }

    #[test]
    fn by_importance_without_target_or_ranking_is_rejected() {
        let plan = PartitionPlan::ByImportance { important_frac: 0.5 };
        assert_eq!(plan.column_groups(10, None, None).unwrap_err(), PartitionError::MissingTarget);
        assert_eq!(
            plan.column_groups(10, Some(9), None).unwrap_err(),
            PartitionError::MissingRanking
        );
    }

    #[test]
    fn by_importance_ranking_mismatch_is_rejected() {
        let short: Vec<usize> = (0..4).collect();
        let err = PartitionPlan::ByImportance { important_frac: 0.5 }
            .column_groups(10, Some(9), Some(&short))
            .unwrap_err();
        assert_eq!(err, PartitionError::RankingMismatch { ranking_len: 4, n_features: 9 });
    }

    #[test]
    fn by_importance_needs_two_features() {
        // n_cols = 0 must not underflow; n_cols = 2 has one feature — both
        // too small to split across two clients.
        let plan = PartitionPlan::ByImportance { important_frac: 0.5 };
        assert_eq!(
            plan.column_groups(0, Some(0), Some(&[])).unwrap_err(),
            PartitionError::TooFewFeatures { n_features: 0 }
        );
        assert_eq!(
            plan.column_groups(2, Some(1), Some(&[0])).unwrap_err(),
            PartitionError::TooFewFeatures { n_features: 1 }
        );
    }

    #[test]
    fn explicit_must_cover() {
        let err = PartitionPlan::Explicit(vec![vec![0]]).column_groups(2, None, None).unwrap_err();
        assert_eq!(err, PartitionError::UncoveredColumn { col: 1 });
    }

    #[test]
    fn explicit_rejects_out_of_range_and_duplicates() {
        let err = PartitionPlan::Explicit(vec![vec![0, 5], vec![1]])
            .column_groups(3, None, None)
            .unwrap_err();
        assert_eq!(err, PartitionError::ColumnOutOfRange { col: 5, n_cols: 3 });
        let err = PartitionPlan::Explicit(vec![vec![0, 1], vec![1, 2]])
            .column_groups(3, None, None)
            .unwrap_err();
        assert_eq!(err, PartitionError::DuplicateColumn { col: 1 });
    }

    #[test]
    fn partition_error_displays_are_diagnosable() {
        let e = PartitionError::InvalidClientCount { n_clients: 0, n_cols: 5 };
        assert!(e.to_string().contains("client count 0"));
        let e = PartitionError::RankingMismatch { ranking_len: 4, n_features: 9 };
        assert!(e.to_string().contains('4') && e.to_string().contains('9'));
    }
}
