//! # gtv-vfl
//!
//! The vertical-federated-learning substrate GTV runs on:
//!
//! * [`wire`](crate::Message) — a byte-exact encoding of every protocol
//!   message, so communication volume is measured from real serialization;
//! * [`Transport`] — the backend-agnostic transport seam, with two
//!   implementations: [`InProcTransport`] (alias [`Network`]) over channels
//!   with per-link byte metering, and [`SocketTransport`] speaking
//!   length-delimited wire-v2 frames over TCP / Unix-domain sockets to
//!   per-party [`PartyNode`] daemons;
//! * [`psi_align`] — hashed private-set-intersection row alignment;
//! * [`negotiate_seed`] / [`SharedShuffler`] — the peer-to-peer shuffle-seed
//!   agreement behind *training-with-shuffling* (the server never observes
//!   the seed);
//! * [`PartitionPlan`] / [`ratio_vector`] / [`split_widths`] — column
//!   distribution across clients and the proportional width splitting of
//!   network blocks.
//!
//! # Examples
//!
//! ```
//! use gtv_vfl::{negotiate_seed, Network, SharedShuffler, Transport};
//!
//! let net = Network::new(2);
//! let seeds = negotiate_seed(&net, 2, 42).expect("transport is healthy");
//! assert_eq!(seeds[0], seeds[1]);
//! let shuffler = SharedShuffler::new(seeds[0]);
//! let p = shuffler.permutation(10, 0);
//! assert_eq!(p.len(), 10);
//! // The server saw none of the seed traffic.
//! assert_eq!(net.stats().server_bytes(), 0);
//! ```

mod partition;
mod psi;
mod shuffle;
pub mod socket;
mod transport;
mod wire;

pub use partition::{ratio_vector, split_widths, PartitionError, PartitionPlan};
pub use psi::{psi_align, PsiAlignment};
pub use shuffle::{negotiate_seed, round_seed, SharedShuffler};
pub use socket::{Endpoint, PartyNode, SocketTransport};
pub use transport::{
    Fault, InProcTransport, NetStats, Network, PartyId, RoundStats, Transport, TransportError,
};
pub use wire::{DecodeMessageError, MatrixPayload, Message, WireCodec};
