//! # gtv-vfl
//!
//! The vertical-federated-learning substrate GTV runs on:
//!
//! * [`wire`](crate::Message) — a byte-exact encoding of every protocol
//!   message, so communication volume is measured from real serialization;
//! * [`Network`] — in-process transport with per-link byte metering and
//!   party inboxes (server, clients, public board);
//! * [`psi_align`] — hashed private-set-intersection row alignment;
//! * [`negotiate_seed`] / [`SharedShuffler`] — the peer-to-peer shuffle-seed
//!   agreement behind *training-with-shuffling* (the server never observes
//!   the seed);
//! * [`PartitionPlan`] / [`ratio_vector`] / [`split_widths`] — column
//!   distribution across clients and the proportional width splitting of
//!   network blocks.
//!
//! # Examples
//!
//! ```
//! use gtv_vfl::{negotiate_seed, Network, SharedShuffler};
//!
//! let net = Network::new(2);
//! let seeds = negotiate_seed(&net, 2, 42).expect("transport is healthy");
//! assert_eq!(seeds[0], seeds[1]);
//! let shuffler = SharedShuffler::new(seeds[0]);
//! let p = shuffler.permutation(10, 0);
//! assert_eq!(p.len(), 10);
//! // The server saw none of the seed traffic.
//! assert_eq!(net.stats().server_bytes(), 0);
//! ```

mod partition;
mod psi;
mod shuffle;
mod transport;
mod wire;

pub use partition::{ratio_vector, split_widths, PartitionPlan};
pub use psi::{psi_align, PsiAlignment};
pub use shuffle::{negotiate_seed, round_seed, SharedShuffler};
pub use transport::{Fault, NetStats, Network, PartyId, RoundStats, TransportError};
pub use wire::{DecodeMessageError, MatrixPayload, Message, WireCodec};
