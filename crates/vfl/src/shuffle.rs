//! Shared-seed shuffle negotiation and per-round permutation derivation —
//! the substrate of the paper's *training-with-shuffling* (§3.1.5).
//!
//! Clients agree on a base seed by XOR-combining random contributions
//! exchanged peer-to-peer (the server never sees the shares, matching the
//! paper's requirement that the shuffle function is isolated from the
//! server). Each round's permutation is derived from `(base_seed, round)`,
//! so all clients apply the identical permutation and stay row-aligned.

use crate::transport::{PartyId, Transport, TransportError};
use crate::wire::Message;
use gtv_data::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Negotiates a shared shuffle seed among `n_clients` via the network.
///
/// Each client draws a random share and sends it to every *other client*
/// (never to the server); every client XORs all shares into the same base
/// seed. Returns the per-client agreed seeds (all equal).
///
/// # Errors
///
/// Returns any [`TransportError`] from the underlying sends/receives, and
/// [`TransportError::UnexpectedMessage`] if anything other than a
/// peer-to-peer [`Message::ShuffleSeedShare`] arrives mid-negotiation.
///
/// # Panics
///
/// Panics if `n_clients == 0`.
pub fn negotiate_seed<T: Transport>(
    net: &T,
    n_clients: usize,
    rng_seed: u64,
) -> Result<Vec<u64>, TransportError> {
    assert!(n_clients > 0, "need at least one client");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let shares: Vec<u64> = (0..n_clients).map(|_| rng.gen()).collect();
    // Broadcast each share to the other clients, peer to peer.
    for (i, &share) in shares.iter().enumerate() {
        for j in 0..n_clients {
            if i != j {
                net.send(
                    PartyId::Client(i),
                    PartyId::Client(j),
                    Message::ShuffleSeedShare { share },
                )?;
            }
        }
    }
    // Every client combines its own share with everything it received.
    (0..n_clients)
        .map(|j| {
            let mut seed = shares[j];
            for _ in 0..n_clients - 1 {
                let (from, msg) = net.recv(PartyId::Client(j))?;
                match (from, msg) {
                    (PartyId::Client(_), Message::ShuffleSeedShare { share }) => seed ^= share,
                    (from, got) => {
                        return Err(TransportError::UnexpectedMessage {
                            from,
                            context: "shuffle-seed negotiation",
                            got,
                        })
                    }
                }
            }
            Ok(seed)
        })
        .collect()
}

/// Derives the round-`r` permutation seed from the negotiated base seed.
pub fn round_seed(base_seed: u64, round: u64) -> u64 {
    // SplitMix64-style mix; all clients compute the same value.
    let mut z = base_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-client shuffler used at the end of every training round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedShuffler {
    base_seed: u64,
}

impl SharedShuffler {
    /// Creates a shuffler from the negotiated base seed.
    pub fn new(base_seed: u64) -> Self {
        Self { base_seed }
    }

    /// The permutation every client applies at the end of round `round`.
    pub fn permutation(&self, n_rows: usize, round: u64) -> Vec<usize> {
        Table::shuffle_permutation(n_rows, round_seed(self.base_seed, round))
    }

    /// Shuffles a table for the given round.
    pub fn shuffle(&self, table: &Table, round: u64) -> Table {
        table.select_rows(&self.permutation(table.n_rows(), round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Network;
    use gtv_data::Dataset;

    #[test]
    fn negotiation_yields_identical_seeds() {
        let net = Network::new(3);
        let seeds = negotiate_seed(&net, 3, 42).unwrap();
        assert_eq!(seeds[0], seeds[1]);
        assert_eq!(seeds[1], seeds[2]);
    }

    #[test]
    fn negotiation_never_contacts_server() {
        let net = Network::new(3);
        let _ = negotiate_seed(&net, 3, 1).unwrap();
        let stats = net.stats();
        assert_eq!(stats.server_bytes(), 0, "server must not observe seed shares");
        assert!(net.try_recv(PartyId::Server).is_err());
    }

    #[test]
    fn negotiation_rejects_foreign_messages() {
        let net = Network::new(2);
        // A stray server message sits in client 0's inbox before the
        // negotiation starts; the protocol must refuse to treat it as a
        // seed share.
        net.send(
            PartyId::Server,
            PartyId::Client(0),
            Message::RoundStart { round: 1, selected: 0 },
        )
        .unwrap();
        let err = negotiate_seed(&net, 2, 5).unwrap_err();
        assert!(
            matches!(err, TransportError::UnexpectedMessage { from: PartyId::Server, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn per_round_permutations_differ_but_are_shared() {
        let s = SharedShuffler::new(123);
        let p1 = s.permutation(50, 1);
        let p2 = s.permutation(50, 2);
        assert_ne!(p1, p2);
        assert_eq!(p1, SharedShuffler::new(123).permutation(50, 1));
    }

    #[test]
    fn shuffle_keeps_vertical_shards_aligned() {
        let t = Dataset::Loan.generate(100, 0);
        let n = t.n_cols();
        let shards = t.vertical_split(&[(0..6).collect(), (6..n).collect()]);
        let sh = SharedShuffler::new(7);
        let a = sh.shuffle(&shards[0], 3);
        let b = sh.shuffle(&shards[1], 3);
        let joined = gtv_data::Table::hconcat(&[&a, &b]);
        let direct = sh.shuffle(&t, 3);
        assert_eq!(joined, direct);
    }
}
