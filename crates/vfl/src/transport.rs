//! Party-to-party message transport with per-link byte accounting.
//!
//! The [`Transport`] trait is the seam between the GTV protocol and the
//! medium carrying it: every protocol exchange is *actually encoded to
//! bytes*, metered, decoded and delivered to the recipient's inbox, so
//! communication-overhead numbers come from the same code path as the
//! training itself. Two backends implement it:
//!
//! * [`InProcTransport`] (aliased as [`Network`]) — crossbeam-channel
//!   inboxes, usable both from a single-threaded orchestrator and from
//!   parties running on their own threads;
//! * [`SocketTransport`](crate::SocketTransport) — length-delimited wire
//!   frames over TCP or Unix-domain sockets, for parties running as their
//!   own OS processes.
//!
//! Byte accounting is identical across backends: both meter the encoded
//! message body only (framing overhead is a property of the medium, not the
//! protocol), through the same [`Meter`] bookkeeping.

use crate::wire::{DecodeMessageError, Message, WireCodec};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A transport-layer failure.
///
/// Protocol paths never panic on network conditions: every fallible
/// transport operation reports through this enum so orchestrators can
/// surface, retry or abort on their own terms.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// A send targeted a party that has no inbox.
    UnknownRecipient(PartyId),
    /// A receive targeted a party that has no inbox.
    UnknownParty(PartyId),
    /// The recipient's inbox channel is disconnected.
    InboxClosed(PartyId),
    /// The inbox exists but holds no message.
    InboxEmpty(PartyId),
    /// A bounded-wait receive saw no message within its deadline.
    Timeout {
        /// Party whose inbox stayed empty.
        party: PartyId,
        /// How long the receive waited before giving up.
        waited: Duration,
        /// The round window open when the wait expired (the label of the
        /// last [`Transport::begin_round`] call), if any — so a hung party
        /// is diagnosable from the error alone.
        round: Option<u64>,
        /// The message variant the stalled protocol step was waiting for,
        /// if the receive came from `recv_expect`/`gather`.
        expecting: Option<&'static str>,
    },
    /// A message failed to round-trip through its wire encoding.
    Decode(DecodeMessageError),
    /// The link to a party closed mid-protocol: the peer process crashed,
    /// its socket hit EOF/reset, or a [`Fault::Disconnect`] was injected.
    PeerDisconnected {
        /// The party whose link died.
        party: PartyId,
    },
    /// Connection setup failed: the peer rejected our protocol/wire
    /// version, spoke garbage during the hello exchange, or never answered.
    HandshakeFailed {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// A malformed transport frame (socket backend): bad opcode, truncated
    /// body, or a length prefix exceeding the framing bound.
    Frame {
        /// What was wrong with the frame.
        detail: String,
    },
    /// A protocol step received a message it has no handler for.
    UnexpectedMessage {
        /// Sender of the offending message.
        from: PartyId,
        /// The protocol step that rejected it.
        context: &'static str,
        /// The message itself.
        got: Message,
    },
    /// A protocol step expected one message variant and received another —
    /// a desynchronized (or tampered-with) peer, never to be silently
    /// consumed as an ack.
    ProtocolViolation {
        /// Sender of the offending message.
        from: PartyId,
        /// The variant name the step expected ([`Message::kind`]).
        expected: &'static str,
        /// The message actually received.
        got: Message,
    },
}

impl TransportError {
    /// Annotates a [`TransportError::Timeout`] with the message variant the
    /// caller was waiting for; every other variant passes through unchanged.
    #[must_use]
    pub fn with_expecting(self, kind: &'static str) -> Self {
        match self {
            TransportError::Timeout { party, waited, round, .. } => {
                TransportError::Timeout { party, waited, round, expecting: Some(kind) }
            }
            other => other,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::UnknownRecipient(p) => write!(f, "unknown recipient {p}"),
            TransportError::UnknownParty(p) => write!(f, "unknown party {p}"),
            TransportError::InboxClosed(p) => write!(f, "inbox of {p} is closed"),
            TransportError::InboxEmpty(p) => write!(f, "inbox of {p} is empty"),
            TransportError::Timeout { party, waited, round, expecting } => {
                write!(f, "no message for {party} within {waited:?}")?;
                if let Some(r) = round {
                    write!(f, " during round {r}")?;
                }
                if let Some(kind) = expecting {
                    write!(f, " while expecting {kind}")?;
                }
                Ok(())
            }
            TransportError::Decode(e) => write!(f, "wire round-trip failed: {e}"),
            TransportError::PeerDisconnected { party } => {
                write!(f, "link to {party} is disconnected")
            }
            TransportError::HandshakeFailed { reason } => {
                write!(f, "transport handshake failed: {reason}")
            }
            TransportError::Frame { detail } => write!(f, "malformed transport frame: {detail}"),
            TransportError::UnexpectedMessage { from, context, got } => {
                write!(f, "unexpected message from {from} during {context}: {got:?}")
            }
            TransportError::ProtocolViolation { from, expected, got } => {
                write!(f, "protocol violation: expected {expected} from {from}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeMessageError> for TransportError {
    fn from(e: DecodeMessageError) -> Self {
        TransportError::Decode(e)
    }
}

/// A protocol participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartyId {
    /// The trusted third-party server.
    Server,
    /// Client `i`.
    Client(usize),
    /// The public bulletin board (synthetic-data publication).
    Public,
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartyId::Server => write!(f, "server"),
            PartyId::Client(i) => write!(f, "client{i}"),
            PartyId::Public => write!(f, "public"),
        }
    }
}

/// Traffic counters for one training round (see [`Transport::begin_round`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// The round label the orchestrator opened this window with.
    pub round: u64,
    /// Messages sent during the round.
    pub messages: u64,
    /// Bytes sent during the round.
    pub bytes: u64,
    /// Per-(from, to) message and byte counts during the round.
    pub per_link: HashMap<(PartyId, PartyId), (u64, u64)>,
}

impl RoundStats {
    /// Messages and bytes `party` sent during the round.
    pub fn sent_by(&self, party: PartyId) -> (u64, u64) {
        self.per_link
            .iter()
            .filter(|((f, _), _)| *f == party)
            .fold((0, 0), |(m, b), (_, &(dm, db))| (m + dm, b + db))
    }

    /// Messages and bytes `party` received during the round.
    pub fn received_by(&self, party: PartyId) -> (u64, u64) {
        self.per_link
            .iter()
            .filter(|((_, t), _)| *t == party)
            .fold((0, 0), |(m, b), (_, &(dm, db))| (m + dm, b + db))
    }
}

/// Cumulative traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total bytes sent.
    pub bytes: u64,
    /// Per-(from, to) message and byte counts.
    pub per_link: HashMap<(PartyId, PartyId), (u64, u64)>,
    /// Per-round breakdown: one entry per [`Transport::begin_round`] call,
    /// accumulating all traffic until the next call. Traffic before the
    /// first `begin_round` (e.g. seed negotiation) is counted only in the
    /// cumulative totals.
    pub rounds: Vec<RoundStats>,
}

impl NetStats {
    /// Bytes sent over one direction of a link.
    pub fn link_bytes(&self, from: PartyId, to: PartyId) -> u64 {
        self.per_link.get(&(from, to)).map_or(0, |&(_, b)| b)
    }

    /// Bytes that crossed the server boundary (either direction).
    pub fn server_bytes(&self) -> u64 {
        self.per_link
            .iter()
            .filter(|((f, t), _)| *f == PartyId::Server || *t == PartyId::Server)
            .map(|(_, &(_, b))| b)
            .sum()
    }
}

/// Shared metering/configuration state used by every [`Transport`] backend:
/// cumulative and per-round traffic counters, the wire codec in effect and
/// the bounded-receive deadline. Keeping this in one struct is what makes
/// the backend-equivalence argument mechanical — both backends account
/// bytes through the exact same code.
pub(crate) struct Meter {
    stats: Mutex<NetStats>,
    codec: Mutex<WireCodec>,
    recv_timeout: Mutex<Duration>,
}

impl fmt::Debug for Meter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats.lock();
        write!(f, "Meter({} msgs, {} bytes)", s.messages, s.bytes)
    }
}

impl Meter {
    pub(crate) fn new() -> Self {
        Self {
            stats: Mutex::new(NetStats::default()),
            codec: Mutex::new(WireCodec::Dense),
            recv_timeout: Mutex::new(DEFAULT_RECV_TIMEOUT),
        }
    }

    /// Accounts one `len`-byte message on the `(from, to)` link, in both the
    /// cumulative counters and the open round window (if any).
    pub(crate) fn record(&self, from: PartyId, to: PartyId, len: usize) {
        let mut stats = self.stats.lock();
        stats.messages += 1;
        stats.bytes += len as u64;
        let entry = stats.per_link.entry((from, to)).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += len as u64;
        if let Some(round) = stats.rounds.last_mut() {
            round.messages += 1;
            round.bytes += len as u64;
            let entry = round.per_link.entry((from, to)).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += len as u64;
        }
    }

    pub(crate) fn begin_round(&self, round: u64) {
        self.stats.lock().rounds.push(RoundStats { round, ..RoundStats::default() });
    }

    /// The label of the currently open round window, if any.
    pub(crate) fn current_round(&self) -> Option<u64> {
        self.stats.lock().rounds.last().map(|r| r.round)
    }

    pub(crate) fn stats(&self) -> NetStats {
        self.stats.lock().clone()
    }

    pub(crate) fn reset(&self) {
        *self.stats.lock() = NetStats::default();
    }

    pub(crate) fn codec(&self) -> WireCodec {
        *self.codec.lock()
    }

    pub(crate) fn set_codec(&self, codec: WireCodec) {
        *self.codec.lock() = codec;
    }

    pub(crate) fn recv_timeout_bound(&self) -> Duration {
        *self.recv_timeout.lock()
    }

    pub(crate) fn set_recv_timeout(&self, timeout: Duration) {
        *self.recv_timeout.lock() = timeout;
    }

    /// The [`TransportError::Timeout`] for a wait that expired now, stamped
    /// with the open round window.
    pub(crate) fn timeout_error(&self, party: PartyId, waited: Duration) -> TransportError {
        TransportError::Timeout { party, waited, round: self.current_round(), expecting: None }
    }
}

/// A fault to inject into the next matching send (test instrumentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Silently drop the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Close the link to the recipient: the triggering send fails with
    /// [`TransportError::PeerDisconnected`], and every later operation
    /// involving that party keeps failing the same way — modelling a peer
    /// process that crashed mid-round.
    Disconnect,
}

/// Default bound on how long [`Transport::recv`] waits for a message.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(1);

/// The message-transport seam between the GTV protocol and the medium
/// carrying it.
///
/// Implementations must meter every sent message through the same byte
/// accounting (the encoded body's length, nothing more), so [`NetStats`]
/// are comparable — and testably identical — across backends.
pub trait Transport {
    /// Encodes `msg`, meters it and delivers it to `to`'s inbox.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownRecipient`] if `to` has no inbox,
    /// [`TransportError::PeerDisconnected`] if the link to either end is
    /// closed, or [`TransportError::Decode`] if the message fails to
    /// round-trip through its own wire encoding.
    fn send(&self, from: PartyId, to: PartyId, msg: Message) -> Result<(), TransportError>;

    /// Pops the next message from `party`'s inbox without waiting.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::InboxEmpty`] if the inbox is empty or
    /// [`TransportError::UnknownParty`] if `party` has no inbox.
    fn try_recv(&self, party: PartyId) -> Result<(PartyId, Message), TransportError>;

    /// Pops the next message, waiting up to `timeout` for one to arrive.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Timeout`] (stamped with the open round
    /// window) if no message arrives in time, plus every backend-specific
    /// link failure.
    fn recv_timeout(
        &self,
        party: PartyId,
        timeout: Duration,
    ) -> Result<(PartyId, Message), TransportError>;

    /// The bound [`Transport::recv`] waits before reporting
    /// [`TransportError::Timeout`] (default [`DEFAULT_RECV_TIMEOUT`]).
    fn recv_timeout_bound(&self) -> Duration;

    /// Sets the bound [`Transport::recv`] waits before reporting
    /// [`TransportError::Timeout`].
    fn set_recv_timeout(&self, timeout: Duration);

    /// The wire codec in effect.
    fn codec(&self) -> WireCodec;

    /// Selects how matrix payloads are encoded on the wire (default
    /// [`WireCodec::Dense`]). Lossless either way — only byte counts change.
    fn set_codec(&self, codec: WireCodec);

    /// Opens a new per-round traffic window labelled `round`: all traffic
    /// until the next call accumulates into one [`RoundStats`] entry of
    /// [`NetStats::rounds`] (cumulative counters are unaffected).
    fn begin_round(&self, round: u64);

    /// Snapshot of the traffic counters.
    fn stats(&self) -> NetStats;

    /// Resets the traffic counters (e.g. between measurement phases).
    fn reset_stats(&self);

    /// Delivers one fan-out of pre-addressed messages, metered and delivered
    /// **in input order** — the wire trace is byte-identical to sending the
    /// same list through [`Transport::send`] one at a time (backends may
    /// parallelize the encoding, never the accounting order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Transport::send`]; delivery stops at the first
    /// failing message.
    fn send_all(&self, msgs: Vec<(PartyId, PartyId, Message)>) -> Result<(), TransportError> {
        for (from, to, msg) in msgs {
            self.send(from, to, msg)?;
        }
        Ok(())
    }

    /// Pops the next message, waiting up to the configured receive timeout
    /// for one to arrive.
    ///
    /// Unlike [`Transport::try_recv`] this tolerates a sender running on
    /// another thread/process that has not delivered *yet*; a genuinely
    /// dropped or mis-sequenced message still surfaces, as
    /// [`TransportError::Timeout`], once the bounded wait expires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Transport::recv_timeout`].
    fn recv(&self, party: PartyId) -> Result<(PartyId, Message), TransportError> {
        self.recv_timeout(party, self.recv_timeout_bound())
    }

    /// [`Transport::recv`], additionally checking the popped message is the
    /// `expected` variant ([`Message::kind`]).
    ///
    /// Protocol steps that consume a message they already know the shape of
    /// must use this instead of discarding a bare `recv` result: a
    /// desynchronized peer then surfaces as a
    /// [`TransportError::ProtocolViolation`] at the step that noticed,
    /// instead of silently corrupting a later phase.
    ///
    /// # Errors
    ///
    /// [`TransportError::ProtocolViolation`] on a variant mismatch, plus
    /// every [`Transport::recv`] condition (timeouts are annotated with the
    /// expected variant).
    fn recv_expect(
        &self,
        party: PartyId,
        expected: &'static str,
    ) -> Result<(PartyId, Message), TransportError> {
        let (from, msg) = self.recv(party).map_err(|e| e.with_expecting(expected))?;
        if msg.kind() != expected {
            return Err(TransportError::ProtocolViolation { from, expected, got: msg });
        }
        Ok((from, msg))
    }

    /// Fan-in: pops one `expected`-variant message from each of `senders`
    /// at `at`'s inbox and returns them **in `senders` order**, regardless
    /// of arrival order. This is what keeps the pipelined schedule
    /// observation-identical to lockstep: the server processes replies in
    /// fixed party order even if clients finished out of order.
    ///
    /// # Errors
    ///
    /// [`TransportError::UnexpectedMessage`] on a message from a party not
    /// in `senders` (or a duplicate), [`TransportError::ProtocolViolation`]
    /// on a variant mismatch, plus every [`Transport::recv`] condition
    /// (timeouts are annotated with the expected variant).
    fn gather(
        &self,
        at: PartyId,
        senders: &[PartyId],
        expected: &'static str,
    ) -> Result<Vec<Message>, TransportError> {
        let mut slots: Vec<Option<Message>> = vec![None; senders.len()];
        for _ in 0..senders.len() {
            let (from, msg) = self.recv(at).map_err(|e| e.with_expecting(expected))?;
            let Some(pos) = senders.iter().position(|&s| s == from) else {
                return Err(TransportError::UnexpectedMessage {
                    from,
                    context: "gather: sender not in the fan-in set",
                    got: msg,
                });
            };
            if slots[pos].is_some() {
                return Err(TransportError::UnexpectedMessage {
                    from,
                    context: "gather: duplicate sender",
                    got: msg,
                });
            }
            if msg.kind() != expected {
                return Err(TransportError::ProtocolViolation { from, expected, got: msg });
            }
            slots[pos] = Some(msg);
        }
        // n distinct senders filled n slots; collect() is total here.
        slots.into_iter().collect::<Option<Vec<_>>>().ok_or(TransportError::InboxEmpty(at))
    }
}

struct Inboxes {
    senders: HashMap<PartyId, Sender<(PartyId, Message)>>,
    receivers: HashMap<PartyId, Receiver<(PartyId, Message)>>,
    /// Parties whose link a [`Fault::Disconnect`] closed: their channel
    /// halves are gone, and every operation involving them reports
    /// [`TransportError::PeerDisconnected`].
    dead: HashSet<PartyId>,
}

/// Seeded Fisher–Yates permuter over fan-out delivery order; one fresh
/// permutation per [`Transport::send_all`] call, derived from (seed, call
/// counter) via splitmix64 so a run is reproducible from its seed alone.
#[derive(Debug)]
struct Permuter {
    seed: u64,
    calls: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Permuter {
    /// The delivery order for the next `n`-message fan-out.
    fn order(&mut self, n: usize) -> Vec<usize> {
        self.calls += 1;
        let mut state = self.seed ^ self.calls.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
        idx
    }
}

/// The in-process [`Transport`] backend connecting server, clients and the
/// public board through crossbeam-channel inboxes.
pub struct InProcTransport {
    meter: Meter,
    inboxes: Mutex<Inboxes>,
    faults: Mutex<Vec<(PartyId, PartyId, Fault)>>,
    permuter: Mutex<Option<Permuter>>,
}

/// The historical name of [`InProcTransport`], kept as an alias: existing
/// orchestration code and docs talk about "the network", and the default
/// trainer backend is still the in-process one.
pub type Network = InProcTransport;

impl fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.meter.stats();
        write!(f, "InProcTransport({} msgs, {} bytes)", s.messages, s.bytes)
    }
}

impl InProcTransport {
    /// Creates a network with inboxes for the server, `n_clients` clients and
    /// the public board.
    pub fn new(n_clients: usize) -> Self {
        let mut senders = HashMap::new();
        let mut receivers = HashMap::new();
        let mut add = |p: PartyId| {
            let (tx, rx) = unbounded();
            senders.insert(p, tx);
            receivers.insert(p, rx);
        };
        add(PartyId::Server);
        add(PartyId::Public);
        for i in 0..n_clients {
            add(PartyId::Client(i));
        }
        Self {
            meter: Meter::new(),
            inboxes: Mutex::new(Inboxes { senders, receivers, dead: HashSet::new() }),
            faults: Mutex::new(Vec::new()),
            permuter: Mutex::new(None),
        }
    }

    /// Makes every subsequent [`Transport::send_all`] deliver its fan-out in
    /// a seeded pseudo-random order instead of input order. The schedule
    /// explorer uses this to prove the round choreography is insensitive
    /// to ready-message delivery order: because [`Transport::gather`] slots
    /// replies back into fixed sender order and every fan-out addresses
    /// each recipient once, training results must be bit-identical under
    /// any permutation. Per-call permutations are derived from
    /// `(seed, call index)`, so a run replays exactly from its seed.
    pub fn permute_deliveries(&self, seed: u64) {
        *self.permuter.lock() = Some(Permuter { seed, calls: 0 });
    }

    /// Arms a one-shot fault for the next send on `(from, to)` — protocol
    /// tests use this to check that the orchestration *notices* lost,
    /// replayed or severed messages instead of silently mis-training.
    pub fn inject_fault(&self, from: PartyId, to: PartyId, fault: Fault) {
        self.faults.lock().push((from, to, fault));
    }

    fn take_fault(&self, from: PartyId, to: PartyId) -> Option<Fault> {
        let mut faults = self.faults.lock();
        let idx = faults.iter().position(|&(f, t, _)| f == from && t == to)?;
        Some(faults.remove(idx).2)
    }

    /// Severs `party`'s link: both channel halves are dropped (waking any
    /// blocked receiver with a disconnect) and the party is marked dead.
    fn sever(&self, party: PartyId) {
        let mut inboxes = self.inboxes.lock();
        inboxes.senders.remove(&party);
        inboxes.receivers.remove(&party);
        inboxes.dead.insert(party);
    }

    fn is_dead(&self, party: PartyId) -> bool {
        self.inboxes.lock().dead.contains(&party)
    }

    /// Meters `encoded` on the `(from, to)` link and delivers its decoded
    /// message to `to`'s inbox (the shared tail of [`Transport::send`] and
    /// [`Transport::send_all`]).
    fn deliver(&self, from: PartyId, to: PartyId, encoded: Bytes) -> Result<(), TransportError> {
        if self.is_dead(to) {
            return Err(TransportError::PeerDisconnected { party: to });
        }
        if self.is_dead(from) {
            return Err(TransportError::PeerDisconnected { party: from });
        }
        let fault = self.take_fault(from, to);
        if fault == Some(Fault::Disconnect) {
            // The link dies as the send begins: nothing reaches the wire,
            // so nothing is metered.
            self.sever(to);
            return Err(TransportError::PeerDisconnected { party: to });
        }
        self.meter.record(from, to, encoded.len());
        // Decode from the wire bytes — the recipient sees only what was
        // actually serialized.
        let delivered = Message::decode(encoded)?;
        if fault == Some(Fault::Drop) {
            return Ok(());
        }
        let inboxes = self.inboxes.lock();
        let sender = inboxes.senders.get(&to).ok_or(TransportError::UnknownRecipient(to))?;
        if fault == Some(Fault::Duplicate) {
            sender.send((from, delivered.clone())).map_err(|_| TransportError::InboxClosed(to))?;
        }
        sender.send((from, delivered)).map_err(|_| TransportError::InboxClosed(to))
    }
}

impl Transport for InProcTransport {
    fn send(&self, from: PartyId, to: PartyId, msg: Message) -> Result<(), TransportError> {
        let encoded = msg.encode_with(self.meter.codec());
        self.deliver(from, to, encoded)
    }

    /// Every payload is encoded concurrently on the deterministic
    /// `gtv_tensor::pool` workers (serialization cost is per-byte, and
    /// independent per message), then metered and delivered in input order.
    /// Under [`InProcTransport::permute_deliveries`] the delivery order is
    /// a seeded permutation instead; per-message bytes are unchanged.
    fn send_all(&self, msgs: Vec<(PartyId, PartyId, Message)>) -> Result<(), TransportError> {
        let codec = self.meter.codec();
        let msgs = Arc::new(msgs);
        let encoder = Arc::clone(&msgs);
        let encoded =
            gtv_tensor::pool::run_ordered(msgs.len(), move |i| encoder[i].2.encode_with(codec));
        let order: Option<Vec<usize>> = self.permuter.lock().as_mut().map(|p| p.order(msgs.len()));
        match order {
            None => {
                for (&(from, to, _), bytes) in msgs.iter().zip(encoded) {
                    self.deliver(from, to, bytes)?;
                }
            }
            Some(order) => {
                let mut slots: Vec<Option<Bytes>> = encoded.into_iter().map(Some).collect();
                for i in order {
                    let (from, to, _) = msgs[i];
                    if let Some(bytes) = slots[i].take() {
                        self.deliver(from, to, bytes)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn try_recv(&self, party: PartyId) -> Result<(PartyId, Message), TransportError> {
        let inboxes = self.inboxes.lock();
        let Some(rx) = inboxes.receivers.get(&party) else {
            return Err(if inboxes.dead.contains(&party) {
                TransportError::PeerDisconnected { party }
            } else {
                TransportError::UnknownParty(party)
            });
        };
        rx.try_recv().map_err(|_| TransportError::InboxEmpty(party))
    }

    fn recv_timeout(
        &self,
        party: PartyId,
        timeout: Duration,
    ) -> Result<(PartyId, Message), TransportError> {
        // Clone the receiver and release the inbox lock *before* blocking:
        // holding it across the wait would deadlock concurrent `send`s, the
        // very senders the wait exists for.
        let rx = {
            let inboxes = self.inboxes.lock();
            let Some(rx) = inboxes.receivers.get(&party) else {
                return Err(if inboxes.dead.contains(&party) {
                    TransportError::PeerDisconnected { party }
                } else {
                    TransportError::UnknownParty(party)
                });
            };
            rx.clone()
        };
        rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => self.meter.timeout_error(party, timeout),
            RecvTimeoutError::Disconnected => {
                if self.is_dead(party) {
                    TransportError::PeerDisconnected { party }
                } else {
                    TransportError::InboxClosed(party)
                }
            }
        })
    }

    fn recv_timeout_bound(&self) -> Duration {
        self.meter.recv_timeout_bound()
    }

    fn set_recv_timeout(&self, timeout: Duration) {
        self.meter.set_recv_timeout(timeout);
    }

    fn codec(&self) -> WireCodec {
        self.meter.codec()
    }

    fn set_codec(&self, codec: WireCodec) {
        self.meter.set_codec(codec);
    }

    fn begin_round(&self, round: u64) {
        self.meter.begin_round(round);
    }

    fn stats(&self) -> NetStats {
        self.meter.stats()
    }

    fn reset_stats(&self) {
        self.meter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::MatrixPayload;

    #[test]
    fn send_recv_and_metering() {
        let net = Network::new(2);
        let msg = Message::GenSlice(MatrixPayload::new(1, 2, vec![1.0, 2.0]));
        net.send(PartyId::Server, PartyId::Client(0), msg.clone()).unwrap();
        let (from, got) = net.recv(PartyId::Client(0)).unwrap();
        assert_eq!(from, PartyId::Server);
        assert_eq!(got, msg);
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        // tag + matrix format byte + 8-byte header + 2 × f32.
        assert_eq!(stats.bytes, 1 + 9 + 8);
        assert_eq!(stats.link_bytes(PartyId::Server, PartyId::Client(0)), 18);
        assert_eq!(stats.server_bytes(), 18);
    }

    #[test]
    fn adaptive_codec_shrinks_sparse_traffic_losslessly() {
        let sparse_payload = MatrixPayload::new(2, 8, {
            let mut v = vec![0.0f32; 16];
            v[3] = 1.0;
            v
        });
        let dense_net = Network::new(1);
        dense_net
            .send(PartyId::Client(0), PartyId::Server, Message::SynthLogits(sparse_payload.clone()))
            .unwrap();
        let adaptive_net = Network::new(1);
        adaptive_net.set_codec(WireCodec::Adaptive);
        adaptive_net
            .send(PartyId::Client(0), PartyId::Server, Message::SynthLogits(sparse_payload.clone()))
            .unwrap();
        assert!(adaptive_net.stats().bytes < dense_net.stats().bytes);
        // The recipient still decodes the bit-identical dense matrix.
        let (_, got) = adaptive_net.recv(PartyId::Server).unwrap();
        assert_eq!(got, Message::SynthLogits(sparse_payload));
    }

    #[test]
    fn send_all_matches_sequential_sends_byte_for_byte() {
        let msgs = || {
            vec![
                (
                    PartyId::Server,
                    PartyId::Client(0),
                    Message::GenSlice(MatrixPayload::new(1, 3, vec![0.0, 2.0, 0.0])),
                ),
                (
                    PartyId::Server,
                    PartyId::Client(1),
                    Message::GenSlice(MatrixPayload::new(1, 3, vec![1.0, 0.0, 0.0])),
                ),
                (PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 9 }),
            ]
        };
        let seq = Network::new(2);
        seq.set_codec(WireCodec::Adaptive);
        for (f, t, m) in msgs() {
            seq.send(f, t, m).unwrap();
        }
        let all = Network::new(2);
        all.set_codec(WireCodec::Adaptive);
        all.send_all(msgs()).unwrap();
        assert_eq!(seq.stats(), all.stats());
        // FIFO order per inbox is preserved.
        let (_, a) = all.recv(PartyId::Client(0)).unwrap();
        assert_eq!(a, Message::GenSlice(MatrixPayload::new(1, 3, vec![0.0, 2.0, 0.0])));
    }

    #[test]
    fn permute_deliveries_reorders_deterministically_without_changing_traffic() {
        let fan = || {
            (0..4usize)
                .map(|i| {
                    (
                        PartyId::Client(i),
                        PartyId::Server,
                        Message::ShuffleSeedShare { share: i as u64 },
                    )
                })
                .collect::<Vec<_>>()
        };
        let drain = |net: &Network| {
            let mut order = Vec::new();
            while let Ok((from, _)) = net.try_recv(PartyId::Server) {
                order.push(from);
            }
            order
        };
        let plain = Network::new(4);
        plain.send_all(fan()).unwrap();
        let a = Network::new(4);
        a.permute_deliveries(7);
        a.send_all(fan()).unwrap();
        let b = Network::new(4);
        b.permute_deliveries(7);
        b.send_all(fan()).unwrap();
        // Bytes and message counts are delivery-order-independent.
        assert_eq!(plain.stats(), a.stats(), "permutation must not change metered traffic");
        let plain_order = drain(&plain);
        let a_order = drain(&a);
        assert_eq!(a_order, drain(&b), "same seed must replay the same delivery order");
        assert_eq!(plain_order.len(), a_order.len(), "every message still arrives");
        assert_ne!(plain_order, a_order, "seed 7 actually permutes a 4-message fan-out");
    }

    #[test]
    fn recv_expect_flags_a_wrong_variant() {
        let net = Network::new(1);
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 3 })
            .unwrap();
        let err = net.recv_expect(PartyId::Server, "SynthLogits").unwrap_err();
        match err {
            TransportError::ProtocolViolation { from, expected, got } => {
                assert_eq!(from, PartyId::Client(0));
                assert_eq!(expected, "SynthLogits");
                assert_eq!(got, Message::ShuffleSeedShare { share: 3 });
            }
            other => panic!("expected ProtocolViolation, got {other:?}"),
        }
        // A matching variant passes through.
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 4 })
            .unwrap();
        assert!(net.recv_expect(PartyId::Server, "ShuffleSeedShare").is_ok());
    }

    #[test]
    fn gather_returns_fixed_party_order_regardless_of_arrival() {
        let net = Network::new(2);
        // Client 1's reply lands first.
        net.send(PartyId::Client(1), PartyId::Server, Message::ShuffleSeedShare { share: 11 })
            .unwrap();
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 10 })
            .unwrap();
        let got = net
            .gather(PartyId::Server, &[PartyId::Client(0), PartyId::Client(1)], "ShuffleSeedShare")
            .unwrap();
        assert_eq!(
            got,
            vec![Message::ShuffleSeedShare { share: 10 }, Message::ShuffleSeedShare { share: 11 }]
        );
    }

    #[test]
    fn gather_rejects_outsiders_and_duplicates() {
        let net = Network::new(3);
        net.send(PartyId::Client(2), PartyId::Server, Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        let err = net
            .gather(PartyId::Server, &[PartyId::Client(0), PartyId::Client(1)], "ShuffleSeedShare")
            .unwrap_err();
        assert!(matches!(err, TransportError::UnexpectedMessage { from: PartyId::Client(2), .. }));
        let net = Network::new(2);
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 2 })
            .unwrap();
        let err = net
            .gather(PartyId::Server, &[PartyId::Client(0), PartyId::Client(1)], "ShuffleSeedShare")
            .unwrap_err();
        assert!(matches!(err, TransportError::UnexpectedMessage { from: PartyId::Client(0), .. }));
    }

    #[test]
    fn begin_round_opens_per_round_windows() {
        let net = Network::new(1);
        // Pre-round traffic counts only toward the cumulative totals.
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 0 })
            .unwrap();
        net.begin_round(0);
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 2 })
            .unwrap();
        net.begin_round(1);
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 3 })
            .unwrap();
        let stats = net.stats();
        assert_eq!(stats.messages, 4);
        assert_eq!(stats.rounds.len(), 2);
        assert_eq!((stats.rounds[0].round, stats.rounds[0].messages), (0, 2));
        assert_eq!((stats.rounds[1].round, stats.rounds[1].messages), (1, 1));
        assert_eq!(stats.rounds[0].sent_by(PartyId::Server).0, 2);
        assert_eq!(stats.rounds[0].received_by(PartyId::Client(0)).0, 2);
        assert_eq!(stats.rounds[1].sent_by(PartyId::Server).0, 0);
        assert_eq!(
            stats.rounds[0].bytes + stats.rounds[1].bytes + 9, // 9 = pre-round message
            stats.bytes
        );
    }

    #[test]
    fn inboxes_are_fifo_per_party() {
        let net = Network::new(1);
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 2 })
            .unwrap();
        let (_, m1) = net.recv(PartyId::Server).unwrap();
        let (_, m2) = net.recv(PartyId::Server).unwrap();
        assert_eq!(m1, Message::ShuffleSeedShare { share: 1 });
        assert_eq!(m2, Message::ShuffleSeedShare { share: 2 });
        assert!(net.try_recv(PartyId::Server).is_err());
    }

    #[test]
    fn client_to_client_traffic_bypasses_server_counter() {
        let net = Network::new(2);
        net.send(PartyId::Client(0), PartyId::Client(1), Message::ShuffleSeedShare { share: 7 })
            .unwrap();
        assert_eq!(net.stats().server_bytes(), 0);
        assert!(net.stats().bytes > 0);
    }

    #[test]
    fn reset_clears_counters() {
        let net = Network::new(1);
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 0 })
            .unwrap();
        net.reset_stats();
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn injected_drop_leaves_inbox_empty() {
        let net = Network::new(1);
        net.inject_fault(PartyId::Server, PartyId::Client(0), Fault::Drop);
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        assert!(net.try_recv(PartyId::Client(0)).is_err(), "dropped message must not arrive");
        // Fault is one-shot.
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 2 })
            .unwrap();
        assert!(net.try_recv(PartyId::Client(0)).is_ok());
    }

    #[test]
    fn injected_duplicate_delivers_twice() {
        let net = Network::new(1);
        net.inject_fault(PartyId::Client(0), PartyId::Server, Fault::Duplicate);
        net.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 3 })
            .unwrap();
        assert!(net.try_recv(PartyId::Server).is_ok());
        assert!(net.try_recv(PartyId::Server).is_ok());
        assert!(net.try_recv(PartyId::Server).is_err());
    }

    #[test]
    fn injected_disconnect_severs_the_link_permanently() {
        let net = Network::new(2);
        net.inject_fault(PartyId::Server, PartyId::Client(1), Fault::Disconnect);
        let before = net.stats().bytes;
        let err = net
            .send(PartyId::Server, PartyId::Client(1), Message::ShuffleSeedShare { share: 1 })
            .unwrap_err();
        assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(1) });
        // The severed message never reached the wire.
        assert_eq!(net.stats().bytes, before);
        // The link stays dead: sends to, sends from, and receives at the
        // crashed party all keep reporting the disconnect.
        assert_eq!(
            net.send(PartyId::Server, PartyId::Client(1), Message::ShuffleSeedShare { share: 2 }),
            Err(TransportError::PeerDisconnected { party: PartyId::Client(1) })
        );
        assert_eq!(
            net.send(PartyId::Client(1), PartyId::Server, Message::ShuffleSeedShare { share: 3 }),
            Err(TransportError::PeerDisconnected { party: PartyId::Client(1) })
        );
        assert_eq!(
            net.try_recv(PartyId::Client(1)),
            Err(TransportError::PeerDisconnected { party: PartyId::Client(1) })
        );
        assert_eq!(
            net.recv(PartyId::Client(1)),
            Err(TransportError::PeerDisconnected { party: PartyId::Client(1) })
        );
        // Unrelated links keep working.
        net.send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 4 })
            .unwrap();
        assert!(net.try_recv(PartyId::Client(0)).is_ok());
    }

    #[test]
    fn send_to_unknown_party_errors() {
        let net = Network::new(1);
        let err = net
            .send(PartyId::Server, PartyId::Client(5), Message::ShuffleSeedShare { share: 1 })
            .unwrap_err();
        assert_eq!(err, TransportError::UnknownRecipient(PartyId::Client(5)));
    }

    #[test]
    fn recv_reports_empty_and_unknown() {
        let net = Network::new(1);
        assert_eq!(net.try_recv(PartyId::Server), Err(TransportError::InboxEmpty(PartyId::Server)));
        assert_eq!(
            net.recv(PartyId::Client(9)),
            Err(TransportError::UnknownParty(PartyId::Client(9)))
        );
    }

    #[test]
    fn recv_times_out_on_a_missing_message() {
        // Regression: `recv` used to be a pure alias of `try_recv`, so a
        // sender on another thread that had not delivered *yet* looked
        // identical to a dropped message. It must now wait, and report the
        // distinct `Timeout` error — not `InboxEmpty` — when nothing comes.
        let net = Network::new(1);
        let timeout = Duration::from_millis(10);
        net.set_recv_timeout(timeout);
        let start = std::time::Instant::now();
        let err = net.recv(PartyId::Server).unwrap_err();
        assert_eq!(
            err,
            TransportError::Timeout {
                party: PartyId::Server,
                waited: timeout,
                round: None,
                expecting: None
            }
        );
        assert!(start.elapsed() >= timeout, "recv must actually wait out the bound");
        // `try_recv` keeps its non-blocking contract.
        let start = std::time::Instant::now();
        assert_eq!(net.try_recv(PartyId::Server), Err(TransportError::InboxEmpty(PartyId::Server)));
        assert!(start.elapsed() < timeout, "try_recv must not block");
    }

    #[test]
    fn timeout_carries_round_and_expected_variant_context() {
        // Regression: fan-in timeouts used to say only "no message within
        // 1s" — useless against a hung socket party. They must now name the
        // round window and the variant the step was waiting for.
        let net = Network::new(1);
        net.set_recv_timeout(Duration::from_millis(5));
        net.begin_round(41);
        net.begin_round(42);
        let err = net.recv_expect(PartyId::Server, "SynthLogits").unwrap_err();
        assert_eq!(
            err,
            TransportError::Timeout {
                party: PartyId::Server,
                waited: Duration::from_millis(5),
                round: Some(42),
                expecting: Some("SynthLogits"),
            }
        );
        let shown = err.to_string();
        assert!(shown.contains("round 42"), "{shown}");
        assert!(shown.contains("SynthLogits"), "{shown}");
        // `gather` stamps the same context.
        let err = net.gather(PartyId::Server, &[PartyId::Client(0)], "RealLogits").unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Timeout { round: Some(42), expecting: Some("RealLogits"), .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn recv_waits_for_a_late_sender() {
        use std::sync::Arc;
        let net = Arc::new(Network::new(1));
        net.set_recv_timeout(Duration::from_secs(5));
        let n2 = Arc::clone(&net);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            n2.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 4 })
                .unwrap();
        });
        // The message is in flight, not dropped: recv must ride out the gap.
        let (from, m) = net.recv(PartyId::Server).unwrap();
        assert_eq!(from, PartyId::Client(0));
        assert_eq!(m, Message::ShuffleSeedShare { share: 4 });
        handle.join().unwrap();
    }

    #[test]
    fn works_across_threads() {
        use std::sync::Arc;
        let net = Arc::new(Network::new(1));
        let n2 = Arc::clone(&net);
        let handle = std::thread::spawn(move || {
            n2.send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 9 })
                .unwrap();
        });
        handle.join().unwrap();
        let (_, m) = net.recv(PartyId::Server).unwrap();
        assert_eq!(m, Message::ShuffleSeedShare { share: 9 });
    }
}
