//! Socket [`Transport`] backend: length-delimited wire-v2 frames over TCP
//! or Unix-domain sockets, so each party can run as its own OS process.
//!
//! The deployment shape mirrors the paper's: every party hosts a
//! [`PartyNode`] — a small daemon owning that party's inbox — and the
//! orchestrating process drives the protocol through a [`SocketTransport`]
//! whose every message genuinely transits the socket as a framed exchange.
//! Connection lifecycle is first-class:
//!
//! * a hello handshake negotiates protocol + wire version and rejects
//!   mismatches with [`TransportError::HandshakeFailed`];
//! * broken links redial with bounded exponential backoff;
//! * peer crash / EOF surfaces as [`TransportError::PeerDisconnected`],
//!   never a panic or an indefinite block (every read is deadline-bounded).
//!
//! Byte accounting is identical to the in-process backend: the shared
//! [`Meter`] counts the encoded message body only — frame headers and acks
//! are a property of the medium, not the protocol — so [`NetStats`] from a
//! socket run are comparable (and testably equal) to an in-process run.

use crate::transport::{Fault, Meter, NetStats, PartyId, Transport, TransportError};
use crate::wire::{Message, WireCodec};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use framing::{Frame, FrameBuf};

/// The frame layer: opcode-tagged bodies behind a `u32`-little-endian
/// length prefix, with a hard bound on body size so a hostile or corrupt
/// length prefix can never drive allocation.
pub mod framing {
    use super::{Bytes, PartyId, TransportError};

    /// Version of the framing/handshake protocol spoken on the socket.
    pub const PROTOCOL_VERSION: u32 = 1;
    /// Version of the message wire format carried in `Deliver`/`Msg`
    /// payloads (wire format v2: dense + adaptive-sparse matrix bodies).
    pub const WIRE_VERSION: u32 = 2;
    /// Upper bound on a frame body. The largest legal wire message is a
    /// dense matrix of `2^28` f32 entries (1 GiB) plus headers; anything
    /// larger is rejected *before* any buffer is grown for it.
    pub const MAX_FRAME_BODY: usize = (1 << 30) + 4096;
    /// Upper bound on a `HelloReject` reason string.
    pub const MAX_REJECT_REASON: usize = 512;

    /// One transport frame.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Frame {
        /// Connection opener: the dialer announces its versions and which
        /// party it expects this node to host.
        Hello {
            /// Framing/handshake protocol version ([`PROTOCOL_VERSION`]).
            protocol: u32,
            /// Message wire-format version ([`WIRE_VERSION`]).
            wire: u32,
            /// The party the dialer expects at this endpoint.
            party: PartyId,
        },
        /// Handshake accepted; the node echoes the versions it speaks.
        HelloAck {
            /// Node's framing/handshake protocol version.
            protocol: u32,
            /// Node's message wire-format version.
            wire: u32,
        },
        /// Handshake rejected (version mismatch, wrong party, garbage).
        HelloReject {
            /// Human-readable rejection reason.
            reason: String,
        },
        /// Push one encoded protocol message into the node's inbox.
        Deliver {
            /// Originating party.
            from: PartyId,
            /// The `Message` in its wire encoding.
            payload: Bytes,
        },
        /// A `Deliver` landed in the inbox.
        DeliverAck,
        /// Pop the node's next inbox message, waiting up to `timeout_ms`.
        RecvReq {
            /// Bounded wait in milliseconds.
            timeout_ms: u64,
        },
        /// Pop the node's next inbox message without waiting.
        TryRecvReq,
        /// Reply to `RecvReq`/`TryRecvReq`: one popped message.
        Msg {
            /// Originating party.
            from: PartyId,
            /// The `Message` in its wire encoding.
            payload: Bytes,
        },
        /// Reply to `TryRecvReq`: the inbox is empty.
        Empty,
        /// Reply to `RecvReq`: nothing arrived within the bounded wait.
        TimedOut,
    }

    /// Why a hello with the given versions must be rejected, if at all.
    /// Pure so the rejection rule is testable without a socket.
    pub fn handshake_reject_reason(protocol: u32, wire: u32) -> Option<String> {
        if protocol != PROTOCOL_VERSION {
            return Some(format!(
                "unsupported transport protocol version {protocol} (this node speaks {PROTOCOL_VERSION})"
            ));
        }
        if wire != WIRE_VERSION {
            return Some(format!(
                "unsupported message wire version {wire} (this node speaks {WIRE_VERSION})"
            ));
        }
        None
    }

    fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    fn put_party(out: &mut Vec<u8>, p: PartyId) {
        match p {
            PartyId::Server => {
                out.push(0);
                put_u32(out, 0);
            }
            PartyId::Client(i) => {
                out.push(1);
                // debug_assert!(i <= u32::MAX as usize): rosters are tiny.
                debug_assert!(u32::try_from(i).is_ok(), "client index fits the wire");
                put_u32(out, i as u32);
            }
            PartyId::Public => {
                out.push(2);
                put_u32(out, 0);
            }
        }
    }

    /// Encodes one frame as `u32-le body length ++ body`.
    pub fn encode_frame(frame: &Frame) -> Vec<u8> {
        let mut body = Vec::new();
        match frame {
            Frame::Hello { protocol, wire, party } => {
                body.push(0);
                put_u32(&mut body, *protocol);
                put_u32(&mut body, *wire);
                put_party(&mut body, *party);
            }
            Frame::HelloAck { protocol, wire } => {
                body.push(1);
                put_u32(&mut body, *protocol);
                put_u32(&mut body, *wire);
            }
            Frame::HelloReject { reason } => {
                body.push(2);
                let bytes = reason.as_bytes();
                let n = bytes.len().min(MAX_REJECT_REASON);
                body.extend_from_slice(&(n as u16).to_le_bytes());
                body.extend_from_slice(&bytes[..n]);
            }
            Frame::Deliver { from, payload } => {
                body.push(3);
                put_party(&mut body, *from);
                body.extend_from_slice(payload);
            }
            Frame::DeliverAck => body.push(4),
            Frame::RecvReq { timeout_ms } => {
                body.push(5);
                put_u64(&mut body, *timeout_ms);
            }
            Frame::TryRecvReq => body.push(6),
            Frame::Msg { from, payload } => {
                body.push(7);
                put_party(&mut body, *from);
                body.extend_from_slice(payload);
            }
            Frame::Empty => body.push(8),
            Frame::TimedOut => body.push(9),
        }
        let mut out = Vec::with_capacity(4 + body.len());
        // Wire messages are bounded well below MAX_FRAME_BODY < u32::MAX.
        debug_assert!(body.len() <= MAX_FRAME_BODY, "internal frames stay under the bound");
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn bad(detail: String) -> TransportError {
        TransportError::Frame { detail }
    }

    struct Cur<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cur<'a> {
        fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
            let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
            match end {
                Some(end) => {
                    let s = &self.buf[self.pos..end];
                    self.pos = end;
                    Ok(s)
                }
                None => Err(bad(format!(
                    "truncated frame body: wanted {n} more bytes, {} left",
                    self.buf.len() - self.pos
                ))),
            }
        }

        fn u8(&mut self) -> Result<u8, TransportError> {
            Ok(self.take(1)?[0])
        }

        fn u16(&mut self) -> Result<u16, TransportError> {
            let s = self.take(2)?;
            Ok(u16::from_le_bytes([s[0], s[1]]))
        }

        fn u32(&mut self) -> Result<u32, TransportError> {
            let s = self.take(4)?;
            Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        }

        fn u64(&mut self) -> Result<u64, TransportError> {
            let s = self.take(8)?;
            Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
        }

        fn party(&mut self) -> Result<PartyId, TransportError> {
            let tag = self.u8()?;
            let idx = self.u32()?;
            match tag {
                0 => Ok(PartyId::Server),
                1 => Ok(PartyId::Client(idx as usize)),
                2 => Ok(PartyId::Public),
                other => Err(bad(format!("unknown party tag {other}"))),
            }
        }

        fn rest(&mut self) -> Bytes {
            let s = self.buf[self.pos..].to_vec();
            self.pos = self.buf.len();
            Bytes::from(s)
        }

        fn finish(self) -> Result<(), TransportError> {
            if self.pos == self.buf.len() {
                Ok(())
            } else {
                Err(bad(format!("{} trailing bytes after frame body", self.buf.len() - self.pos)))
            }
        }
    }

    /// Decodes one frame body (everything after the length prefix). Total:
    /// every input yields a `Frame` or a typed [`TransportError::Frame`].
    pub fn decode_frame_body(body: &[u8]) -> Result<Frame, TransportError> {
        let mut cur = Cur { buf: body, pos: 0 };
        let frame = match cur.u8()? {
            0 => Frame::Hello { protocol: cur.u32()?, wire: cur.u32()?, party: cur.party()? },
            1 => Frame::HelloAck { protocol: cur.u32()?, wire: cur.u32()? },
            2 => {
                let n = cur.u16()? as usize;
                if n > MAX_REJECT_REASON {
                    return Err(bad(format!("reject reason of {n} bytes exceeds bound")));
                }
                let reason = String::from_utf8_lossy(cur.take(n)?).into_owned();
                Frame::HelloReject { reason }
            }
            3 => Frame::Deliver { from: cur.party()?, payload: cur.rest() },
            4 => Frame::DeliverAck,
            5 => Frame::RecvReq { timeout_ms: cur.u64()? },
            6 => Frame::TryRecvReq,
            7 => Frame::Msg { from: cur.party()?, payload: cur.rest() },
            8 => Frame::Empty,
            9 => Frame::TimedOut,
            other => return Err(bad(format!("unknown frame opcode {other}"))),
        };
        cur.finish()?;
        Ok(frame)
    }

    /// Incremental frame decoder over a byte stream that may arrive in
    /// arbitrary splits. Feed chunks with [`FrameBuf::extend`], pull frames
    /// with [`FrameBuf::next_frame`]. A length prefix over
    /// [`MAX_FRAME_BODY`] errors *before* any buffer grows toward it.
    #[derive(Debug, Default)]
    pub struct FrameBuf {
        buf: Vec<u8>,
    }

    impl FrameBuf {
        /// An empty decoder.
        pub fn new() -> Self {
            Self { buf: Vec::new() }
        }

        /// Appends received bytes.
        pub fn extend(&mut self, chunk: &[u8]) {
            self.buf.extend_from_slice(chunk);
        }

        /// Bytes buffered but not yet consumed as a frame.
        pub fn buffered(&self) -> usize {
            self.buf.len()
        }

        /// Pops the next complete frame, `Ok(None)` if more bytes are
        /// needed.
        ///
        /// # Errors
        ///
        /// [`TransportError::Frame`] on an oversized length prefix or a
        /// malformed body; the decoder must be discarded afterwards (the
        /// stream has lost sync).
        pub fn next_frame(&mut self) -> Result<Option<Frame>, TransportError> {
            if self.buf.len() < 4 {
                return Ok(None);
            }
            let len =
                u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len > MAX_FRAME_BODY {
                return Err(bad(format!(
                    "length prefix {len} exceeds frame bound {MAX_FRAME_BODY}"
                )));
            }
            let Some(total) = len.checked_add(4) else {
                return Err(bad(format!("length prefix {len} overflows")));
            };
            if self.buf.len() < total {
                return Ok(None);
            }
            let frame = decode_frame_body(&self.buf[4..total])?;
            self.buf.drain(..total);
            Ok(Some(frame))
        }
    }

    // encode_frame's body-length cast is covered by the decode-side bound:
    // decode_frame_body never sees a body longer than MAX_FRAME_BODY.
    // gtv-lint: allow(cast-safety) -- module-trailing marker (unused)
}

/// Where a party listens: a TCP address or a Unix-domain socket path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// `host:port`.
    Tcp(String),
    /// Filesystem socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `"unix:/path/to.sock"` as a Unix-domain endpoint, anything
    /// else as a TCP `host:port`.
    pub fn parse(spec: &str) -> Self {
        match spec.strip_prefix("unix:") {
            Some(path) => Endpoint::Unix(PathBuf::from(path)),
            None => Endpoint::Tcp(spec.to_string()),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Initial-connect attempts (parties may still be starting up).
const CONNECT_ATTEMPTS: u32 = 6;
/// Base of the exponential redial backoff.
const BACKOFF_BASE: Duration = Duration::from_millis(20);
/// How long a dialer waits for the hello reply.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a dialer waits for a `DeliverAck`/`Msg`/`Empty` reply.
const ACK_TIMEOUT: Duration = Duration::from_secs(10);
/// Slack added to a node-side bounded wait before the dialer's own read
/// deadline fires (the node answers `TimedOut` first in the healthy case).
const RECV_MARGIN: Duration = Duration::from_secs(2);
/// Node-side poll tick: bounded waits sleep in these steps instead of
/// reading a wall clock (denied on library paths by the determinism lint).
const POLL_INTERVAL: Duration = Duration::from_millis(1);
/// Accept-loop and per-connection read poll period (stop-flag latency).
const SERVE_POLL: Duration = Duration::from_millis(20);

fn backoff(attempt: u32) -> Duration {
    // attempt < CONNECT_ATTEMPTS <= 31, so the shift cannot overflow.
    BACKOFF_BASE * (1u32 << attempt.min(10))
}

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(nb),
            Stream::Unix(s) => s.set_nonblocking(nb),
        }
    }

    fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn dial(endpoint: &Endpoint) -> std::io::Result<Stream> {
    match endpoint {
        Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
    }
}

fn setup_failed(what: &str, detail: impl fmt::Display) -> TransportError {
    TransportError::HandshakeFailed { reason: format!("{what}: {detail}") }
}

/// Writes one frame; a broken pipe reports the peer as disconnected.
fn write_frame(stream: &mut Stream, frame: &Frame, party: PartyId) -> Result<(), TransportError> {
    let bytes = framing::encode_frame(frame);
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|_| TransportError::PeerDisconnected { party })
}

/// Reads one complete frame, honoring the stream's configured read
/// timeout. EOF/reset reports [`TransportError::PeerDisconnected`]; an
/// expired read deadline reports whatever `on_timeout` constructs.
fn read_frame(
    stream: &mut Stream,
    fb: &mut FrameBuf,
    party: PartyId,
    on_timeout: impl Fn() -> TransportError,
) -> Result<Frame, TransportError> {
    let mut chunk = [0u8; 65536];
    loop {
        if let Some(frame) = fb.next_frame()? {
            return Ok(frame);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(TransportError::PeerDisconnected { party }),
            Ok(n) => fb.extend(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Err(on_timeout())
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(TransportError::PeerDisconnected { party }),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix { listener: UnixListener, path: PathBuf },
}

/// A party's inbox daemon: binds one endpoint, serves framed
/// deliver/receive exchanges for exactly one [`PartyId`], and validates
/// every dialer's version handshake. The inbox outlives connections, so a
/// dialer that crashes and redials resumes where it left off.
pub struct PartyNode {
    party: PartyId,
    listener: Listener,
    inbox: Mutex<VecDeque<(PartyId, Bytes)>>,
    stop: AtomicBool,
}

impl fmt::Debug for PartyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartyNode({} @ {})", self.party, self.endpoint())
    }
}

impl PartyNode {
    /// Binds `endpoint` for `party`. A TCP port of `0` picks a free port
    /// (read it back via [`PartyNode::endpoint`]); a stale Unix socket file
    /// from a crashed node is replaced.
    ///
    /// # Errors
    ///
    /// [`TransportError::HandshakeFailed`] if the endpoint cannot be bound.
    pub fn bind(party: PartyId, endpoint: &Endpoint) -> Result<Self, TransportError> {
        let listener = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())
                    .map_err(|e| setup_failed("bind tcp endpoint", e))?;
                l.set_nonblocking(true).map_err(|e| setup_failed("listener setup", e))?;
                Listener::Tcp(l)
            }
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let l =
                    UnixListener::bind(path).map_err(|e| setup_failed("bind unix endpoint", e))?;
                l.set_nonblocking(true).map_err(|e| setup_failed("listener setup", e))?;
                Listener::Unix { listener: l, path: path.clone() }
            }
        };
        Ok(Self {
            party,
            listener,
            inbox: Mutex::new(VecDeque::new()),
            stop: AtomicBool::new(false),
        })
    }

    /// The party this node hosts.
    pub fn party(&self) -> PartyId {
        self.party
    }

    /// The bound endpoint, with any OS-assigned TCP port resolved.
    pub fn endpoint(&self) -> Endpoint {
        match &self.listener {
            Listener::Tcp(l) => Endpoint::Tcp(
                l.local_addr().map_or_else(|_| "0.0.0.0:0".to_string(), |a| a.to_string()),
            ),
            Listener::Unix { path, .. } => Endpoint::Unix(path.clone()),
        }
    }

    /// Asks [`PartyNode::serve`] to return after its current poll tick
    /// (callable from another thread through an `Arc<PartyNode>`).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Accept-and-serve loop until [`PartyNode::request_stop`].
    /// Connections are served one at a time; per-connection failures sever
    /// that connection only and the node returns to accepting, so a peer
    /// may redial after a crash.
    ///
    /// # Errors
    ///
    /// Only listener-level failures (the listening socket itself died);
    /// anything a peer does wrong is answered or dropped, never fatal.
    pub fn serve(&self) -> Result<(), TransportError> {
        while !self.stop.load(Ordering::SeqCst) {
            match self.accept()? {
                Some(stream) => {
                    let _ = self.serve_conn(stream);
                }
                None => std::thread::sleep(SERVE_POLL),
            }
        }
        Ok(())
    }

    fn accept(&self) -> Result<Option<Stream>, TransportError> {
        let accepted = match &self.listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix { listener, .. } => listener.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                // The listener is non-blocking (to poll the stop flag); the
                // accepted stream blocks with a short read timeout instead.
                stream.set_nonblocking(false).map_err(|e| setup_failed("accepted stream", e))?;
                stream
                    .set_read_timeout(Some(SERVE_POLL))
                    .map_err(|e| setup_failed("accepted stream", e))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(setup_failed("accept", e)),
        }
    }

    /// Serves one connection until EOF, a malformed frame, or a stop
    /// request. The first frame must be a version-valid `Hello` naming this
    /// node's party; everything else is answered from the inbox.
    fn serve_conn(&self, mut stream: Stream) -> Result<(), TransportError> {
        let mut fb = FrameBuf::new();
        let mut greeted = false;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let frame =
                match read_frame(&mut stream, &mut fb, self.party, || TransportError::Timeout {
                    party: self.party,
                    waited: SERVE_POLL,
                    round: None,
                    expecting: None,
                }) {
                    Ok(frame) => frame,
                    // Nothing arrived this tick: poll the stop flag and wait on.
                    Err(TransportError::Timeout { .. }) => continue,
                    // Peer hung up; return to accepting (it may redial).
                    Err(TransportError::PeerDisconnected { .. }) => return Ok(()),
                    // Malformed frame: the stream lost sync — drop it.
                    Err(e) => return Err(e),
                };
            match frame {
                Frame::Hello { protocol, wire, party } => {
                    let reject = framing::handshake_reject_reason(protocol, wire).or_else(|| {
                        (party != self.party)
                            .then(|| format!("this node hosts {}, not {party}", self.party))
                    });
                    match reject {
                        Some(reason) => {
                            let _ = write_frame(
                                &mut stream,
                                &Frame::HelloReject { reason },
                                self.party,
                            );
                            return Ok(());
                        }
                        None => {
                            greeted = true;
                            write_frame(
                                &mut stream,
                                &Frame::HelloAck {
                                    protocol: framing::PROTOCOL_VERSION,
                                    wire: framing::WIRE_VERSION,
                                },
                                self.party,
                            )?;
                        }
                    }
                }
                _ if !greeted => {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::HelloReject {
                            reason: "handshake required before any other frame".to_string(),
                        },
                        self.party,
                    );
                    return Ok(());
                }
                Frame::Deliver { from, payload } => {
                    self.inbox.lock().push_back((from, payload));
                    write_frame(&mut stream, &Frame::DeliverAck, self.party)?;
                }
                Frame::RecvReq { timeout_ms } => {
                    let reply = self.wait_pop(timeout_ms);
                    write_frame(&mut stream, &reply, self.party)?;
                }
                Frame::TryRecvReq => {
                    let reply = match self.inbox.lock().pop_front() {
                        Some((from, payload)) => Frame::Msg { from, payload },
                        None => Frame::Empty,
                    };
                    write_frame(&mut stream, &reply, self.party)?;
                }
                other => {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::HelloReject {
                            reason: format!("unexpected frame from dialer: {other:?}"),
                        },
                        self.party,
                    );
                    return Ok(());
                }
            }
        }
    }

    /// Pops the next inbox entry, sleep-polling in [`POLL_INTERVAL`] ticks
    /// up to `timeout_ms` (no wall-clock reads on library paths).
    fn wait_pop(&self, timeout_ms: u64) -> Frame {
        let mut remaining = timeout_ms;
        loop {
            if let Some((from, payload)) = self.inbox.lock().pop_front() {
                return Frame::Msg { from, payload };
            }
            if remaining == 0 || self.stop.load(Ordering::SeqCst) {
                return Frame::TimedOut;
            }
            std::thread::sleep(POLL_INTERVAL);
            remaining = remaining.saturating_sub(1);
        }
    }
}

impl Drop for PartyNode {
    fn drop(&mut self) {
        if let Listener::Unix { path, .. } = &self.listener {
            let _ = std::fs::remove_file(path);
        }
    }
}

struct Link {
    stream: Stream,
    fb: FrameBuf,
}

struct RemoteParty {
    endpoint: Endpoint,
    link: Option<Link>,
}

/// The socket [`Transport`] backend driven by the orchestrating process.
///
/// Parties with an endpoint in the roster are *remote*: every message to or
/// from them transits their [`PartyNode`] as a framed socket exchange.
/// Parties without one (typically [`PartyId::Server`] and
/// [`PartyId::Public`], which the orchestrator itself hosts) get local
/// in-process inboxes, exactly like the in-process backend's.
pub struct SocketTransport {
    meter: Meter,
    local: Mutex<HashMap<PartyId, VecDeque<(PartyId, Message)>>>,
    remotes: Mutex<HashMap<PartyId, RemoteParty>>,
    faults: Mutex<Vec<(PartyId, PartyId, Fault)>>,
    dead: Mutex<HashSet<PartyId>>,
    versions: (u32, u32),
}

impl fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.meter.stats();
        write!(f, "SocketTransport({} msgs, {} bytes)", s.messages, s.bytes)
    }
}

impl SocketTransport {
    /// Connects to the roster of server + `n_clients` clients + public
    /// board. Parties present in `endpoints` are dialed (bounded retry with
    /// exponential backoff, then a version handshake); the rest are hosted
    /// locally. Dialing everything eagerly surfaces configuration errors at
    /// construction, not mid-round.
    ///
    /// # Errors
    ///
    /// [`TransportError::HandshakeFailed`] if a party cannot be reached or
    /// rejects the handshake, [`TransportError::UnknownParty`] if
    /// `endpoints` names a party outside the roster.
    pub fn connect(
        n_clients: usize,
        endpoints: HashMap<PartyId, Endpoint>,
    ) -> Result<Self, TransportError> {
        Self::connect_with_versions(
            n_clients,
            endpoints,
            framing::PROTOCOL_VERSION,
            framing::WIRE_VERSION,
        )
    }

    /// [`SocketTransport::connect`] announcing custom handshake versions —
    /// a test hook for exercising the rejection path against a live node.
    #[doc(hidden)]
    pub fn connect_with_versions(
        n_clients: usize,
        endpoints: HashMap<PartyId, Endpoint>,
        protocol: u32,
        wire: u32,
    ) -> Result<Self, TransportError> {
        let mut roster = vec![PartyId::Server, PartyId::Public];
        roster.extend((0..n_clients).map(PartyId::Client));
        for p in endpoints.keys() {
            if !roster.contains(p) {
                return Err(TransportError::UnknownParty(*p));
            }
        }
        let mut local = HashMap::new();
        let mut remotes = HashMap::new();
        let mut remote_parties = Vec::new();
        for p in roster {
            match endpoints.get(&p) {
                Some(ep) => {
                    remotes.insert(p, RemoteParty { endpoint: ep.clone(), link: None });
                    remote_parties.push(p);
                }
                None => {
                    local.insert(p, VecDeque::new());
                }
            }
        }
        let transport = Self {
            meter: Meter::new(),
            local: Mutex::new(local),
            remotes: Mutex::new(remotes),
            faults: Mutex::new(Vec::new()),
            dead: Mutex::new(HashSet::new()),
            versions: (protocol, wire),
        };
        // Dial in deterministic party order.
        remote_parties.sort_unstable();
        for p in remote_parties {
            transport.ensure_link(p)?;
        }
        Ok(transport)
    }

    /// Arms a one-shot fault for the next send on `(from, to)` — same test
    /// instrumentation as the in-process backend, so fault regressions run
    /// against both.
    pub fn inject_fault(&self, from: PartyId, to: PartyId, fault: Fault) {
        self.faults.lock().push((from, to, fault));
    }

    fn take_fault(&self, from: PartyId, to: PartyId) -> Option<Fault> {
        let mut faults = self.faults.lock();
        let idx = faults.iter().position(|&(f, t, _)| f == from && t == to)?;
        Some(faults.remove(idx).2)
    }

    fn is_dead(&self, party: PartyId) -> bool {
        self.dead.lock().contains(&party)
    }

    /// Severs `party`'s link: the socket (if any) is shut down, the local
    /// inbox (if any) is dropped, and the party is marked dead.
    fn sever(&self, party: PartyId) {
        if let Some(remote) = self.remotes.lock().get_mut(&party) {
            if let Some(link) = remote.link.take() {
                link.stream.shutdown();
            }
        }
        self.local.lock().remove(&party);
        self.dead.lock().insert(party);
    }

    /// Dials `party` (if not already connected) and performs the handshake.
    fn ensure_link(&self, party: PartyId) -> Result<(), TransportError> {
        if self.is_dead(party) {
            return Err(TransportError::PeerDisconnected { party });
        }
        let mut remotes = self.remotes.lock();
        let Some(remote) = remotes.get_mut(&party) else {
            return Err(TransportError::UnknownParty(party));
        };
        if remote.link.is_some() {
            return Ok(());
        }
        let (protocol, wire) = self.versions;
        remote.link = Some(open_link(&remote.endpoint, party, protocol, wire)?);
        Ok(())
    }

    /// One request/reply exchange on `party`'s link. A broken link redials
    /// once (bounded backoff inside [`open_link`]); a second break marks the
    /// party dead and reports [`TransportError::PeerDisconnected`]. Note a
    /// retried `Deliver` whose first copy actually landed surfaces upstream
    /// as a duplicate-message protocol violation — detected, not silent.
    fn transact(
        &self,
        party: PartyId,
        request: &Frame,
        read_timeout: Duration,
    ) -> Result<Frame, TransportError> {
        for attempt in 0..2u32 {
            if let Err(e) = self.ensure_link(party) {
                // A redial that cannot re-establish a link that existed at
                // construction means the peer is gone, not misconfigured.
                self.dead.lock().insert(party);
                return Err(match e {
                    TransportError::HandshakeFailed { .. } => {
                        TransportError::PeerDisconnected { party }
                    }
                    other => other,
                });
            }
            let mut remotes = self.remotes.lock();
            let Some(remote) = remotes.get_mut(&party) else {
                return Err(TransportError::UnknownParty(party));
            };
            let Some(link) = remote.link.as_mut() else {
                continue;
            };
            let meter = &self.meter;
            let exchange = (|| {
                link.stream
                    .set_read_timeout(Some(read_timeout))
                    .map_err(|_| TransportError::PeerDisconnected { party })?;
                write_frame(&mut link.stream, request, party)?;
                read_frame(&mut link.stream, &mut link.fb, party, || {
                    meter.timeout_error(party, read_timeout)
                })
            })();
            match exchange {
                Ok(frame) => return Ok(frame),
                Err(TransportError::PeerDisconnected { .. }) if attempt == 0 => {
                    // Drop the broken link; the next loop iteration redials.
                    remote.link = None;
                }
                Err(TransportError::PeerDisconnected { .. }) => {
                    remote.link = None;
                    drop(remotes);
                    self.dead.lock().insert(party);
                    return Err(TransportError::PeerDisconnected { party });
                }
                Err(e) => return Err(e),
            }
        }
        self.dead.lock().insert(party);
        Err(TransportError::PeerDisconnected { party })
    }

    /// Routes one already-encoded message to a local inbox or over the
    /// party's socket (shared tail of `send`).
    fn deliver_encoded(
        &self,
        from: PartyId,
        to: PartyId,
        encoded: Bytes,
    ) -> Result<(), TransportError> {
        {
            let mut local = self.local.lock();
            if let Some(inbox) = local.get_mut(&to) {
                // Decode from the wire bytes — the recipient sees only what
                // was actually serialized (parity with the in-process path).
                inbox.push_back((from, Message::decode(encoded)?));
                return Ok(());
            }
        }
        if !self.remotes.lock().contains_key(&to) {
            return Err(TransportError::UnknownRecipient(to));
        }
        match self.transact(to, &Frame::Deliver { from, payload: encoded }, ACK_TIMEOUT)? {
            Frame::DeliverAck => Ok(()),
            other => Err(TransportError::Frame {
                detail: format!("expected DeliverAck from {to}, got {other:?}"),
            }),
        }
    }
}

fn open_link(
    endpoint: &Endpoint,
    party: PartyId,
    protocol: u32,
    wire: u32,
) -> Result<Link, TransportError> {
    let mut last_err = String::from("no dial attempted");
    for attempt in 0..CONNECT_ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(backoff(attempt - 1));
        }
        match dial(endpoint) {
            // A reachable node answers the hello immediately; rejection is
            // terminal (version mismatches don't heal by retrying).
            Ok(stream) => return handshake(stream, party, protocol, wire),
            Err(e) => last_err = e.to_string(),
        }
    }
    Err(TransportError::HandshakeFailed {
        reason: format!("dial {endpoint} for {party}: {last_err}"),
    })
}

/// The dialer's half of the hello exchange.
fn handshake(
    mut stream: Stream,
    party: PartyId,
    protocol: u32,
    wire: u32,
) -> Result<Link, TransportError> {
    stream
        .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
        .map_err(|e| setup_failed("socket setup", e))?;
    write_frame(&mut stream, &Frame::Hello { protocol, wire, party }, party)?;
    let mut fb = FrameBuf::new();
    let reply = read_frame(&mut stream, &mut fb, party, || TransportError::HandshakeFailed {
        reason: format!("{party} did not answer the hello within {HANDSHAKE_TIMEOUT:?}"),
    });
    match reply {
        Ok(Frame::HelloAck { protocol, wire })
            if protocol == framing::PROTOCOL_VERSION && wire == framing::WIRE_VERSION =>
        {
            Ok(Link { stream, fb })
        }
        Ok(Frame::HelloAck { protocol, wire }) => Err(TransportError::HandshakeFailed {
            reason: format!(
                "{party} acknowledged incompatible versions (protocol {protocol}, wire {wire})"
            ),
        }),
        Ok(Frame::HelloReject { reason }) => Err(TransportError::HandshakeFailed { reason }),
        Ok(other) => Err(TransportError::HandshakeFailed {
            reason: format!("expected HelloAck from {party}, got {other:?}"),
        }),
        Err(TransportError::PeerDisconnected { .. }) => Err(TransportError::HandshakeFailed {
            reason: format!("{party} closed the connection during the handshake"),
        }),
        Err(e) => Err(e),
    }
}

impl Transport for SocketTransport {
    fn send(&self, from: PartyId, to: PartyId, msg: Message) -> Result<(), TransportError> {
        if self.is_dead(to) {
            return Err(TransportError::PeerDisconnected { party: to });
        }
        if self.is_dead(from) {
            return Err(TransportError::PeerDisconnected { party: from });
        }
        let fault = self.take_fault(from, to);
        if fault == Some(Fault::Disconnect) {
            // The link dies as the send begins: nothing reaches the wire,
            // so nothing is metered (parity with the in-process backend).
            self.sever(to);
            return Err(TransportError::PeerDisconnected { party: to });
        }
        if !self.local.lock().contains_key(&to) && !self.remotes.lock().contains_key(&to) {
            return Err(TransportError::UnknownRecipient(to));
        }
        let encoded = msg.encode_with(self.meter.codec());
        self.meter.record(from, to, encoded.len());
        if fault == Some(Fault::Drop) {
            return Ok(());
        }
        if fault == Some(Fault::Duplicate) {
            self.deliver_encoded(from, to, encoded.clone())?;
        }
        self.deliver_encoded(from, to, encoded)
    }

    fn try_recv(&self, party: PartyId) -> Result<(PartyId, Message), TransportError> {
        if self.is_dead(party) {
            return Err(TransportError::PeerDisconnected { party });
        }
        {
            let mut local = self.local.lock();
            if let Some(inbox) = local.get_mut(&party) {
                return inbox.pop_front().ok_or(TransportError::InboxEmpty(party));
            }
        }
        if !self.remotes.lock().contains_key(&party) {
            return Err(TransportError::UnknownParty(party));
        }
        match self.transact(party, &Frame::TryRecvReq, ACK_TIMEOUT)? {
            Frame::Msg { from, payload } => Ok((from, Message::decode(payload)?)),
            Frame::Empty => Err(TransportError::InboxEmpty(party)),
            other => Err(TransportError::Frame {
                detail: format!("expected Msg/Empty from {party}, got {other:?}"),
            }),
        }
    }

    fn recv_timeout(
        &self,
        party: PartyId,
        timeout: Duration,
    ) -> Result<(PartyId, Message), TransportError> {
        if self.is_dead(party) {
            return Err(TransportError::PeerDisconnected { party });
        }
        if self.local.lock().contains_key(&party) {
            // Sleep-poll in 1 ms ticks instead of reading a wall clock
            // (denied on library paths by the determinism lint). Local
            // inboxes are filled by this process's own sends, so the first
            // check succeeds in the healthy case.
            let millis = timeout.as_millis();
            let mut remaining =
                if millis > u128::from(u64::MAX) { u64::MAX } else { millis as u64 };
            loop {
                if let Some(inbox) = self.local.lock().get_mut(&party) {
                    if let Some(entry) = inbox.pop_front() {
                        return Ok(entry);
                    }
                } else {
                    // Severed while we were polling.
                    return Err(TransportError::PeerDisconnected { party });
                }
                if remaining == 0 {
                    return Err(self.meter.timeout_error(party, timeout));
                }
                std::thread::sleep(POLL_INTERVAL);
                remaining -= 1;
            }
        }
        if !self.remotes.lock().contains_key(&party) {
            return Err(TransportError::UnknownParty(party));
        }
        let millis = timeout.as_millis();
        let timeout_ms = if millis > u128::from(u64::MAX) { u64::MAX } else { millis as u64 };
        // The node waits `timeout_ms` then answers `TimedOut`; our own read
        // deadline only fires if the node itself stopped responding.
        match self.transact(
            party,
            &Frame::RecvReq { timeout_ms },
            timeout.saturating_add(RECV_MARGIN),
        )? {
            Frame::Msg { from, payload } => Ok((from, Message::decode(payload)?)),
            Frame::TimedOut => Err(self.meter.timeout_error(party, timeout)),
            other => Err(TransportError::Frame {
                detail: format!("expected Msg/TimedOut from {party}, got {other:?}"),
            }),
        }
    }

    fn recv_timeout_bound(&self) -> Duration {
        self.meter.recv_timeout_bound()
    }

    fn set_recv_timeout(&self, timeout: Duration) {
        self.meter.set_recv_timeout(timeout);
    }

    fn codec(&self) -> WireCodec {
        self.meter.codec()
    }

    fn set_codec(&self, codec: WireCodec) {
        self.meter.set_codec(codec);
    }

    fn begin_round(&self, round: u64) {
        self.meter.begin_round(round);
    }

    fn stats(&self) -> NetStats {
        self.meter.stats()
    }

    fn reset_stats(&self) {
        self.meter.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::framing::*;
    use super::*;
    use crate::wire::MatrixPayload;
    use std::sync::Arc;

    #[test]
    fn endpoint_parse_and_display_roundtrip() {
        let tcp = Endpoint::parse("127.0.0.1:9000");
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1:9000".to_string()));
        assert_eq!(tcp.to_string(), "127.0.0.1:9000");
        let unix = Endpoint::parse("unix:/tmp/gtv.sock");
        assert_eq!(unix, Endpoint::Unix(PathBuf::from("/tmp/gtv.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/gtv.sock");
        assert_eq!(Endpoint::parse(&unix.to_string()), unix);
    }

    #[test]
    fn frames_roundtrip_through_the_codec() {
        let frames = vec![
            Frame::Hello { protocol: 1, wire: 2, party: PartyId::Client(3) },
            Frame::HelloAck { protocol: 1, wire: 2 },
            Frame::HelloReject { reason: "nope".to_string() },
            Frame::Deliver { from: PartyId::Server, payload: Bytes::from(vec![1, 2, 3]) },
            Frame::DeliverAck,
            Frame::RecvReq { timeout_ms: 1500 },
            Frame::TryRecvReq,
            Frame::Msg { from: PartyId::Public, payload: Bytes::from(vec![9]) },
            Frame::Empty,
            Frame::TimedOut,
        ];
        for frame in frames {
            let encoded = encode_frame(&frame);
            let mut fb = FrameBuf::new();
            fb.extend(&encoded);
            assert_eq!(fb.next_frame().unwrap(), Some(frame.clone()), "{frame:?}");
            assert_eq!(fb.buffered(), 0);
            assert_eq!(fb.next_frame().unwrap(), None);
        }
    }

    #[test]
    fn framebuf_reassembles_split_reads() {
        let a = encode_frame(&Frame::RecvReq { timeout_ms: 77 });
        let b = encode_frame(&Frame::Deliver {
            from: PartyId::Client(1),
            payload: Bytes::from(vec![5; 100]),
        });
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(&a);
        wire.extend_from_slice(&b);
        let mut fb = FrameBuf::new();
        let mut out = Vec::new();
        for byte in wire {
            fb.extend(&[byte]);
            while let Some(f) = fb.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Frame::RecvReq { timeout_ms: 77 });
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut fb = FrameBuf::new();
        fb.extend(&(u32::MAX).to_le_bytes());
        let err = fb.next_frame().unwrap_err();
        assert!(matches!(err, TransportError::Frame { .. }), "{err:?}");
    }

    #[test]
    fn handshake_rejection_rule_is_exact() {
        assert_eq!(handshake_reject_reason(PROTOCOL_VERSION, WIRE_VERSION), None);
        assert!(handshake_reject_reason(PROTOCOL_VERSION + 1, WIRE_VERSION).is_some());
        assert!(handshake_reject_reason(PROTOCOL_VERSION, WIRE_VERSION + 1).is_some());
        assert!(handshake_reject_reason(0, 0).is_some());
    }

    fn spawn_node(
        party: PartyId,
        endpoint: &Endpoint,
    ) -> (Arc<PartyNode>, std::thread::JoinHandle<()>) {
        let node = Arc::new(PartyNode::bind(party, endpoint).unwrap());
        let serving = Arc::clone(&node);
        let handle = std::thread::spawn(move || {
            serving.serve().unwrap();
        });
        (node, handle)
    }

    #[test]
    fn tcp_loopback_send_recv_and_metering_match_inproc() {
        let (node, handle) = spawn_node(PartyId::Client(0), &Endpoint::parse("127.0.0.1:0"));
        let endpoints = HashMap::from([(PartyId::Client(0), node.endpoint())]);
        let socket = SocketTransport::connect(1, endpoints).unwrap();
        let inproc = crate::transport::Network::new(1);
        let msg = Message::GenSlice(MatrixPayload::new(2, 2, vec![1.0, 0.0, 0.0, 4.0]));
        socket.send(PartyId::Server, PartyId::Client(0), msg.clone()).unwrap();
        inproc.send(PartyId::Server, PartyId::Client(0), msg.clone()).unwrap();
        let (from, got) = socket.recv(PartyId::Client(0)).unwrap();
        assert_eq!((from, got), (PartyId::Server, msg));
        // Byte accounting is identical across backends.
        assert_eq!(socket.stats(), inproc.stats());
        // Local (server-hosted) inboxes work alongside the remote one.
        socket
            .send(PartyId::Client(0), PartyId::Server, Message::ShuffleSeedShare { share: 7 })
            .unwrap();
        assert_eq!(
            socket.try_recv(PartyId::Server).unwrap().1,
            Message::ShuffleSeedShare { share: 7 }
        );
        node.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn version_mismatch_yields_handshake_failed() {
        let (node, handle) = spawn_node(PartyId::Client(0), &Endpoint::parse("127.0.0.1:0"));
        let endpoints = HashMap::from([(PartyId::Client(0), node.endpoint())]);
        let err =
            SocketTransport::connect_with_versions(1, endpoints, PROTOCOL_VERSION, 99).unwrap_err();
        match err {
            TransportError::HandshakeFailed { reason } => {
                assert!(reason.contains("wire version 99"), "{reason}");
            }
            other => panic!("expected HandshakeFailed, got {other:?}"),
        }
        node.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn injected_disconnect_severs_the_socket_link() {
        let (node, handle) = spawn_node(PartyId::Client(0), &Endpoint::parse("127.0.0.1:0"));
        let endpoints = HashMap::from([(PartyId::Client(0), node.endpoint())]);
        let socket = SocketTransport::connect(1, endpoints).unwrap();
        socket.inject_fault(PartyId::Server, PartyId::Client(0), Fault::Disconnect);
        let err = socket
            .send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 1 })
            .unwrap_err();
        assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(0) });
        assert_eq!(
            socket.recv(PartyId::Client(0)),
            Err(TransportError::PeerDisconnected { party: PartyId::Client(0) })
        );
        node.request_stop();
        handle.join().unwrap();
    }

    #[test]
    fn dead_node_surfaces_as_peer_disconnected_not_a_hang() {
        let (node, handle) = spawn_node(PartyId::Client(0), &Endpoint::parse("127.0.0.1:0"));
        let endpoints = HashMap::from([(PartyId::Client(0), node.endpoint())]);
        let socket = SocketTransport::connect(1, endpoints).unwrap();
        socket
            .send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 1 })
            .unwrap();
        // Kill the node (listener included), then talk to the corpse.
        node.request_stop();
        handle.join().unwrap();
        drop(node);
        let err = socket
            .send(PartyId::Server, PartyId::Client(0), Message::ShuffleSeedShare { share: 2 })
            .unwrap_err();
        assert_eq!(err, TransportError::PeerDisconnected { party: PartyId::Client(0) });
    }
}
