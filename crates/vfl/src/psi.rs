//! Private-set-intersection row alignment (functional simulation).
//!
//! The paper assumes clients align their rows to the same individuals via
//! PSI before training. This module implements the *functional* step: each
//! client hashes its user identifiers with a shared salt, the hash sets are
//! intersected, and every client receives the positions of its rows in a
//! canonical (hash-sorted) order. Only salted hashes are exchanged — raw
//! identifiers never leave a client.

use std::collections::HashMap;

/// Salted 64-bit hash (FNV-1a over the id and salt).
fn salted_hash(id: u64, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.to_le_bytes().iter().chain(salt.to_le_bytes().iter()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Result of PSI alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsiAlignment {
    /// For each client, the row indices (into its local table) of the shared
    /// individuals, in the canonical shared order.
    pub row_orders: Vec<Vec<usize>>,
    /// Number of shared individuals.
    pub intersection_size: usize,
}

/// Aligns clients on the intersection of their user-id sets.
///
/// `client_ids[c][r]` is the identifier of row `r` at client `c`. Returns
/// per-client row orders such that row `row_orders[c][k]` at every client `c`
/// belongs to the same individual `k`.
///
/// # Panics
///
/// Panics if `client_ids` is empty or any client has duplicate ids.
pub fn psi_align(client_ids: &[Vec<u64>], salt: u64) -> PsiAlignment {
    assert!(!client_ids.is_empty(), "psi_align requires at least one client");
    // Hash ids per client; detect duplicates.
    let mut maps: Vec<HashMap<u64, usize>> = Vec::with_capacity(client_ids.len());
    for (c, ids) in client_ids.iter().enumerate() {
        let mut m = HashMap::with_capacity(ids.len());
        for (r, &id) in ids.iter().enumerate() {
            let h = salted_hash(id, salt);
            assert!(m.insert(h, r).is_none(), "client {c} has duplicate ids");
        }
        maps.push(m);
    }
    // Intersect hash sets.
    let mut shared: Vec<u64> = maps[0].keys().copied().collect();
    shared.retain(|h| maps[1..].iter().all(|m| m.contains_key(h)));
    shared.sort_unstable(); // canonical order known to every client
    let row_orders = maps.iter().map(|m| shared.iter().map(|h| m[h]).collect()).collect();
    PsiAlignment { row_orders, intersection_size: shared.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_shared_individuals() {
        let a = vec![10, 20, 30, 40];
        let b = vec![40, 99, 10, 30];
        let al = psi_align(&[a.clone(), b.clone()], 7);
        assert_eq!(al.intersection_size, 3);
        for k in 0..3 {
            let ra = al.row_orders[0][k];
            let rb = al.row_orders[1][k];
            assert_eq!(a[ra], b[rb], "row {k} must point at the same individual");
        }
    }

    #[test]
    fn disjoint_sets_intersect_empty() {
        let al = psi_align(&[vec![1, 2], vec![3, 4]], 0);
        assert_eq!(al.intersection_size, 0);
        assert!(al.row_orders[0].is_empty());
    }

    #[test]
    fn salt_changes_order_but_not_membership() {
        let a = vec![1, 2, 3];
        let b = vec![3, 2, 1];
        let al1 = psi_align(&[a.clone(), b.clone()], 1);
        let al2 = psi_align(&[a.clone(), b.clone()], 2);
        assert_eq!(al1.intersection_size, 3);
        assert_eq!(al2.intersection_size, 3);
        // Alignment correctness holds under any salt.
        for al in [&al1, &al2] {
            for k in 0..3 {
                assert_eq!(a[al.row_orders[0][k]], b[al.row_orders[1][k]]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate ids")]
    fn rejects_duplicate_ids() {
        let _ = psi_align(&[vec![1, 1]], 0);
    }

    #[test]
    fn three_clients() {
        let al = psi_align(&[vec![5, 6, 7], vec![7, 5], vec![9, 5, 7, 8]], 3);
        assert_eq!(al.intersection_size, 2);
        assert_eq!(al.row_orders.len(), 3);
    }
}
