//! # gtv-metrics
//!
//! Statistical-similarity metrics from the paper's evaluation (§4.2.2):
//!
//! * [`average_jsd`] — mean Jensen–Shannon divergence over categorical
//!   columns;
//! * [`average_wd`] — mean (range-normalized) Wasserstein distance over
//!   continuous/mixed columns;
//! * [`diff_corr`] — ℓ² difference of dython-style association matrices
//!   (Pearson / correlation ratio / Cramér's V), plus the paper's
//!   [`avg_client_diff_corr`] and [`across_client_diff_corr`] variants for
//!   vertically-partitioned data.
//!
//! # Examples
//!
//! ```
//! use gtv_data::Dataset;
//! use gtv_metrics::similarity;
//!
//! let real = Dataset::Adult.generate(300, 0);
//! let synth = Dataset::Adult.generate(300, 1);
//! let report = similarity(&real, &synth);
//! assert!(report.avg_jsd < 0.2);
//! ```

mod association;
mod divergence;
mod mia;
mod similarity;

pub use association::{
    associations, correlation_ratio, cramers_v, cross_associations, matrix_l2_diff, pearson,
};
pub use divergence::{jsd, wasserstein_1d};
pub use mia::{membership_inference, MiaReport};
pub use similarity::{
    across_client_diff_corr, average_jsd, average_wd, avg_client_diff_corr, diff_corr, similarity,
    SimilarityReport,
};
