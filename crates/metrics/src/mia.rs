//! Distance-based membership-inference attack (MIA) on synthetic tables.
//!
//! §3.3 of the paper discusses MIAs against GANs (GAN-Leaks, TableGAN-MCA):
//! an attacker holding the published synthetic data guesses whether a given
//! record was part of the training set. This module implements the standard
//! black-box *distance-to-closest-record* attack: a candidate scores high
//! (member-like) when some synthetic row lies unusually close to it. The
//! attack is scored as an AUC over known members vs non-members — `0.5`
//! means the synthetic data leaks nothing through proximity.

use gtv_data::{ColumnData, ColumnKind, Table};

/// Outcome of the attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiaReport {
    /// Attack AUC over members vs non-members (0.5 = no leakage; 1.0 =
    /// every member is closer to the synthetic data than every non-member).
    pub auc: f64,
    /// Mean distance from members to their closest synthetic row.
    pub member_distance: f64,
    /// Mean distance from non-members to their closest synthetic row.
    pub non_member_distance: f64,
}

/// Numeric embedding: z-scored continuous columns (statistics from the
/// synthetic table — all the attacker has) and one-hot categoricals.
fn embed(table: &Table, stats: &[(f64, f64)]) -> Vec<Vec<f64>> {
    let n = table.n_rows();
    let mut rows = vec![Vec::new(); n];
    let mut stat_idx = 0;
    for (ci, meta) in table.schema().columns().iter().enumerate() {
        match (&meta.kind, table.column(ci)) {
            (ColumnKind::Categorical { categories }, ColumnData::Cat(vals)) => {
                for (r, &v) in vals.iter().enumerate() {
                    for k in 0..categories.len() {
                        rows[r].push(if k == v as usize { 1.0 } else { 0.0 });
                    }
                }
            }
            (_, ColumnData::Float(vals)) => {
                let (mean, std) = stats[stat_idx];
                stat_idx += 1;
                for (r, &v) in vals.iter().enumerate() {
                    rows[r].push((v - mean) / std);
                }
            }
            _ => unreachable!("table invariants guarantee matching kinds"),
        }
    }
    rows
}

fn continuous_stats(table: &Table) -> Vec<(f64, f64)> {
    let mut stats = Vec::new();
    for (ci, meta) in table.schema().columns().iter().enumerate() {
        if !meta.kind.is_categorical() {
            let vals = table.column(ci).as_float();
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            stats.push((mean, var.sqrt().max(1e-9)));
        }
    }
    stats
}

fn min_distance(point: &[f64], cloud: &[Vec<f64>]) -> f64 {
    cloud
        .iter()
        .map(|c| point.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt())
        .fold(f64::INFINITY, f64::min)
}

fn rank_auc(scores_pos: &[f64], scores_neg: &[f64]) -> f64 {
    // AUC = P(pos > neg), ties count half.
    let mut wins = 0.0;
    for p in scores_pos {
        for q in scores_neg {
            if p > q {
                wins += 1.0;
            } else if p == q {
                wins += 0.5;
            }
        }
    }
    wins / (scores_pos.len() * scores_neg.len()) as f64
}

/// Runs the distance-to-closest-record attack.
///
/// `members` are rows that were in the GAN's training data, `non_members`
/// are held-out rows from the same distribution, `synthetic` is the
/// published table. All three must share a schema.
///
/// # Panics
///
/// Panics if schemas differ or any table is empty.
pub fn membership_inference(members: &Table, non_members: &Table, synthetic: &Table) -> MiaReport {
    assert_eq!(members.schema(), synthetic.schema(), "schemas must match");
    assert_eq!(non_members.schema(), synthetic.schema(), "schemas must match");
    assert!(
        members.n_rows() > 0 && non_members.n_rows() > 0 && synthetic.n_rows() > 0,
        "tables must be non-empty"
    );
    let stats = continuous_stats(synthetic);
    let cloud = embed(synthetic, &stats);
    let m = embed(members, &stats);
    let h = embed(non_members, &stats);
    let dm: Vec<f64> = m.iter().map(|p| min_distance(p, &cloud)).collect();
    let dh: Vec<f64> = h.iter().map(|p| min_distance(p, &cloud)).collect();
    // Members should be *closer* ⇒ score = −distance.
    let sm: Vec<f64> = dm.iter().map(|d| -d).collect();
    let sh: Vec<f64> = dh.iter().map(|d| -d).collect();
    MiaReport {
        auc: rank_auc(&sm, &sh),
        member_distance: dm.iter().sum::<f64>() / dm.len() as f64,
        non_member_distance: dh.iter().sum::<f64>() / dh.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::Dataset;

    #[test]
    fn verbatim_copies_are_fully_exposed() {
        let t = Dataset::Loan.generate(300, 0);
        let (train, holdout) = t.train_test_split(0.5, 1);
        // Worst case: the "synthetic" data IS the training data.
        let report = membership_inference(&train, &holdout, &train);
        assert!(report.auc > 0.95, "verbatim release must be detectable, auc {}", report.auc);
        assert!(report.member_distance < report.non_member_distance);
    }

    #[test]
    fn fresh_samples_leak_nothing() {
        let t = Dataset::Loan.generate(300, 0);
        let (train, holdout) = t.train_test_split(0.5, 1);
        // Independent draw from the same distribution: no membership signal.
        let independent = Dataset::Loan.generate(300, 99);
        let report = membership_inference(&train, &holdout, &independent);
        assert!(
            (report.auc - 0.5).abs() < 0.12,
            "independent synthetic data should score near chance, auc {}",
            report.auc
        );
    }

    #[test]
    #[should_panic(expected = "schemas must match")]
    fn rejects_schema_mismatch() {
        let a = Dataset::Loan.generate(10, 0);
        let b = Dataset::Adult.generate(10, 0);
        let _ = membership_inference(&a, &a, &b);
    }
}
