//! Pairwise association matrices over mixed-type tables, mirroring dython's
//! `compute_associations`: Pearson correlation (continuous–continuous),
//! correlation ratio η (categorical–continuous) and Cramér's V
//! (categorical–categorical). Mixed columns are treated as continuous.

use gtv_data::{ColumnData, Table};

/// Pearson correlation coefficient. Returns 0 when either side is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
    }
}

/// Correlation ratio η between a categorical grouping and a continuous
/// variable (`0` = no association, `1` = perfectly determined).
pub fn correlation_ratio(groups: &[u32], values: &[f64], n_groups: usize) -> f64 {
    assert_eq!(groups.len(), values.len(), "sample length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let mut group_sum = vec![0.0f64; n_groups];
    let mut group_n = vec![0.0f64; n_groups];
    for (&g, &v) in groups.iter().zip(values) {
        group_sum[g as usize] += v;
        group_n[g as usize] += 1.0;
    }
    let mut between = 0.0;
    for gi in 0..n_groups {
        if group_n[gi] > 0.0 {
            let gm = group_sum[gi] / group_n[gi];
            between += group_n[gi] * (gm - mean) * (gm - mean);
        }
    }
    let total: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
    if total <= 0.0 {
        0.0
    } else {
        (between / total).clamp(0.0, 1.0).sqrt()
    }
}

/// Cramér's V between two categorical variables, with the Bergsma
/// bias correction dython applies.
pub fn cramers_v(x: &[u32], y: &[u32], kx: usize, ky: usize) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    if x.is_empty() || kx < 2 || ky < 2 {
        return 0.0;
    }
    let n = x.len() as f64;
    let mut table = vec![0.0f64; kx * ky];
    let mut row = vec![0.0f64; kx];
    let mut col = vec![0.0f64; ky];
    for (&a, &b) in x.iter().zip(y) {
        table[a as usize * ky + b as usize] += 1.0;
        row[a as usize] += 1.0;
        col[b as usize] += 1.0;
    }
    let mut chi2 = 0.0;
    for i in 0..kx {
        for j in 0..ky {
            let expected = row[i] * col[j] / n;
            if expected > 0.0 {
                let d = table[i * ky + j] - expected;
                chi2 += d * d / expected;
            }
        }
    }
    let phi2 = chi2 / n;
    let (kxf, kyf) = (kx as f64, ky as f64);
    let phi2_corr = (phi2 - (kxf - 1.0) * (kyf - 1.0) / (n - 1.0)).max(0.0);
    let r_corr = kxf - (kxf - 1.0) * (kxf - 1.0) / (n - 1.0);
    let c_corr = kyf - (kyf - 1.0) * (kyf - 1.0) / (n - 1.0);
    let denom = (r_corr - 1.0).min(c_corr - 1.0);
    if denom <= 0.0 {
        0.0
    } else {
        (phi2_corr / denom).sqrt().clamp(0.0, 1.0)
    }
}

enum ColView<'a> {
    Cont(&'a [f64]),
    Cat(&'a [u32], usize),
}

fn view(table: &Table, i: usize) -> ColView<'_> {
    match table.column(i) {
        ColumnData::Float(v) => ColView::Cont(v),
        ColumnData::Cat(v) => {
            let k = table.schema().column(i).kind.n_categories().unwrap_or(0);
            ColView::Cat(v, k)
        }
    }
}

fn pair_association(a: &ColView<'_>, b: &ColView<'_>) -> f64 {
    match (a, b) {
        (ColView::Cont(x), ColView::Cont(y)) => pearson(x, y),
        (ColView::Cat(g, k), ColView::Cont(v)) | (ColView::Cont(v), ColView::Cat(g, k)) => {
            correlation_ratio(g, v, *k)
        }
        (ColView::Cat(x, kx), ColView::Cat(y, ky)) => cramers_v(x, y, *kx, *ky),
    }
}

/// Full pairwise association matrix of a table (symmetric, unit diagonal).
pub fn associations(table: &Table) -> Vec<Vec<f64>> {
    let n = table.n_cols();
    let views: Vec<ColView<'_>> = (0..n).map(|i| view(table, i)).collect();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let v = pair_association(&views[i], &views[j]);
            m[i][j] = v;
            m[j][i] = v;
        }
    }
    m
}

/// Associations between the columns of two row-aligned tables
/// (`a.n_cols() × b.n_cols()`), used for the paper's *Across-client* metric.
///
/// # Panics
///
/// Panics if the tables have different row counts.
pub fn cross_associations(a: &Table, b: &Table) -> Vec<Vec<f64>> {
    assert_eq!(a.n_rows(), b.n_rows(), "tables must be row-aligned");
    let va: Vec<ColView<'_>> = (0..a.n_cols()).map(|i| view(a, i)).collect();
    let vb: Vec<ColView<'_>> = (0..b.n_cols()).map(|i| view(b, i)).collect();
    va.iter().map(|x| vb.iter().map(|y| pair_association(x, y)).collect()).collect()
}

/// Frobenius (`ℓ²`) norm of the elementwise difference of two matrices.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn matrix_l2_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    assert_eq!(a.len(), b.len(), "matrix row count mismatch");
    let mut total = 0.0;
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len(), "matrix column count mismatch");
        for (x, y) in ra.iter().zip(rb) {
            total += (x - y) * (x - y);
        }
    }
    total.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::{ColumnKind, ColumnMeta, Schema};

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn correlation_ratio_extremes() {
        // Perfectly determined by group.
        let g = [0u32, 0, 1, 1];
        let v = [1.0, 1.0, 9.0, 9.0];
        assert!((correlation_ratio(&g, &v, 2) - 1.0).abs() < 1e-12);
        // Independent of group.
        let v2 = [1.0, 9.0, 1.0, 9.0];
        assert!(correlation_ratio(&g, &v2, 2) < 1e-12);
    }

    #[test]
    fn cramers_v_extremes() {
        let x = [0u32, 0, 1, 1, 0, 0, 1, 1];
        assert!(cramers_v(&x, &x, 2, 2) > 0.9);
        let indep = [0u32, 1, 0, 1, 0, 1, 0, 1];
        let other = [0u32, 0, 1, 1, 0, 0, 1, 1];
        assert!(cramers_v(&indep, &other, 2, 2) < 0.3);
    }

    fn demo_table() -> Table {
        let schema = Schema::new(
            vec![
                ColumnMeta::new("x", ColumnKind::Continuous),
                ColumnMeta::new("y", ColumnKind::Continuous),
                ColumnMeta::new("g", ColumnKind::categorical(["a", "b"])),
            ],
            None,
        );
        Table::new(
            schema,
            vec![
                ColumnData::Float(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
                ColumnData::Float(vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0]),
                ColumnData::Cat(vec![0, 0, 0, 1, 1, 1]),
            ],
        )
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (i, j) indexing mirrors the matrix symmetry being asserted
    fn association_matrix_is_symmetric_unit_diagonal() {
        let t = demo_table();
        let m = associations(&t);
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
        assert!((m[0][1] - 1.0).abs() < 1e-9, "x and y are perfectly correlated");
    }

    #[test]
    fn identical_tables_have_zero_l2_diff() {
        let t = demo_table();
        let m = associations(&t);
        assert_eq!(matrix_l2_diff(&m, &m), 0.0);
    }

    #[test]
    fn cross_associations_shape() {
        let t = demo_table();
        let a = t.select_columns(&[0]);
        let b = t.select_columns(&[1, 2]);
        let m = cross_associations(&a, &b);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].len(), 2);
        assert!((m[0][0] - 1.0).abs() < 1e-9);
    }
}
