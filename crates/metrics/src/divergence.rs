//! Jensen–Shannon divergence and 1-D Wasserstein distance.

/// Jensen–Shannon divergence between two discrete distributions, base-2
/// (bounded in `[0, 1]`, symmetric).
///
/// # Panics
///
/// Panics if the slices have different lengths or either sums to zero.
pub fn jsd(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must have positive mass");
    let kl = |a: &[f64], sa: f64, m: &dyn Fn(usize) -> f64| -> f64 {
        a.iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, &v)| {
                let pi = v / sa;
                pi * (pi / m(i)).log2()
            })
            .sum()
    };
    let mix = |i: usize| 0.5 * (p[i] / sp + q[i] / sq);
    0.5 * kl(p, sp, &mix) + 0.5 * kl(q, sq, &mix)
}

/// First Wasserstein distance between two empirical 1-D distributions
/// (area between the empirical CDFs).
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn wasserstein_1d(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);

    // Walk the merged support accumulating |F_a - F_b| · Δx.
    let mut all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
    all.sort_by(f64::total_cmp);
    all.dedup();
    let (mut ia, mut ib) = (0usize, 0usize);
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let mut dist = 0.0;
    for w in all.windows(2) {
        while ia < xs.len() && xs[ia] <= w[0] {
            ia += 1;
        }
        while ib < ys.len() && ys[ib] <= w[0] {
            ib += 1;
        }
        let fa = ia as f64 / na;
        let fb = ib as f64 / nb;
        dist += (fa - fb).abs() * (w[1] - w[0]);
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsd_identical_is_zero() {
        assert!(jsd(&[0.5, 0.5], &[0.5, 0.5]).abs() < 1e-12);
        assert!(jsd(&[3.0, 1.0], &[6.0, 2.0]).abs() < 1e-12); // unnormalized
    }

    #[test]
    fn jsd_disjoint_is_one() {
        assert!((jsd(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jsd_symmetric_and_bounded() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.3, 0.6];
        let d1 = jsd(&p, &q);
        let d2 = jsd(&q, &p);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn wasserstein_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert!(wasserstein_1d(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_shift_equals_offset() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 2.5).collect();
        let d = wasserstein_1d(&a, &b);
        assert!((d - 2.5).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn wasserstein_point_masses() {
        let d = wasserstein_1d(&[0.0], &[3.0]);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wasserstein_different_sample_sizes() {
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [1.0];
        let d = wasserstein_1d(&a, &b);
        assert!((d - 1.0).abs() < 1e-12);
    }
}
