//! Table-level statistical-similarity metrics: Avg JSD, Avg WD and the
//! Diff. Corr. family from the paper's §4.2.2.

use crate::association::{associations, cross_associations, matrix_l2_diff};
use crate::divergence::{jsd, wasserstein_1d};
use gtv_data::{ColumnKind, Table};

/// Average Jensen–Shannon divergence over the categorical columns shared by
/// `real` and `synthetic` (0 when there are none).
///
/// # Panics
///
/// Panics if the schemas differ.
pub fn average_jsd(real: &Table, synthetic: &Table) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schemas must match");
    let mut total = 0.0;
    let mut n = 0usize;
    for (i, meta) in real.schema().columns().iter().enumerate() {
        if meta.kind.is_categorical() {
            let p: Vec<f64> = real.category_counts(i).iter().map(|&c| c as f64).collect();
            let q: Vec<f64> = synthetic.category_counts(i).iter().map(|&c| c as f64).collect();
            // Synthetic may have an empty column distribution if tiny; guard.
            if p.iter().sum::<f64>() > 0.0 && q.iter().sum::<f64>() > 0.0 {
                total += jsd(&p, &q);
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Average Wasserstein distance over continuous/mixed columns, each column
/// normalized by the real column's range so that distances are comparable
/// across columns and datasets (0 when there are no continuous columns).
///
/// Columns whose real range is degenerate (constant or non-finite) are
/// skipped: dividing by a clamped near-zero range would amplify any
/// synthetic deviation by ~1e12 and poison the average.
///
/// # Panics
///
/// Panics if the schemas differ.
pub fn average_wd(real: &Table, synthetic: &Table) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schemas must match");
    let mut total = 0.0;
    let mut n = 0usize;
    for (i, meta) in real.schema().columns().iter().enumerate() {
        match meta.kind {
            ColumnKind::Continuous | ColumnKind::Mixed { .. } => {
                let a = real.column(i).as_float();
                let b = synthetic.column(i).as_float();
                let lo = a.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let range = hi - lo;
                if !range.is_finite() || range < 1e-12 {
                    continue;
                }
                total += wasserstein_1d(a, b) / range;
                n += 1;
            }
            ColumnKind::Categorical { .. } => {}
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// `ℓ²` norm of the difference between the association matrices of `real`
/// and `synthetic` — the paper's **Diff. Corr.**
///
/// # Panics
///
/// Panics if the schemas differ.
pub fn diff_corr(real: &Table, synthetic: &Table) -> f64 {
    assert_eq!(real.schema(), synthetic.schema(), "schemas must match");
    matrix_l2_diff(&associations(real), &associations(synthetic))
}

/// The paper's **Avg-client** Diff. Corr.: the mean of per-client
/// `diff_corr` over vertically-partitioned shards.
///
/// # Panics
///
/// Panics if the shard lists differ in length or any shard pair's schemas
/// differ.
pub fn avg_client_diff_corr(real_parts: &[Table], synth_parts: &[Table]) -> f64 {
    assert_eq!(real_parts.len(), synth_parts.len(), "shard count mismatch");
    assert!(!real_parts.is_empty(), "need at least one shard");
    let total: f64 = real_parts.iter().zip(synth_parts).map(|(r, s)| diff_corr(r, s)).sum();
    total / real_parts.len() as f64
}

/// The paper's **Across-client** Diff. Corr.: the `ℓ²` norm of the
/// difference between the real and synthetic *cross*-association matrices of
/// two clients' shards.
pub fn across_client_diff_corr(
    real_a: &Table,
    real_b: &Table,
    synth_a: &Table,
    synth_b: &Table,
) -> f64 {
    let real = cross_associations(real_a, real_b);
    let synth = cross_associations(synth_a, synth_b);
    matrix_l2_diff(&real, &synth)
}

/// Bundle of the three statistical-similarity metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimilarityReport {
    /// Average JSD over categorical columns.
    pub avg_jsd: f64,
    /// Average (range-normalized) Wasserstein distance over continuous
    /// columns.
    pub avg_wd: f64,
    /// ℓ² difference of full association matrices.
    pub diff_corr: f64,
}

/// Computes all three similarity metrics between a real and synthetic table.
pub fn similarity(real: &Table, synthetic: &Table) -> SimilarityReport {
    SimilarityReport {
        avg_jsd: average_jsd(real, synthetic),
        avg_wd: average_wd(real, synthetic),
        diff_corr: diff_corr(real, synthetic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtv_data::{ColumnData, ColumnKind, ColumnMeta, Dataset, Schema};

    #[test]
    fn identical_tables_score_zero() {
        let t = Dataset::Loan.generate(400, 1);
        let r = similarity(&t, &t);
        assert_eq!(r.avg_jsd, 0.0);
        assert!(r.avg_wd.abs() < 1e-12);
        assert_eq!(r.diff_corr, 0.0);
    }

    #[test]
    fn different_seeds_score_small_but_nonzero() {
        let a = Dataset::Loan.generate(800, 1);
        let b = Dataset::Loan.generate(800, 2);
        let r = similarity(&a, &b);
        assert!(r.avg_jsd > 0.0 && r.avg_jsd < 0.1, "jsd {}", r.avg_jsd);
        assert!(r.avg_wd > 0.0 && r.avg_wd < 0.1, "wd {}", r.avg_wd);
        assert!(r.diff_corr > 0.0, "diff corr {}", r.diff_corr);
    }

    #[test]
    fn unrelated_tables_score_worse_than_same_distribution() {
        let a = Dataset::Adult.generate(600, 1);
        let b = Dataset::Adult.generate(600, 2);
        // Shuffle each column independently to break correlations.
        let shuffled = {
            let mut parts: Vec<Table> = Vec::new();
            for (i, _) in a.schema().columns().iter().enumerate() {
                parts.push(b.select_columns(&[i]).shuffled(i as u64 + 100));
            }
            let refs: Vec<&Table> = parts.iter().collect();
            Table::hconcat(&refs)
        };
        let close = diff_corr(&a, &b);
        let broken = diff_corr(&a, &shuffled);
        assert!(broken > close, "broken {broken} should exceed close {close}");
    }

    #[test]
    fn constant_real_column_does_not_poison_average_wd() {
        // Regression: the normalizer used to be `(hi - lo).max(1e-12)`, so a
        // constant real column divided the synthetic deviation by 1e-12 and
        // any tiny mismatch blew the average up by ~1e12. Degenerate columns
        // must be skipped instead.
        let schema = Schema::new(
            vec![
                ColumnMeta::new("constant", ColumnKind::Continuous),
                ColumnMeta::new("varying", ColumnKind::Continuous),
            ],
            None,
        );
        let n = 64usize;
        let varying: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let real = Table::new(
            schema.clone(),
            vec![ColumnData::Float(vec![5.0; n]), ColumnData::Float(varying.clone())],
        );
        // Synthetic drifts a hair on the constant column and shifts the
        // varying column by 0.1 (range 1.0 → normalized WD exactly 0.1).
        let synth = Table::new(
            schema.clone(),
            vec![
                ColumnData::Float(vec![5.0 + 1e-9; n]),
                ColumnData::Float(varying.iter().map(|v| v + 0.1).collect()),
            ],
        );
        let wd = average_wd(&real, &synth);
        assert!((wd - 0.1).abs() < 1e-9, "constant column must be skipped, got {wd}");

        // Every real column constant: nothing to normalize by, score is 0.
        let flat_schema = Schema::new(vec![ColumnMeta::new("flat", ColumnKind::Continuous)], None);
        let flat_real = Table::new(flat_schema.clone(), vec![ColumnData::Float(vec![2.0; n])]);
        let flat_synth = Table::new(flat_schema, vec![ColumnData::Float(vec![2.5; n])]);
        assert_eq!(average_wd(&flat_real, &flat_synth), 0.0);
    }

    #[test]
    fn avg_and_across_client_metrics() {
        let t = Dataset::Loan.generate(500, 3);
        let n = t.n_cols();
        let groups = vec![(0..n / 2).collect::<Vec<_>>(), (n / 2..n).collect::<Vec<_>>()];
        let real_parts = t.vertical_split(&groups);
        let s = Dataset::Loan.generate(500, 4);
        let synth_parts = s.vertical_split(&groups);
        let avg = avg_client_diff_corr(&real_parts, &synth_parts);
        assert!(avg > 0.0);
        let across = across_client_diff_corr(
            &real_parts[0],
            &real_parts[1],
            &synth_parts[0],
            &synth_parts[1],
        );
        assert!(across >= 0.0);
        // Identity case.
        assert_eq!(avg_client_diff_corr(&real_parts, &real_parts), 0.0);
        assert_eq!(
            across_client_diff_corr(&real_parts[0], &real_parts[1], &real_parts[0], &real_parts[1]),
            0.0
        );
    }
}
