//! Known-bad fixture: an escape hatch without a justification does not
//! suppress, and is itself reported.

pub fn unjustified(x: Option<u32>) -> u32 {
    // gtv-lint: allow(panic)
    x.unwrap()
}
