//! Known-bad fixture: raw partition columns escaping to the wire (L11).

pub fn leak_direct(table: &Table, net: &Network) {
    let col = table.column(3);
    net.send(Message::CondUpload(col));
}

pub fn leak_rebound(table: &Table) -> Message {
    let col = table.as_float(0);
    let hidden = col;
    Message::GenSlice(hidden)
}

pub fn leak_field(table: &Table, net: &Network) {
    let mut batch = Batch { rows: Vec::new() };
    batch.rows = table.column_by_name("income");
    net.send(Message::CondUpload(batch.rows));
}

fn pick_column(table: &Table) -> Vec<f32> {
    table.as_float(2)
}

pub fn leak_via_return(table: &Table, net: &Network) {
    let payload = pick_column(table);
    net.send(Message::GenSlice(payload));
}

pub fn leak_through_encode_call(table: &Table, codec: WireCodec) -> Vec<u8> {
    let col = table.column(1);
    col.encode_with(codec)
}

pub fn clean_encoded(table: &Table, transformer: &TableTransformer, net: &Network) {
    let activations = transformer.encode(table, 1);
    net.send(Message::GenSlice(activations));
}

pub fn clean_rebound_after_encode(table: &Table, transformer: &TableTransformer) -> Message {
    let col = table.column(5);
    let col = transformer.encode(col, 1);
    Message::GenSlice(col)
}

pub fn suppressed_debug_dump(table: &Table) -> Message {
    let col = table.column(9);
    // gtv-lint: allow(raw-egress) -- offline debugging CLI, never reaches a client socket
    Message::GenSlice(col)
}
