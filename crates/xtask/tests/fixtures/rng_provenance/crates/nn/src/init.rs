//! Known-bad fixture: RNG seeding from literals and unnamed values.

pub fn init_weights() -> u64 {
    let rng = StdRng::seed_from_u64(42);
    rng.next_u64()
}

pub fn init_biases(x: u64) -> u64 {
    let rng = StdRng::seed_from_u64(x ^ 17);
    rng.next_u64()
}

pub fn init_embedding() -> u64 {
    let rng = SmallRng::from_seed([0u8; 32]);
    rng.next_u64()
}

pub fn pool_block_rng(base_seed: u64, block: usize) -> u64 {
    let rng = StdRng::seed_from_u64(base_seed ^ block as u64);
    rng.next_u64()
}

pub fn bad_block_rng(block: usize) -> u64 {
    let rng = StdRng::seed_from_u64(block as u64);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seed_is_fine_in_tests() {
        let rng = StdRng::seed_from_u64(7);
        assert!(rng.next_u64() < u64::MAX);
    }
}
