//! Bench driver: exploratory seeding is allowed, L7 exempts crates/bench.

pub fn sweep() -> u64 {
    let rng = StdRng::seed_from_u64(12345);
    rng.next_u64()
}
