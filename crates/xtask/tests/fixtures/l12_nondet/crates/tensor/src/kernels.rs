//! Fixture kernels: the L12 kernel-sink targets.

pub fn scale_rows(m: &Tensor, factor: u64) -> Tensor {
    let out = m.clone();
    out.scale(factor);
    out
}

pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    a.dot(b)
}
