//! Known-bad fixture: ambient nondeterminism flowing into RNG seeds,
//! tensor kernels, and wire payloads (L12).

pub fn env_seed() -> u64 {
    let knob = std::env::var("GTV_EXPERIMENT").unwrap_or_default();
    let seed = digest(knob);
    let rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}

pub fn thread_scaled(m: &Tensor) -> Tensor {
    let id = std::thread::current().id().as_u64();
    scale_rows(m, id)
}

pub fn unordered_payload(pairs: &[(String, u32)], net: &Network) {
    let mut counts = HashMap::new();
    for (name, n) in pairs {
        counts.insert(name.clone(), n);
    }
    let mut out = Vec::new();
    for (name, n) in counts.iter() {
        out.push(pack(name, n));
    }
    net.send(Message::CondUpload(out));
}

pub fn ordered_payload(pairs: &[(String, u32)], net: &Network) {
    let mut counts = HashMap::new();
    for (name, n) in pairs {
        counts.insert(name.clone(), n);
    }
    let mut out = Vec::new();
    for (name, n) in counts.iter() {
        out.push(pack(name, n));
    }
    out.sort_unstable();
    net.send(Message::CondUpload(out));
}

pub fn suppressed_host_probe(m: &Tensor) -> Tensor {
    let lanes = std::thread::available_parallelism();
    // gtv-lint: allow(nondet-flow) -- lane count only pads the batch, results are masked back
    scale_rows(m, lanes)
}
