//! Known-bad fixture: the bottom layer reaching upward.

use gtv_nn::Dense;

pub fn shape_of(layer: &Dense) -> usize {
    layer.width() + gtv_vfl::transport::MAX_FRAME
}

#[cfg(test)]
mod tests {
    use gtv_cli::args;

    #[test]
    fn dev_dependency_imports_are_exempt() {
        assert!(args::defaults().verbose);
    }
}
