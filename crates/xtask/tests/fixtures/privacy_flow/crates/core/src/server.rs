//! Known-bad fixture: server-side code touching shuffle-seed material.
//! Everything in a `server` file is server zone for L6.

pub struct ServerCache {
    pub shuffler: SharedShuffler,
}

pub fn server_observe(rounds: u64) -> u64 {
    collect_share(rounds)
}

pub fn collect_share(rounds: u64) -> u64 {
    let s = negotiate_seed(rounds);
    s + 1
}

pub fn server_cache_init() -> usize {
    let cache: Option<ServerCache> = None;
    usize::from(cache.is_none())
}

#[cfg(test)]
mod tests {
    #[test]
    fn negotiation_smoke() {
        // Test code may exercise the secret path; L6 exempts #[cfg(test)].
        let s = negotiate_seed(3);
        assert_eq!(s % 1, 0);
    }
}
