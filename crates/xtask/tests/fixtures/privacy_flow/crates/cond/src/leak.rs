//! Known-bad fixture: client-side code logging shuffle-seed material.

pub fn announce_seed() -> u64 {
    let s = SharedShuffler::state_digest();
    println!("shuffler digest: {s}");
    s
}
