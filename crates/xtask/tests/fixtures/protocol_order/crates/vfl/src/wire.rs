//! Known-bad fixture for the L10 drift check: `MaskedUpload` (the Sun et
//! al. masked-payload extension) has encode/decode arms — L4 is satisfied —
//! but no edge in the declared protocol machine.

pub enum Message {
    RoundStart { round: u64 },
    CondUpload { cv: Vec<f32> },
    GenSlice(Vec<f32>),
    SynthLogits(Vec<f32>),
    RealLogits(Vec<f32>),
    GradLogits(Vec<f32>),
    GradGenSlice(Vec<f32>),
    SyntheticShare(Vec<f32>),
    ShuffleSeedShare { share: u64 },
    IndexShare { indices: Vec<u64> },
    MaskedUpload(Vec<u8>),
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::RoundStart { .. } => 0,
            Message::CondUpload { .. } => 1,
            Message::GenSlice(_) => 2,
            Message::SynthLogits(_) => 3,
            Message::RealLogits(_) => 4,
            Message::GradLogits(_) => 5,
            Message::GradGenSlice(_) => 6,
            Message::SyntheticShare(_) => 7,
            Message::ShuffleSeedShare { .. } => 8,
            Message::IndexShare { .. } => 9,
            Message::MaskedUpload(_) => 10,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let out = vec![self.tag()];
        match self {
            Message::RoundStart { .. }
            | Message::CondUpload { .. }
            | Message::GenSlice(_)
            | Message::SynthLogits(_)
            | Message::RealLogits(_)
            | Message::GradLogits(_)
            | Message::GradGenSlice(_)
            | Message::SyntheticShare(_)
            | Message::ShuffleSeedShare { .. }
            | Message::IndexShare { .. }
            | Message::MaskedUpload(_) => out,
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes.first()? {
            0 => Some(Message::RoundStart { round: 0 }),
            1 => Some(Message::CondUpload { cv: Vec::new() }),
            2 => Some(Message::GenSlice(Vec::new())),
            3 => Some(Message::SynthLogits(Vec::new())),
            4 => Some(Message::RealLogits(Vec::new())),
            5 => Some(Message::GradLogits(Vec::new())),
            6 => Some(Message::GradGenSlice(Vec::new())),
            7 => Some(Message::SyntheticShare(Vec::new())),
            8 => Some(Message::ShuffleSeedShare { share: 0 }),
            9 => Some(Message::IndexShare { indices: Vec::new() }),
            10 => Some(Message::MaskedUpload(Vec::new())),
            _ => None,
        }
    }
}
