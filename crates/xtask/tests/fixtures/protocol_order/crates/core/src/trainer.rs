//! Known-bad fixture: three distinct protocol-conformance violations for
//! L10 — an out-of-order fan-out, a server sending a client-only variant,
//! and a recv-side phase skip resolved through the expected-kind string.

use gtv_vfl::{Message, Network, PartyId, TransportError};

pub struct Orchestrator {
    net: Network,
}

impl Orchestrator {
    /// Out-of-order: generator slices fan out before the round is opened.
    pub fn premature_fanout(&self) -> Result<(), TransportError> {
        self.net.send(PartyId::Server, PartyId::Client(0), Message::GenSlice(Vec::new()))?;
        self.net.send(PartyId::Server, PartyId::Client(0), Message::RoundStart { round: 0 })?;
        Ok(())
    }

    /// Wrong direction: the condition upload is client→server only.
    pub fn server_sends_upload(&self, cv: Vec<f32>) -> Result<(), TransportError> {
        self.net.send(PartyId::Server, PartyId::Client(0), Message::CondUpload { cv })?;
        Ok(())
    }

    /// Phase skip on the receive side: the server gathers synthetic logits
    /// straight after opening the round, with no `GenSlice` fan-out.
    pub fn skip_forward_phase(&self) -> Result<Vec<Message>, TransportError> {
        self.net.send(PartyId::Server, PartyId::Client(0), Message::RoundStart { round: 0 })?;
        self.net.gather(PartyId::Server, &[PartyId::Client(0)], "SynthLogits")
    }
}
