//! Known-bad fixture: `Message` variants missing encode/decode arms.

// gtv-lint: allow(protocol-order) -- L4 fixture exercises encode/decode arms, not the machine
pub enum Message {
    RoundStart { round: u64 },
    GenSlice(Vec<f32>),
    ShuffleSeedShare { share: u64 },
    // gtv-lint: allow(protocol-order) -- deliberately outside the round choreography
    Orphan(u8),
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::RoundStart { round } => round.to_le_bytes().to_vec(),
            Message::GenSlice(_) => vec![1],
            Message::ShuffleSeedShare { share } => share.to_le_bytes().to_vec(),
            // Orphan intentionally unhandled: L4 must flag it.
            _ => vec![255],
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes.first()? {
            0 => Some(Message::RoundStart { round: 0 }),
            2 => Some(Message::ShuffleSeedShare { share: 0 }),
            // GenSlice and Orphan intentionally unhandled.
            _ => None,
        }
    }
}
