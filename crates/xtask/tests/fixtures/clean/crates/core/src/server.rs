//! Clean fixture: server-side aggregation that never touches seed material.

pub fn server_aggregate(logits: &[f32]) -> f32 {
    logits.iter().sum::<f32>() / logits.len().max(1) as f32
}
