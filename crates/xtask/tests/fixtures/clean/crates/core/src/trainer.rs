//! Clean fixture: a full d-step/g-step round in declared protocol order,
//! every send with machine-conformant endpoints, recv sites via
//! expected-kind strings — L10 must stay quiet.

use gtv_vfl::{Message, Network, PartyId, TransportError};

pub struct Round {
    net: Network,
    clients: usize,
}

impl Round {
    fn fan_in(&self, expected: &str) -> Result<Vec<Message>, TransportError> {
        let senders: Vec<PartyId> = (0..self.clients).map(PartyId::Client).collect();
        self.net.gather(PartyId::Server, &senders, expected)
    }

    pub fn d_step(&self, cv: Vec<f32>) -> Result<(), TransportError> {
        for i in 0..self.clients {
            self.net.send(
                PartyId::Server,
                PartyId::Client(i),
                Message::RoundStart { round: 0 },
            )?;
        }
        self.net.send(PartyId::Client(0), PartyId::Server, Message::CondUpload { cv })?;
        for i in 0..self.clients {
            self.net.send(PartyId::Server, PartyId::Client(i), Message::GenSlice(Vec::new()))?;
        }
        let _synth = self.fan_in("SynthLogits")?;
        let _real = self.fan_in("RealLogits")?;
        for i in 0..self.clients {
            self.net.send(PartyId::Server, PartyId::Client(i), Message::GradLogits(Vec::new()))?;
        }
        Ok(())
    }

    pub fn publish(&self) -> Result<(), TransportError> {
        for i in 0..self.clients {
            self.net.send(
                PartyId::Client(i),
                PartyId::Public,
                Message::SyntheticShare(Vec::new()),
            )?;
        }
        Ok(())
    }
}
