//! Fixture: a kernel hot path that draws every buffer from the pool.

mod pool_mem {
    pub fn take(len: usize) -> Vec<f32> {
        let mut out = Vec::new();
        out.reserve(len);
        out
    }

    pub fn take_zeroed(len: usize) -> Vec<f32> {
        let mut out = take(len);
        out.resize(len, 0.0);
        out
    }
}

pub fn stitch(parts: &[Vec<f32>], len: usize) -> Vec<f32> {
    let mut out = pool_mem::take(len);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

pub fn accumulate(cols: usize) -> Vec<f32> {
    pool_mem::take_zeroed(cols)
}
