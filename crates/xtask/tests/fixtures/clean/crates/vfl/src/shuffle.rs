//! Clean fixture: the sanctioned client↔client shuffle path. Secret roots
//! may live here freely — this file is in L6's sanctioned-sink registry.

pub struct SharedShuffler {
    seed: u64,
}

impl SharedShuffler {
    pub fn negotiate_seed(shares: &[u64]) -> u64 {
        shares.iter().fold(0, |acc, s| acc ^ s)
    }

    pub fn round_seed(&self, round: u64) -> u64 {
        self.seed ^ round
    }

    pub fn shuffle_rng(&self, round: u64) -> StdRng {
        StdRng::seed_from_u64(self.round_seed(round))
    }
}
