//! Clean fixture: narrowing on the transport path behind a bounds guard.

pub fn encode_len(payload: &[f32]) -> [u8; 4] {
    debug_assert!(payload.len() <= u32::MAX as usize, "frame fits the u32 length prefix");
    let n = payload.len() as u32;
    n.to_le_bytes()
}
