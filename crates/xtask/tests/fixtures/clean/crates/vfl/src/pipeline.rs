//! Clean fixture: a pipelined fan-out that parallelizes through the
//! sanctioned deterministic worker pool — L2 must stay quiet, and L9 must
//! accept the vfl → tensor layering edge.

/// Encodes every payload concurrently on the pool; results come back in
/// input order regardless of worker count.
pub fn encode_all(payloads: Vec<u64>) -> Vec<u64> {
    gtv_tensor::pool::run_ordered(payloads.len(), move |i| payloads[i].wrapping_mul(3))
}
