//! Clean fixture: exhaustive wire handling, no denied tokens.

pub enum Message {
    Ping(u8),
    Pong(u8),
    ShuffleSeedShare { share: u64 },
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Ping(v) => vec![0, *v],
            Message::Pong(v) => vec![1, *v],
            Message::ShuffleSeedShare { share } => {
                let mut out = vec![2];
                out.extend_from_slice(&share.to_le_bytes());
                out
            }
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0, v] => Some(Message::Ping(*v)),
            [1, v] => Some(Message::Pong(*v)),
            [2, rest @ ..] => {
                let share = u64::from_le_bytes(rest.try_into().ok()?);
                Some(Message::ShuffleSeedShare { share })
            }
            _ => None,
        }
    }
}
