//! Clean fixture: exhaustive wire handling, no denied tokens.

pub enum Message {
    Ping(u8),
    Pong(u8),
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Ping(v) => vec![0, *v],
            Message::Pong(v) => vec![1, *v],
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0, v] => Some(Message::Ping(*v)),
            [1, v] => Some(Message::Pong(*v)),
            _ => None,
        }
    }
}
