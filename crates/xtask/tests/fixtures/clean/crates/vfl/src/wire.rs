//! Clean fixture: exhaustive wire handling, no denied tokens. Mirrors the
//! wire-format-v2 shape: `encode` is a thin wrapper and the variant match
//! lives in the codec-parameterized `encode_with` — L4 must accept the
//! union of both bodies.

pub enum Codec {
    Dense,
    Adaptive,
}

pub enum Message {
    Ping(u8),
    Pong(u8),
    ShuffleSeedShare { share: u64 },
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(&Codec::Dense)
    }

    pub fn encode_with(&self, codec: &Codec) -> Vec<u8> {
        let marker = match codec {
            Codec::Dense => 0u8,
            Codec::Adaptive => 1u8,
        };
        match self {
            Message::Ping(v) => vec![0, marker, *v],
            Message::Pong(v) => vec![1, marker, *v],
            Message::ShuffleSeedShare { share } => {
                let mut out = vec![2, marker];
                out.extend_from_slice(&share.to_le_bytes());
                out
            }
        }
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0, _, v] => Some(Message::Ping(*v)),
            [1, _, v] => Some(Message::Pong(*v)),
            [2, _, rest @ ..] => {
                let share = u64::from_le_bytes(rest.try_into().ok()?);
                Some(Message::ShuffleSeedShare { share })
            }
            _ => None,
        }
    }
}
