//! Clean fixture: exhaustive wire handling, no denied tokens. Mirrors the
//! wire-format-v2 shape: `encode` is a thin wrapper and the variant match
//! lives in the codec-parameterized `encode_with` — L4 must accept the
//! union of both bodies. The enum carries the full protocol vocabulary so
//! the L10 drift check (machine ↔ wire bijection) stays quiet.

pub enum Codec {
    Dense,
    Adaptive,
}

pub enum Message {
    RoundStart { round: u64 },
    CondUpload { cv: Vec<f32> },
    GenSlice(Vec<f32>),
    SynthLogits(Vec<f32>),
    RealLogits(Vec<f32>),
    GradLogits(Vec<f32>),
    GradGenSlice(Vec<f32>),
    SyntheticShare(Vec<f32>),
    ShuffleSeedShare { share: u64 },
    IndexShare { indices: Vec<u64> },
}

fn put_floats(out: &mut Vec<u8>, values: &[f32]) {
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(&Codec::Dense)
    }

    pub fn encode_with(&self, codec: &Codec) -> Vec<u8> {
        let marker = match codec {
            Codec::Dense => 0u8,
            Codec::Adaptive => 1u8,
        };
        let mut out = vec![marker];
        match self {
            Message::RoundStart { round } => {
                out.push(0);
                out.extend_from_slice(&round.to_le_bytes());
            }
            Message::CondUpload { cv } => {
                out.push(1);
                put_floats(&mut out, cv);
            }
            Message::GenSlice(m) => {
                out.push(2);
                put_floats(&mut out, m);
            }
            Message::SynthLogits(m) => {
                out.push(3);
                put_floats(&mut out, m);
            }
            Message::RealLogits(m) => {
                out.push(4);
                put_floats(&mut out, m);
            }
            Message::GradLogits(m) => {
                out.push(5);
                put_floats(&mut out, m);
            }
            Message::GradGenSlice(m) => {
                out.push(6);
                put_floats(&mut out, m);
            }
            Message::SyntheticShare(m) => {
                out.push(7);
                put_floats(&mut out, m);
            }
            Message::ShuffleSeedShare { share } => {
                out.push(8);
                out.extend_from_slice(&share.to_le_bytes());
            }
            Message::IndexShare { indices } => {
                out.push(9);
                for idx in indices {
                    out.extend_from_slice(&idx.to_le_bytes());
                }
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let tag = bytes.get(1)?;
        match tag {
            0 => {
                let round = u64::from_le_bytes(bytes.get(2..10)?.try_into().ok()?);
                Some(Message::RoundStart { round })
            }
            1 => Some(Message::CondUpload { cv: Vec::new() }),
            2 => Some(Message::GenSlice(Vec::new())),
            3 => Some(Message::SynthLogits(Vec::new())),
            4 => Some(Message::RealLogits(Vec::new())),
            5 => Some(Message::GradLogits(Vec::new())),
            6 => Some(Message::GradGenSlice(Vec::new())),
            7 => Some(Message::SyntheticShare(Vec::new())),
            8 => {
                let share = u64::from_le_bytes(bytes.get(2..10)?.try_into().ok()?);
                Some(Message::ShuffleSeedShare { share })
            }
            9 => Some(Message::IndexShare { indices: Vec::new() }),
            _ => None,
        }
    }
}
