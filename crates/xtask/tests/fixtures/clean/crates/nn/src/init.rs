//! Clean fixture: RNG seeded from named seed/round values, and a
//! layer-respecting downward import.

use gtv_tensor::Matrix;

pub fn init_weights(cfg_seed: u64, round: u64) -> Matrix {
    let rng = StdRng::seed_from_u64(cfg_seed ^ round);
    Matrix::filled(rng.next_u64())
}
