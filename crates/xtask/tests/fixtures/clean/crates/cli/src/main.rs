//! Clean fixture: the top layer may depend on every crate below it.

use gtv::Trainer;
use gtv_vfl::transport::Network;

pub fn run() -> Trainer {
    Trainer::new(Network::loopback())
}
