//! Clean fixture: tolerance-based comparison and a justified allow.

#[allow(clippy::needless_range_loop)] // indexed loop mirrors the formula
pub fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    for i in 0..a.len() {
        if (a[i] - b[i]).abs() > tol {
            return false;
        }
    }
    true
}
