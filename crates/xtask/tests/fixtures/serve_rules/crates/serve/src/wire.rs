//! Known-bad fixture: the serving wire enum drifted from the declared
//! machine — a variant with no edge in `protocol::SERVE_EDGES`.

pub enum ServeFrame {
    SynthHello { protocol: u32 },
    SynthHelloAck { protocol: u32 },
    SynthRequest { id: u64, n: u64 },
    SynthRows { id: u64 },
    SynthBusy { id: u64 },
    SynthErr { id: u64 },
    SynthCancel { id: u64 },
}
