//! Known-bad fixture: a rows reply witnessed before the handshake
//! completes — not a path through the serving-session machine.

pub fn bad_session(m: ServeFrame) -> ServeFrame {
    match m {
        ServeFrame::SynthHello { protocol } => drop(protocol),
        _ => (),
    }
    ServeFrame::SynthRows { id: 0, csv: Vec::new() }
}
