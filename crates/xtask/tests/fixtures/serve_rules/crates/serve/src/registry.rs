//! Known-bad fixture: an unguarded narrowing cast on the serving path —
//! every serve source is wire-adjacent, not just `wire.rs`.

pub fn model_slot(id: u64) -> u32 {
    id as u32
}

pub fn tagged_slot(id: u64) -> u32 {
    let masked = id & 0xffff;
    // gtv-lint: allow(cast-safety) -- slot index is < 2^16 by construction
    masked as u32
}
