//! Known-bad fixture: a panic token and a wall-clock read in the serving
//! engine (batching policy must be tick-denominated, never timed).

pub fn take_ticket(slot: Option<u64>) -> u64 {
    slot.unwrap()
}

pub fn batch_age_ms(started: std::time::Instant) -> u128 {
    Instant::now().duration_since(started).as_millis()
}

pub fn suppressed_ticket(slot: Option<u64>) -> u64 {
    // gtv-lint: allow(panic) -- fixture proves the escape hatch works here too
    slot.unwrap()
}
