//! Known-bad fixture: clippy allow without a trailing justification.

#[allow(clippy::needless_range_loop)]
pub fn bare_allow(v: &mut [f32]) {
    for i in 0..v.len() {
        v[i] += 1.0;
    }
}

#[allow(clippy::needless_range_loop)] // indexed form mirrors the math
pub fn justified_allow(v: &mut [f32]) {
    for i in 0..v.len() {
        v[i] += 1.0;
    }
}
