//! Bench code is exempt from L2: wall-clock timing is its whole point.

pub fn timed<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = std::time::Instant::now();
    f();
    start.elapsed()
}
