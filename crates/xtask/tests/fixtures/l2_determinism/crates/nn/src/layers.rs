//! Known-bad fixture: ambient randomness and wall-clock reads.

pub fn bad_thread_rng() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn bad_entropy() -> StdRng {
    StdRng::from_entropy()
}

pub fn bad_wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn bad_instant() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn fine_in_string() -> &'static str {
    "thread_rng mentioned in a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
