//! Fixture: hand-rolled f32 lane code outside the sanctioned SIMD module.

pub fn hand_dot(xs: &[f32], ys: &[f32]) -> f32 {
    let mut acc: [f32; 8] = [0.0; 8];
    for (a, b) in xs.chunks_exact(8).zip(ys.chunks_exact(8)) {
        for i in 0..8 {
            acc[i] += a[i] * b[i];
        }
    }
    acc.iter().sum()
}

pub fn sanctioned_scratch(xs: &[f32]) -> f32 {
    // gtv-lint: allow(determinism) -- fixed scratch table, no lane arithmetic
    let lanes: [f32; 8] = [0.0; 8];
    lanes.iter().sum::<f32>() + xs.len() as f32
}

pub fn describe() -> &'static str {
    "code outside the simd module must not use [f32; 8] or chunks_exact(8)"
}

#[cfg(test)]
mod tests {
    #[test]
    fn lanes_in_tests_are_fine() {
        let acc: [f32; 8] = [1.0; 8];
        assert_eq!(acc.chunks_exact(8).count(), 1);
    }
}
