//! Known-bad fixture: ad-hoc threading outside the sanctioned pool.

pub fn bad_spawn() {
    let handle = std::thread::spawn(|| {});
    drop(handle.join());
}

pub fn bad_builder() {
    let builder = std::thread::Builder::new();
    drop(builder);
}

pub fn fine_in_string() -> &'static str {
    "thread::spawn mentioned in a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        drop(std::thread::spawn(|| {}).join());
    }
}
