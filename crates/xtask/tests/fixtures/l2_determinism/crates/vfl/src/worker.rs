//! Known-bad fixture: ad-hoc threading outside the sanctioned pool.

pub fn bad_spawn() {
    let handle = std::thread::spawn(|| {});
    drop(handle.join());
}

pub fn bad_builder() {
    let builder = std::thread::Builder::new();
    drop(builder);
}

pub fn bad_pipelined_fanout(payloads: Vec<u64>) -> Vec<u64> {
    // A hand-rolled parallel message-encoding fan-out: must go through
    // gtv_tensor::pool::run_ordered, not ad-hoc threads.
    let handles: Vec<_> =
        payloads.into_iter().map(|p| std::thread::spawn(move || p * 2)).collect();
    handles.into_iter().filter_map(|h| h.join().ok()).collect()
}

pub fn fine_in_string() -> &'static str {
    "thread::spawn mentioned in a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawning_in_tests_is_fine() {
        drop(std::thread::spawn(|| {}).join());
    }
}
