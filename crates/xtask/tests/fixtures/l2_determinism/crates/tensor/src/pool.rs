//! The sanctioned worker pool: the one place thread spawns are allowed —
//! its fixed problem-size-only partitioning keeps results thread-count
//! invariant, so parallelism here does not break determinism.

pub fn spawn_worker(index: usize) {
    let spawned = std::thread::Builder::new().name(format!("pool-{index}")).spawn(|| {});
    drop(spawned);
}

pub fn plain_spawn_is_also_sanctioned_here() {
    drop(std::thread::spawn(|| {}).join());
}
