//! Fixture: raw allocator calls in the tensor kernel hot path.

pub fn stitch(parts: &[Vec<f32>], len: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

pub fn accumulate(cols: usize) -> Vec<f32> {
    vec![0.0f32; cols]
}

pub fn cold_scratch(len: usize) -> Vec<f32> {
    // gtv-lint: allow(determinism) -- cold path, runs once at pool construction
    let mut out = Vec::with_capacity(len);
    out.resize(len, 1.0);
    out
}

pub fn describe() -> &'static str {
    "kernels must not call Vec::with_capacity or vec![0.0; n] directly"
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_in_tests_is_fine() {
        let mut v = Vec::with_capacity(4);
        v.extend_from_slice(&[0.0f32; 4]);
        assert_eq!(v.len(), 4);
    }
}
