//! Fixture: the sanctioned SIMD module uses lane types freely and must
//! stay quiet under the lane-token rule.

pub struct F32x8(pub [f32; 8]);

pub fn sum(xs: &[f32]) -> f32 {
    let mut acc = F32x8([0.0; 8]);
    let mut groups = xs.chunks_exact(8);
    for g in &mut groups {
        for i in 0..8 {
            acc.0[i] += g[i];
        }
    }
    acc.0.iter().sum::<f32>() + groups.remainder().iter().sum::<f32>()
}
