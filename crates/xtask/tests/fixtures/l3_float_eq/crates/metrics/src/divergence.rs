//! Known-bad fixture: exact float comparisons in metric code.

pub fn bad_eq_right(v: f64) -> bool {
    v == 1.0
}

pub fn bad_eq_left(v: f64) -> bool {
    0.5 == v
}

pub fn bad_ne(v: f32) -> bool {
    v != 2.0f32
}

pub fn fine_int(v: usize) -> bool {
    v == 1
}

pub fn suppressed(v: f64) -> bool {
    // gtv-lint: allow(float-eq) -- sentinel comparison, value is assigned not computed
    v == -1.0
}
