//! Float equality outside crates/metrics and crates/ml is out of L3 scope.

pub fn hot_bit(v: f32) -> bool {
    v == 1.0
}
