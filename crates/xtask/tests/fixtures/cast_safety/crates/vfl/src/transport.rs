//! Known-bad fixture: unguarded narrowing casts on a transport path.

pub fn encode_len(payload: &[f32]) -> [u8; 4] {
    let n = payload.len() as u32;
    n.to_le_bytes()
}

pub fn frame_tag(kind: u64) -> u8 {
    kind as u8
}

pub fn party_byte(id: u64) -> u8 {
    let masked = id & 0xf;
    // gtv-lint: allow(cast-safety) -- party index is < 16 by construction
    masked as u8
}
