//! Known-bad fixture: every L1 token class in a protocol path.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("boom")
}

pub fn bad_panic() {
    panic!("protocol paths must not panic");
}

pub fn bad_unreachable() {
    unreachable!("nope");
}

pub fn bad_todo() {
    todo!()
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // gtv-lint: allow(panic) -- fixture proves the escape hatch works
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
