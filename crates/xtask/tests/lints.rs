//! End-to-end lint tests: each rule must fire on its known-bad fixture
//! tree, stay quiet on clean code, and honor the escape hatch.

use std::path::{Path, PathBuf};

use gtv_xtask::{run_lint, Finding, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint(name: &str) -> Vec<Finding> {
    run_lint(&fixture(name)).expect("fixture tree should be readable")
}

fn lines_for(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings.iter().filter(|f| f.rule == rule).map(|f| f.line).collect()
}

#[test]
fn l1_flags_every_panic_token_and_honors_the_escape_hatch() {
    let findings = lint("l1_panic");
    assert!(findings.iter().all(|f| f.rule == Rule::Panic), "{findings:?}");
    // unwrap, expect, panic!, unreachable!, todo! — one finding each; the
    // suppressed unwrap (line 25) and the #[cfg(test)] unwrap are exempt.
    assert_eq!(lines_for(&findings, Rule::Panic), vec![4, 8, 12, 16, 20], "{findings:?}");
}

#[test]
fn l2_flags_ambient_randomness_and_clocks_but_not_bench_or_tests() {
    let findings = lint("l2_determinism");
    assert!(findings.iter().all(|f| f.rule == Rule::Determinism), "{findings:?}");
    assert!(
        findings.iter().all(|f| f.file == Path::new("crates/nn/src/layers.rs")),
        "crates/bench must be exempt: {findings:?}"
    );
    // thread_rng, from_entropy, SystemTime::now, Instant::now.
    assert_eq!(lines_for(&findings, Rule::Determinism), vec![4, 9, 13, 17], "{findings:?}");
}

#[test]
fn l3_flags_float_equality_only_in_metric_crates() {
    let findings = lint("l3_float_eq");
    assert!(findings.iter().all(|f| f.rule == Rule::FloatEq), "{findings:?}");
    assert!(
        findings.iter().all(|f| f.file == Path::new("crates/metrics/src/divergence.rs")),
        "crates/core must be out of L3 scope: {findings:?}"
    );
    // `v == 1.0`, `0.5 == v`, `v != 2.0f32`; int compare and the
    // suppressed sentinel compare are exempt.
    assert_eq!(lines_for(&findings, Rule::FloatEq), vec![4, 8, 12], "{findings:?}");
}

#[test]
fn l4_flags_message_variants_missing_encode_or_decode_arms() {
    let findings = lint("l4_wire");
    assert!(findings.iter().all(|f| f.rule == Rule::Wire), "{findings:?}");
    let mut missing: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    missing.sort_unstable();
    assert_eq!(
        missing,
        vec![
            "`Message::GenSlice` has no arm in `decode`",
            "`Message::Orphan` has no arm in `decode`",
            "`Message::Orphan` has no arm in `encode`",
        ],
        "{findings:?}"
    );
}

#[test]
fn l5_flags_bare_clippy_allows_but_not_justified_ones() {
    let findings = lint("l5_allow");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::AllowJustification);
    assert_eq!(findings[0].line, 3);
}

#[test]
fn malformed_escape_hatch_does_not_suppress_and_is_reported() {
    let findings = lint("malformed_allow");
    // The justification-free allow is reported AND the unwrap it failed
    // to cover still stands.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.line == 5 && f.message.contains("without `-- <justification>`")));
    assert!(findings.iter().any(|f| f.line == 6 && f.message.contains("`unwrap`")));
}

#[test]
fn clean_tree_produces_no_findings() {
    let findings = lint("clean");
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf();
    let findings = run_lint(&root).expect("workspace should be readable");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn nonexistent_root_is_an_error_not_a_clean_pass() {
    let err = run_lint(Path::new("/nonexistent/gtv-xtask-root")).unwrap_err();
    assert!(err.to_string().contains("not a directory"), "{err}");
}
